"""Integration tests for the HTTP join service.

The acceptance bar: ``POST /join/<model>`` must return exactly the pairs
(content *and* order) that the offline ``JoinPipeline.apply`` path computes,
with the server running serially and with the apply stage sharded across
worker processes.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

import pytest

from repro.datasets.synthetic import SyntheticConfig, generate_table_pair
from repro.join.pipeline import JoinPipeline
from repro.serve import JoinServer


@pytest.fixture(scope="module")
def fitted():
    """One synthetic table pair and the model fitted on it."""
    pair, _ = generate_table_pair(SyntheticConfig(num_rows=200, seed=7))
    model = JoinPipeline(min_support=0.05).fit(
        pair.source, pair.target, source_column="value", target_column="value"
    )
    return pair, model


@pytest.fixture(scope="module")
def model_dir(fitted, tmp_path_factory):
    _, model = fitted
    directory = tmp_path_factory.mktemp("models")
    model.save(directory / "synth.json")
    return directory


def post_join(server: JoinServer, name: str, body: dict) -> tuple[int, dict]:
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=60)
    try:
        connection.request(
            "POST",
            f"/join/{name}",
            json.dumps(body).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get(server: JoinServer, path: str) -> tuple[int, dict]:
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=60)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


@pytest.mark.parametrize(
    "server_kwargs",
    [
        pytest.param({"num_workers": 1}, id="serial"),
        # min_rows_per_worker=0 disables the small-input serial fallback so
        # 200 rows genuinely shard across the two worker processes.
        pytest.param({"num_workers": 2, "min_rows_per_worker": 0}, id="sharded"),
    ],
)
def test_served_join_is_byte_identical_to_offline_apply(
    fitted, model_dir, server_kwargs
):
    pair, model = fitted
    offline = JoinPipeline().apply(
        model,
        pair.source,
        pair.target,
        source_column="value",
        target_column="value",
    )
    expected_pairs = [list(join_pair) for join_pair in offline.join.pairs]
    body = {
        "source": list(pair.source["value"]),
        "target": list(pair.target["value"]),
    }
    with JoinServer(model_dir, port=0, **server_kwargs) as server:
        server.start_background()
        status, payload = post_join(server, "synth", body)
        assert status == 200
        assert payload["pairs"] == expected_pairs
        assert payload["num_pairs"] == offline.join.num_pairs
        assert payload["warm"] is False
        # Same request again: warm, still identical.
        status, payload = post_join(server, "synth", body)
        assert status == 200
        assert payload["pairs"] == expected_pairs
        assert payload["warm"] is True


def test_error_mapping_and_introspection_endpoints(model_dir):
    with JoinServer(model_dir, port=0) as server:
        server.start_background()

        status, payload = get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"

        status, payload = get(server, "/models")
        assert status == 200
        names = [entry["name"] for entry in payload["models"]]
        assert names == ["synth"]

        status, payload = post_join(
            server, "missing", {"source": ["a"], "target": ["b"]}
        )
        assert status == 404
        assert payload["error"]["type"] == "ModelNotFoundError"

        status, payload = post_join(server, "synth", {"source": ["a"]})
        assert status == 400
        assert payload["error"]["type"] == "BadRequestError"

        status, payload = post_join(
            server, "../escape", {"source": ["a"], "target": ["b"]}
        )
        # The unsafe-name guard rejects traversal before any path lookup.
        assert status == 400
        assert payload["error"]["type"] == "BadRequestError"

        status, _ = post_join(server, "synth", {"source": ["a"], "target": ["a"]})
        assert status == 200

        status, payload = get(server, "/stats")
        assert status == 200
        assert payload["requests"] >= 1
        assert payload["errors"] >= 3  # the 404 and the two 400s above
        assert "registry" in payload["engine"]
        snapshot = payload["models"]["synth"]
        assert snapshot["count"] >= 1
        assert snapshot["first_request_ms"] is not None


def test_drain_stops_the_serve_loop_and_flips_healthz(model_dir):
    server = JoinServer(model_dir, port=0)
    server.start_background()
    thread = server._serve_thread
    assert thread is not None and thread.is_alive()
    server.request_shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()
    server.close()
