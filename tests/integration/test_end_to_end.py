"""Integration tests: the full pipeline and baseline comparisons on benchmarks.

These tests run the same code paths as the benchmark harness, on scaled-down
dataset instances, and assert the *shape* of the paper's findings:

* our approach reaches (near-)full coverage with a small covering set,
* Auto-Join covers less with the same budget,
* the end-to-end transformation join beats the fuzzy-join baseline on F1,
* pruning statistics look like Table 4 (non-trivial duplicate and cache-hit
  ratios).
"""

from __future__ import annotations

import pytest

from repro.baselines.autojoin import AutoJoin, AutoJoinConfig
from repro.baselines.fuzzyjoin import AutoFuzzyJoin
from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.core.pairs import pairs_from_strings
from repro.datasets.open_data import generate_open_data
from repro.datasets.spreadsheet import generate_spreadsheet_dataset
from repro.datasets.synthetic import generate_synthetic_dataset
from repro.datasets.web_tables import generate_web_tables_dataset
from repro.evaluation.join_metrics import evaluate_join
from repro.evaluation.matching_metrics import evaluate_matching
from repro.join.joiner import TransformationJoiner
from repro.join.pipeline import JoinPipeline
from repro.matching.row_matcher import GoldenRowMatcher, MatchingConfig, NGramRowMatcher
from repro.model import TransformationModel


@pytest.fixture(scope="module")
def small_web_dataset():
    return generate_web_tables_dataset(num_pairs=6, num_rows=30, seed=42)


@pytest.fixture(scope="module")
def small_spreadsheet_dataset():
    return generate_spreadsheet_dataset(num_pairs=8, num_rows=15, seed=42)


@pytest.fixture(scope="module")
def small_synthetic_dataset():
    return generate_synthetic_dataset(30, num_tables=2, seed=42)


class TestRowMatchingQuality:
    """Table 1 shape: decent P/R on web/spreadsheet/synthetic data."""

    def test_web_tables_row_matching(self, small_web_dataset):
        matcher = NGramRowMatcher()
        f1_scores = []
        for pair in small_web_dataset:
            pairs = matcher.match(
                pair.source,
                pair.target,
                source_column=pair.source_column,
                target_column=pair.target_column,
            )
            metrics = evaluate_matching(pairs, pair.golden_pairs)
            f1_scores.append(metrics.f1)
        assert sum(f1_scores) / len(f1_scores) > 0.5

    def test_synthetic_row_matching_high_precision(self, small_synthetic_dataset):
        matcher = NGramRowMatcher()
        for pair in small_synthetic_dataset:
            candidates = matcher.match(
                pair.source,
                pair.target,
                source_column=pair.source_column,
                target_column=pair.target_column,
            )
            metrics = evaluate_matching(candidates, pair.golden_pairs)
            assert metrics.precision > 0.8
            assert metrics.recall > 0.5

    def test_open_data_matching_has_low_precision_high_recall(self):
        pair = generate_open_data(
            num_source_rows=80, num_target_rows=200, seed=7
        )
        matcher = NGramRowMatcher(MatchingConfig(min_ngram=4, max_ngram=20))
        candidates = matcher.match(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        metrics = evaluate_matching(candidates, pair.golden_pairs)
        # The address corpus floods the matcher with false candidates: recall
        # stays high while precision drops well below the other datasets
        # (Table 1 reports P = 0.01 at the full 3M-row scale; the effect is
        # milder on this scaled-down instance but the ordering holds).
        assert metrics.recall > 0.6
        assert metrics.precision < 0.9
        assert metrics.num_predicted > len(pair.golden_pairs)


class TestDiscoveryOnBenchmarks:
    """Table 2 shape: full coverage with a small covering set under golden matching."""

    def test_spreadsheet_full_coverage(self, small_spreadsheet_dataset):
        engine = TransformationDiscovery(DiscoveryConfig.spreadsheet())
        for pair in small_spreadsheet_dataset:
            result = engine.discover_from_strings(pair.golden_string_pairs())
            assert result.cover_coverage == pytest.approx(1.0)
            assert result.num_transformations <= 4

    def test_synthetic_full_coverage_with_three_rules(self, small_synthetic_dataset):
        engine = TransformationDiscovery()
        for pair in small_synthetic_dataset:
            result = engine.discover_from_strings(pair.golden_string_pairs())
            assert result.cover_coverage == pytest.approx(1.0)
            # The generator used 3 ground-truth transformations.
            assert result.num_transformations <= 6

    def test_web_tables_high_coverage_under_golden_matching(self, small_web_dataset):
        engine = TransformationDiscovery()
        coverages = []
        for pair in small_web_dataset:
            result = engine.discover_from_strings(pair.golden_string_pairs())
            coverages.append(result.cover_coverage)
        # Noise rows are intentionally uncoverable, so coverage is high but
        # not necessarily 1.0 on every table.
        assert sum(coverages) / len(coverages) > 0.85


class TestPruningStatistics:
    """Table 4 shape: duplicates exist and the unit cache absorbs most work."""

    def test_cache_hit_ratio_is_substantial(self, small_synthetic_dataset):
        engine = TransformationDiscovery()
        pair = small_synthetic_dataset[0]
        result = engine.discover_from_strings(pair.golden_string_pairs())
        assert result.stats.cache_hit_ratio > 0.5
        assert result.stats.generated_transformations > 0
        assert (
            result.stats.unique_transformations
            <= result.stats.generated_transformations
        )

    def test_stage_timings_recorded(self, small_synthetic_dataset):
        engine = TransformationDiscovery()
        result = engine.discover_from_strings(
            small_synthetic_dataset[0].golden_string_pairs()
        )
        stages = result.stats.stage_seconds
        for stage in (
            "placeholder_generation",
            "unit_extraction",
            "duplicate_removal",
            "applying_transformations",
        ):
            assert stage in stages


class TestBaselineComparison:
    """Table 2/3 shape: our approach covers at least as much as Auto-Join."""

    def test_our_cover_at_least_autojoin_on_multi_rule_input(self):
        pairs = [
            ("Rafiei, Davood", "D Rafiei"),
            ("Bowling, Michael", "M Bowling"),
            ("Gosgnach, Simon", "S Gosgnach"),
            ("Nascimento, Mario", "M Nascimento"),
            ("alpha-beta", "beta/alpha"),
            ("gamma-delta", "delta/gamma"),
            ("epsilon-zeta", "zeta/epsilon"),
            ("eta-theta", "theta/eta"),
        ]
        ours = TransformationDiscovery().discover_from_strings(pairs)
        autojoin = AutoJoin(
            AutoJoinConfig(num_subsets=6, subset_size=2, seed=0)
        ).discover_from_strings(pairs)
        assert ours.cover_coverage >= autojoin.cover_coverage
        assert ours.cover_coverage == 1.0

    def test_transformation_join_beats_fuzzy_join_on_spreadsheet_task(
        self, small_spreadsheet_dataset
    ):
        # Use a task family where similarity join struggles (short outputs).
        pair = small_spreadsheet_dataset[0]
        engine = TransformationDiscovery(DiscoveryConfig.spreadsheet())
        discovery = engine.discover_from_strings(pair.golden_string_pairs())
        joiner = TransformationJoiner(discovery.transformations)
        join_result = joiner.join(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        ours = evaluate_join(join_result.as_set(), pair.golden_pairs)

        fuzzy = AutoFuzzyJoin().join(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        theirs = evaluate_join(fuzzy.as_set(), pair.golden_pairs)
        assert ours.f1 >= theirs.f1


class TestEndToEndPipeline:
    def test_pipeline_on_web_table_pair(self, small_web_dataset):
        pair = small_web_dataset[0]
        pipeline = JoinPipeline(min_support=0.05)
        outcome = pipeline.run(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        metrics = evaluate_join(outcome.joined_pairs, pair.golden_pairs)
        assert metrics.f1 > 0.5

    def test_pipeline_with_golden_matcher_is_at_least_as_good(self, small_web_dataset):
        pair = small_web_dataset[1]
        ngram_outcome = JoinPipeline(min_support=0.05).run(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        golden_outcome = JoinPipeline(
            matcher=GoldenRowMatcher(pair.golden_pairs), min_support=0.05
        ).run(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        ngram_f1 = evaluate_join(ngram_outcome.joined_pairs, pair.golden_pairs).f1
        golden_f1 = evaluate_join(golden_outcome.joined_pairs, pair.golden_pairs).f1
        assert golden_f1 >= ngram_f1 - 0.1

    def test_open_data_pipeline_with_sampling_and_support(self):
        pair = generate_open_data(num_source_rows=120, num_target_rows=300, seed=3)
        config = DiscoveryConfig.open_data(num_pairs=1000)
        pipeline = JoinPipeline(discovery_config=config, min_support=0.02)
        outcome = pipeline.run(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        metrics = evaluate_join(outcome.joined_pairs, pair.golden_pairs)
        # Precision-oriented behaviour: what is joined is mostly right.
        assert metrics.precision > 0.6


class TestFitApplySessions:
    """The artifact-layer acceptance contract: train once, apply anywhere."""

    def test_fit_then_apply_equals_one_shot_run(self, small_web_dataset):
        pair = small_web_dataset[0]
        pipeline = JoinPipeline(min_support=0.05)
        columns = dict(
            source_column=pair.source_column, target_column=pair.target_column
        )
        one_shot = pipeline.run(pair.source, pair.target, **columns)
        model = pipeline.fit(pair.source, pair.target, **columns)
        applied = pipeline.apply(model, pair.source, pair.target, **columns)
        assert applied.join.pairs == one_shot.join.pairs
        assert applied.join.matched_by == one_shot.join.matched_by
        # The result reports the transformations the joiner actually ran.
        assert applied.applied_transformations
        assert set(applied.applied_transformations) <= set(model.transformations)

    def test_saved_model_applies_to_a_held_out_batch(self, tmp_path):
        # Fit on one open-data batch, persist, reload, and join a *different*
        # batch (same fixed address-formatting rules, fresh addresses) — the
        # joined pairs must equal a one-shot run on the held-out batch
        # restricted to the model's transformations (the reference joiner
        # loop), serial and sharded.
        train = generate_open_data(num_source_rows=80, num_target_rows=200, seed=5)
        held_out = generate_open_data(
            num_source_rows=80, num_target_rows=200, seed=99
        )
        pipeline = JoinPipeline(min_support=0.05)
        model = pipeline.fit(
            train.source,
            train.target,
            source_column=train.source_column,
            target_column=train.target_column,
        )
        loaded = TransformationModel.load(model.save(tmp_path / "model.json"))
        assert loaded == model

        applied = pipeline.apply(
            loaded,
            held_out.source,
            held_out.target,
            source_column=held_out.source_column,
            target_column=held_out.target_column,
        )
        expected = loaded.joiner(num_workers=1).join_values_reference(
            list(held_out.source[held_out.source_column]),
            list(held_out.target[held_out.target_column]),
        )
        assert applied.join.pairs == expected.pairs

        sharded = loaded.joiner(num_workers=2, min_rows_per_worker=0).join(
            held_out.source,
            held_out.target,
            source_column=held_out.source_column,
            target_column=held_out.target_column,
        )
        assert sharded.pairs == expected.pairs
        # The model actually transfers: the held-out batch joins non-trivially
        # and mostly correctly.
        metrics = evaluate_join(applied.joined_pairs, held_out.golden_pairs)
        assert applied.join.num_pairs > 0
        assert metrics.precision > 0.6

    def test_apply_does_not_rerun_discovery(self, small_web_dataset):
        pair = small_web_dataset[0]
        pipeline = JoinPipeline(min_support=0.05)
        model = pipeline.fit(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        loaded = TransformationModel.loads(model.dumps())

        class ExplodingDiscovery:
            def discover(self, pairs):  # pragma: no cover - defensive
                raise AssertionError("apply must not re-run discovery")

        pipeline._discovery = ExplodingDiscovery()
        applied = pipeline.apply(
            loaded,
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        assert applied.model is loaded


class TestSamplingScalesDiscovery:
    def test_sampled_discovery_matches_full_discovery_coverage(self):
        pairs = [
            (f"last{i:03d}, first{i:03d}", f"first{i:03d} last{i:03d}")
            for i in range(120)
        ]
        full = TransformationDiscovery().discover_from_strings(pairs)
        sampled = TransformationDiscovery(
            DiscoveryConfig(sample_size=20, sample_seed=1)
        ).discover_from_strings(pairs)
        assert sampled.top_coverage == full.top_coverage == 1.0
        assert (
            sampled.stats.generated_transformations
            < full.stats.generated_transformations
        )
