"""Chaos tests: the serving layer under injected faults and overload.

The acceptance bar of the resilience PR, proven end to end over HTTP:

* an injected hang (registry, engine, or server site) with a
  ``deadline_ms`` budget answers a typed 504 within ~2x the deadline —
  never a held thread — and the next request succeeds once the fault is
  removed;
* saturation (more concurrent clients than ``max_inflight`` +
  ``max_queue``) sheds with 429 + ``Retry-After`` and zero 5xx;
* per-model circuit breakers open after consecutive typed failures,
  half-open after the cool-down, and close on a successful probe — or
  immediately once a fixed artifact lands on disk (changed mtime);
* graceful drain finishes deadline-bearing in-flight requests and leaks
  no handler threads.

The CI ``serve-chaos`` job runs this file under both ``fork`` and
``spawn`` start methods.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.datasets.synthetic import SyntheticConfig, generate_table_pair
from repro.join.pipeline import JoinPipeline
from repro.serve import JoinServer

FAULT_ENV = "REPRO_FAULT_INJECT"


@pytest.fixture(scope="module")
def fitted_model():
    pair, _ = generate_table_pair(SyntheticConfig(num_rows=150, seed=29))
    model = JoinPipeline(min_support=0.05).fit(
        pair.source, pair.target, source_column="value", target_column="value"
    )
    return pair, model


@pytest.fixture()
def model_dir(fitted_model, tmp_path):
    """A fresh registry directory per test (some tests touch the file)."""
    _, model = fitted_model
    model.save(tmp_path / "synth.json")
    return tmp_path


def post_join(
    server: JoinServer, body: dict, *, timeout: float = 30.0
) -> tuple[int, dict, dict]:
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST",
            "/join/synth",
            json.dumps(body).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        headers = dict(response.getheaders())
        return response.status, json.loads(response.read()), headers
    finally:
        connection.close()


def get(server: JoinServer, path: str) -> tuple[int, dict]:
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


# --------------------------------------------------------------------- #
# Deadlines cut injected hangs into typed 504s
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("site", ["registry", "engine", "server"])
def test_injected_hang_answers_504_within_twice_the_deadline_then_recovers(
    model_dir, monkeypatch, site
):
    body = {"source": ["a"], "target": ["a"], "deadline_ms": 500}
    with JoinServer(model_dir, port=0) as server:
        server.start_background()
        monkeypatch.setenv(FAULT_ENV, f"hang:where={site}")
        started = time.monotonic()
        status, payload, _ = post_join(server, body)
        elapsed = time.monotonic() - started
        assert status == 504
        assert payload["error"]["type"] == "DeadlineExceededError"
        # Complete-or-error: a 504 body never smuggles partial pairs.
        assert "pairs" not in payload
        assert 0.45 <= elapsed < 1.2  # ~deadline + one injection tick
        # Removing the fault restores service on the very next request.
        monkeypatch.delenv(FAULT_ENV)
        status, payload, _ = post_join(server, body)
        assert status == 200
        assert "pairs" in payload
        _, stats = get(server, "/stats")
        assert stats["resilience"]["deadline_exceeded"] == 1


def test_server_default_timeout_applies_without_deadline_ms(
    model_dir, monkeypatch
):
    """``--request-timeout-s`` is the backstop for budget-less requests."""
    with JoinServer(model_dir, port=0, request_timeout_s=0.4) as server:
        server.start_background()
        monkeypatch.setenv(FAULT_ENV, "hang:where=engine")
        started = time.monotonic()
        status, payload, _ = post_join(server, {"source": ["a"], "target": ["a"]})
        elapsed = time.monotonic() - started
        assert status == 504
        assert payload["error"]["type"] == "DeadlineExceededError"
        assert elapsed < 1.2


# --------------------------------------------------------------------- #
# Saturation sheds 429, never 5xx
# --------------------------------------------------------------------- #
def test_saturation_sheds_429_with_retry_after_and_zero_5xx(
    model_dir, monkeypatch
):
    with JoinServer(model_dir, port=0, max_inflight=1, max_queue=1) as server:
        server.start_background()
        # Warm the model first so the admitted requests are fast and the
        # slow fault below dominates their latency deterministically.
        status, _, _ = post_join(server, {"source": ["a"], "target": ["a"]})
        assert status == 200
        monkeypatch.setenv(FAULT_ENV, "slow:where=engine:seconds=0.4")
        clients = 6
        barrier = threading.Barrier(clients)
        results: list[tuple[int, dict, dict]] = []
        lock = threading.Lock()

        def client() -> None:
            barrier.wait()
            outcome = post_join(
                server, {"source": ["a"], "target": ["a"], "deadline_ms": 20_000}
            )
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=client) for _ in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        statuses = sorted(status for status, _, _ in results)
        assert len(statuses) == clients
        # Shed or served — overload must never surface as a server error.
        assert all(status in (200, 429) for status in statuses)
        assert statuses.count(429) >= 1
        assert statuses.count(200) >= 1
        for status, payload, headers in results:
            if status == 429:
                assert payload["error"]["type"] == "OverloadedError"
                assert int(headers["Retry-After"]) >= 1
        monkeypatch.delenv(FAULT_ENV)
        _, stats = get(server, "/stats")
        assert stats["admission"]["shed"] == statuses.count(429)
        assert stats["resilience"]["shed"] == statuses.count(429)
        assert stats["admission"]["in_flight"] == 0


def test_healthz_reports_overloaded_while_slots_are_full(
    model_dir, monkeypatch
):
    with JoinServer(model_dir, port=0, max_inflight=1, max_queue=1) as server:
        server.start_background()
        status, _, _ = post_join(server, {"source": ["a"], "target": ["a"]})
        assert status == 200
        monkeypatch.setenv(FAULT_ENV, "slow:where=engine:seconds=0.6")
        done: list[int] = []

        def slow_client() -> None:
            status, _, _ = post_join(
                server, {"source": ["a"], "target": ["a"], "deadline_ms": 20_000}
            )
            done.append(status)

        thread = threading.Thread(target=slow_client)
        thread.start()
        deadline = time.monotonic() + 5.0
        overloaded = None
        while time.monotonic() < deadline:
            status, payload = get(server, "/healthz")
            if status == 503 and payload["status"] == "overloaded":
                overloaded = payload
                break
            time.sleep(0.02)
        thread.join(timeout=30)
        assert overloaded is not None
        assert done == [200]
        status, payload = get(server, "/healthz")
        assert status == 200 and payload["status"] == "ok"


# --------------------------------------------------------------------- #
# Circuit breaker transitions over HTTP
# --------------------------------------------------------------------- #
def test_breaker_opens_half_opens_and_closes(model_dir, monkeypatch):
    with JoinServer(
        model_dir, port=0, breaker_threshold=2, breaker_cooldown_s=0.4
    ) as server:
        server.start_background()
        monkeypatch.setenv(FAULT_ENV, "raise:where=engine")
        for _ in range(2):
            status, payload, _ = post_join(server, {"source": ["a"], "target": ["a"]})
            assert status == 500
            assert payload["error"]["type"] == "FaultInjected"
        # Threshold reached: the breaker fails fast without the engine.
        status, payload, headers = post_join(server, {"source": ["a"], "target": ["a"]})
        assert status == 503
        assert payload["error"]["type"] == "CircuitOpenError"
        assert int(headers["Retry-After"]) >= 1
        monkeypatch.delenv(FAULT_ENV)
        # The fault is gone but the cool-down has not elapsed: still open.
        status, _, _ = post_join(server, {"source": ["a"], "target": ["a"]})
        assert status == 503
        time.sleep(0.5)
        # Half-open probe goes through and succeeds: breaker closes.
        status, payload, _ = post_join(server, {"source": ["a"], "target": ["a"]})
        assert status == 200
        status, _, _ = post_join(server, {"source": ["a"], "target": ["a"]})
        assert status == 200
        _, stats = get(server, "/stats")
        breaker = stats["engine"]["breakers"]["synth"]
        assert breaker["state"] == "closed"
        assert breaker["times_opened"] >= 1
        assert breaker["rejected"] >= 2


def test_breaker_closes_immediately_after_artifact_reload(
    model_dir, monkeypatch
):
    """A fixed model landing on disk (changed mtime) admits the probe
    without waiting out the cool-down."""
    with JoinServer(
        model_dir, port=0, breaker_threshold=1, breaker_cooldown_s=3600.0
    ) as server:
        server.start_background()
        monkeypatch.setenv(FAULT_ENV, "raise:where=engine")
        status, _, _ = post_join(server, {"source": ["a"], "target": ["a"]})
        assert status == 500
        monkeypatch.delenv(FAULT_ENV)
        # Open, and the cool-down is an hour: rejected.
        status, _, _ = post_join(server, {"source": ["a"], "target": ["a"]})
        assert status == 503
        # The operator ships a fixed artifact (same content, new mtime).
        model_path = model_dir / "synth.json"
        stat = model_path.stat()
        os.utime(
            model_path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000)
        )
        status, payload, _ = post_join(server, {"source": ["a"], "target": ["a"]})
        assert status == 200
        assert "pairs" in payload
        _, stats = get(server, "/stats")
        assert stats["engine"]["breakers"]["synth"]["state"] == "closed"


# --------------------------------------------------------------------- #
# Graceful drain under deadline-bearing in-flight load
# --------------------------------------------------------------------- #
def test_drain_finishes_inflight_deadline_requests_without_leaking_threads(
    model_dir, monkeypatch
):
    baseline = set(threading.enumerate())
    server = JoinServer(model_dir, port=0)
    server.start_background()
    status, _, _ = post_join(server, {"source": ["a"], "target": ["a"]})
    assert status == 200
    monkeypatch.setenv(FAULT_ENV, "slow:where=engine:seconds=0.4")
    results: list[int] = []

    def inflight_client() -> None:
        status, _, _ = post_join(
            server, {"source": ["a"], "target": ["a"], "deadline_ms": 20_000}
        )
        results.append(status)

    # A keep-alive connection opened *before* the drain: its handler
    # thread keeps serving it after the accept loop stops, which is how a
    # load balancer's health check observes the 503 flip.
    host, port = server.address
    probe = HTTPConnection(host, port, timeout=30)
    probe.request("GET", "/healthz")
    response = probe.getresponse()
    assert response.status == 200
    response.read()

    client_thread = threading.Thread(target=inflight_client)
    client_thread.start()
    time.sleep(0.15)  # the slow request is now mid-flight
    server.request_shutdown()
    probe.request("GET", "/healthz")
    response = probe.getresponse()
    payload = json.loads(response.read())
    probe.close()
    assert response.status == 503 and payload["status"] == "draining"
    client_thread.join(timeout=30)
    # Drain waited for the in-flight request; it completed, not 5xx/cut.
    assert results == [200]
    server.close()
    assert server._serve_thread is None
    # No leaked handler/serve threads: everything spawned since the
    # baseline snapshot must wind down (the drain helper is a daemon that
    # exits as soon as shutdown() returns).
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        leaked = [
            thread
            for thread in threading.enumerate()
            if thread not in baseline and thread.is_alive()
        ]
        if not leaked:
            break
        time.sleep(0.05)
    assert leaked == []
