"""Integration tests: the discovery engine on the paper's running examples."""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery, discover_transformations
from repro.core.pairs import pairs_from_strings
from repro.core.units import Literal, Split, SplitSubstr


class TestNameInitialExample:
    """Figure 1 (right pair): 'Last, First' -> 'F Last'."""

    def test_single_transformation_covers_everything(self, engine, name_initial_pairs):
        result = engine.discover_from_strings(name_initial_pairs)
        assert result.top_coverage == 1.0
        assert result.cover_coverage == 1.0
        assert result.num_transformations == 1

    def test_discovered_transformation_matches_the_paper(self, engine, name_initial_pairs):
        result = engine.discover_from_strings(name_initial_pairs)
        best = result.best.transformation
        # The paper's Section 3.2 walk-through ends with exactly this program.
        assert best == Transformation_expected()

    def test_generalizes_to_unseen_rows(self, engine, name_initial_pairs):
        result = engine.discover_from_strings(name_initial_pairs)
        best = result.best.transformation
        assert best.apply("Czarnecki, Andrzej") == "A Czarnecki"
        assert best.apply("Prus-Czarnecki, Andrzej") == "A Prus-Czarnecki"


def Transformation_expected():
    from repro.core.transformation import Transformation

    return Transformation([SplitSubstr(" ", 2, 0, 1), Literal(" "), Split(",", 1)])


class TestNameEmailExample:
    """Figure 2: 'last, first' -> 'first.last@ualberta.ca'."""

    def test_full_coverage_with_one_transformation(self, engine, name_email_pairs):
        result = engine.discover_from_strings(name_email_pairs)
        assert result.top_coverage == 1.0
        best = result.best.transformation
        assert best.apply("gingrich, douglas") == "douglas.gingrich@ualberta.ca"

    def test_constant_domain_becomes_a_literal(self, engine, name_email_pairs):
        result = engine.discover_from_strings(name_email_pairs)
        literals = [
            unit.text
            for unit in result.best.transformation.units
            if isinstance(unit, Literal)
        ]
        assert any("@ualberta.ca" in text for text in literals)


class TestPhoneExample:
    def test_phone_reformatting_is_learned(self, engine, phone_pairs):
        result = engine.discover_from_strings(phone_pairs)
        assert result.top_coverage == 1.0
        best = result.best.transformation
        assert best.apply("(604) 555-1234") == "1-604-555-1234"


class TestMultiRuleInput:
    def test_covering_set_uses_multiple_transformations(self, engine, mixed_rule_pairs):
        result = engine.discover_from_strings(mixed_rule_pairs)
        assert result.cover_coverage == 1.0
        assert result.num_transformations == 2
        # No single transformation can cover both formatting families.
        assert result.top_coverage == pytest.approx(0.5)

    def test_uncovered_rows_empty_when_fully_covered(self, engine, mixed_rule_pairs):
        result = engine.discover_from_strings(mixed_rule_pairs)
        assert result.uncovered_rows() == frozenset()


class TestNoiseHandling:
    def test_noisy_rows_do_not_block_discovery(self, engine, name_initial_pairs):
        noisy = name_initial_pairs + [("garbage input", "unrelated output ###")]
        result = engine.discover_from_strings(noisy)
        # The clean rows are still covered by the paper's transformation.
        assert result.top_coverage >= len(name_initial_pairs) / len(noisy)

    def test_min_support_filters_noise_only_rules(self, name_initial_pairs):
        noisy = name_initial_pairs + [("garbage input", "unrelated output ###")]
        config = DiscoveryConfig(min_support=2)
        result = TransformationDiscovery(config).discover_from_strings(noisy)
        for coverage in result.cover:
            assert coverage.coverage >= 2


class TestLemmaExamples:
    def test_lemma_3_non_maximal_placeholders_can_win(self):
        """The Split-based example before Lemma 3.

        Sources have a unique separator; splitting on it covers one row each,
        whereas the literal 'a' + split on 'a' covers both rows.
        """
        pairs = [
            ("12345sabcdefg", "abcdefg"),
            ("67890taxxxx", "axxxx"),
        ]
        result = discover_transformations(pairs)
        assert result.cover_coverage == 1.0

    def test_substr_example_of_lemma_2(self):
        """The Substr example of Section 4.1.2 (two rows, different programs)."""
        pairs = [
            ("abcdefghijklmn", "defg.jkb"),
            ("0123456789abcd", "d456.9ab"),
        ]
        result = discover_transformations(pairs)
        # Both rows are coverable (individually or jointly).
        assert result.cover_coverage == 1.0


class TestSamplingBehaviour:
    def test_sampled_discovery_still_covers_full_input(self):
        # Deterministic corpus: 'last, first' -> 'first last'.
        pairs = [
            (f"last{i:03d}, first{i:03d}", f"first{i:03d} last{i:03d}")
            for i in range(60)
        ]
        config = DiscoveryConfig(sample_size=10, sample_seed=3)
        result = TransformationDiscovery(config).discover_from_strings(pairs)
        assert result.stats.num_pairs == 60
        assert result.top_coverage == 1.0

    def test_sampling_reduces_generation_work(self):
        pairs = [
            (f"last{i:03d}, first{i:03d}", f"first{i:03d} last{i:03d}")
            for i in range(60)
        ]
        full = TransformationDiscovery(DiscoveryConfig()).discover_from_strings(pairs)
        sampled = TransformationDiscovery(
            DiscoveryConfig(sample_size=10)
        ).discover_from_strings(pairs)
        assert (
            sampled.stats.generated_transformations
            < full.stats.generated_transformations
        )


class TestEmptyAndDegenerateInputs:
    def test_empty_input(self, engine):
        result = engine.discover([])
        assert result.best is None
        assert result.cover_coverage == 0.0

    def test_single_pair(self, engine):
        result = engine.discover_from_strings([("Rafiei, Davood", "D Rafiei")])
        assert result.top_coverage == 1.0

    def test_identical_source_and_target(self, engine):
        result = engine.discover_from_strings([("same", "same"), ("also", "also")])
        assert result.cover_coverage == 1.0

    def test_empty_target_rows_are_ignored(self, engine):
        result = engine.discover_from_strings([("abc", ""), ("Rafiei, Davood", "D Rafiei")])
        # The empty-target row cannot be covered, but discovery still works.
        assert result.top_coverage >= 0.5

    def test_pairs_from_row_pairs(self, engine):
        result = engine.discover(
            pairs_from_strings([("Rafiei, Davood", "D Rafiei")])
        )
        assert result.best is not None
