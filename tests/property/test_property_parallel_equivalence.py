"""Sharded/serial equivalence: process sharding must not change any result.

The process-sharded engines of :mod:`repro.parallel` re-run the exact serial
kernels over row shards, so their outputs must be *byte-identical* to the
serial engines for every worker count:

* sharded coverage must reproduce the serial batched engine's covered rows
  **and** its cache statistics (every cache in the walk is per-row, so the
  hit/miss/application tallies are shard-invariant);
* the sharded matcher must reproduce the serial packed matcher's pairs —
  same pairs, same order, including Rscore ties (tie-breaking is
  order-independent, so it survives per-process string-hash seeds);
* results must be cache-independent: re-running on a warm computer, or
  interleaving serial and sharded calls, changes nothing;
* the ``num_workers=0`` knob must resolve to ``os.cpu_count()``.

Worker counts {1, 2, 3} are exercised on randomized inputs (1 takes the
serial path — the degenerate case of the knob — while 2 and 3 fork real
pools), plus the spawn start method for the pickle-once fallback.

Every sharded construction here disables the small-input fast path
(``min_rows_per_worker=0``): these inputs are tiny by design, and the tuning
would otherwise serialize them — correct, but then no pool would ever fork
and the equivalence under test would be vacuous.
"""

from __future__ import annotations

import os
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DiscoveryConfig
from repro.core.coverage import CoverageComputer
from repro.core.discovery import TransformationDiscovery
from repro.core.pairs import pairs_from_strings
from repro.core.transformation import Transformation
from repro.core.units import Literal, Split, SplitSubstr, Substr
from repro.datasets.synthetic import SyntheticConfig, generate_table_pair
from repro.matching.index import InvertedIndex
from repro.matching.reference import ReferenceRowMatcher
from repro.matching.row_matcher import MatchingConfig, NGramRowMatcher
from repro.parallel.coverage import sharded_coverage
from repro.parallel.executor import resolve_num_workers
from repro.parallel.matching import sharded_match

WORKER_COUNTS = (1, 2, 3)

CELL = st.text(
    alphabet=string.ascii_lowercase + string.digits + " ,-.", max_size=14
)
TIGHT_CELL = st.text(alphabet="ab ", min_size=0, max_size=10)

UNITS = st.one_of(
    st.builds(Literal, st.text(alphabet="ab, ", min_size=0, max_size=3)),
    st.builds(
        Substr,
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=7, max_value=12),
    ),
    st.builds(Split, st.sampled_from([",", " ", "-"]), st.integers(1, 3)),
    st.builds(
        SplitSubstr,
        st.sampled_from([",", " "]),
        st.integers(1, 2),
        st.integers(0, 2),
        st.integers(3, 5),
    ),
)

TRANSFORMATIONS = st.lists(
    st.builds(Transformation, st.lists(UNITS, min_size=1, max_size=4)),
    min_size=0,
    max_size=15,
)

STRING_PAIRS = st.lists(st.tuples(CELL, CELL), min_size=0, max_size=10)

# Forking a pool per example makes examples ~10ms+, so these property tests
# run fewer examples than the serial equivalence suite; the deterministic
# dataset tests below cover volume.
POOL_SETTINGS = settings(max_examples=15, deadline=None)


def stats_tuple(computer: CoverageComputer) -> tuple[int, int, int]:
    return (
        computer.stats.cache_hits,
        computer.stats.cache_misses,
        computer.stats.applications,
    )


def assert_sharded_coverage_matches_serial(pairs, transformations, workers):
    serial = CoverageComputer(pairs, num_workers=1)
    sharded = CoverageComputer(pairs, num_workers=workers, min_rows_per_worker=0)
    serial_results = serial.coverage_of_all(transformations)
    sharded_results = sharded.coverage_of_all(transformations)
    assert sharded_results == serial_results
    # Every cache in the batched walk is per-row, so even the exact cache
    # statistics are shard-invariant.
    assert stats_tuple(sharded) == stats_tuple(serial)


def assert_sharded_match_equals_serial(source, target, config, workers):
    serial = NGramRowMatcher(config).match_values(source, target)
    sharded_config = MatchingConfig(
        min_ngram=config.min_ngram,
        max_ngram=config.max_ngram,
        lowercase=config.lowercase,
        max_candidates_per_row=config.max_candidates_per_row,
        stop_gram_cap=config.stop_gram_cap,
        num_workers=workers,
        min_rows_per_worker=0,
    )
    sharded = NGramRowMatcher(sharded_config).match_values(source, target)
    assert sharded == serial
    reference = ReferenceRowMatcher(config).match_values(source, target)
    assert sharded == reference


class TestShardedCoverageEquivalence:
    @POOL_SETTINGS
    @given(
        raw_pairs=STRING_PAIRS,
        transformations=TRANSFORMATIONS,
        workers=st.sampled_from(WORKER_COUNTS),
    )
    def test_matches_serial_on_random_inputs(
        self, raw_pairs, transformations, workers
    ):
        assert_sharded_coverage_matches_serial(
            pairs_from_strings(raw_pairs), transformations, workers
        )

    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2))
    def test_matches_serial_on_synthetic_discovery(self, seed):
        pair, _ = generate_table_pair(
            SyntheticConfig(num_rows=30, seed=seed), name="sharded-eq"
        )
        string_pairs = pair.golden_string_pairs()
        serial = TransformationDiscovery(
            DiscoveryConfig(sample_size=10, num_workers=1)
        ).discover_from_strings(string_pairs)
        for workers in WORKER_COUNTS:
            sharded = TransformationDiscovery(
                DiscoveryConfig(
                    sample_size=10, num_workers=workers, min_rows_per_worker=0
                )
            ).discover_from_strings(string_pairs)
            assert sharded.top == serial.top
            assert sharded.cover == serial.cover
            assert (
                sharded.stats.cache_hits,
                sharded.stats.cache_misses,
                sharded.stats.applications,
            ) == (
                serial.stats.cache_hits,
                serial.stats.cache_misses,
                serial.stats.applications,
            )

    @POOL_SETTINGS
    @given(transformations=TRANSFORMATIONS)
    def test_results_are_cache_independent(self, transformations):
        # A warm persistent cache must not change what a subsequent sharded
        # call returns, and sharded runs must be repeatable: workers always
        # start from fresh per-row caches.
        pairs = pairs_from_strings([("a,b", "b"), ("a b", "a"), ("ab", "ba")])
        expected = CoverageComputer(pairs, num_workers=1).coverage_of_all(
            transformations
        )
        warm = CoverageComputer(pairs, num_workers=2, min_rows_per_worker=0)
        # coverage_of runs serially and populates the computer's persistent
        # per-row non-covering-unit sets — the actual warm-cache scenario.
        assert [
            warm.coverage_of(transformation) for transformation in transformations
        ] == expected
        assert warm.coverage_of_all(transformations) == expected
        assert warm.coverage_of_all(transformations) == expected

    def test_spawn_fallback_matches_fork(self):
        # The pickle-once fallback for platforms without fork must agree with
        # the serial engine (and therefore with the fork path) exactly.
        pair, _ = generate_table_pair(
            SyntheticConfig(num_rows=15, seed=1), name="spawn-eq"
        )
        pairs = pairs_from_strings(pair.golden_string_pairs())
        transformations = [
            Transformation((SplitSubstr(" ", 1, 0, 3),)),
            Transformation((Split(" ", 1),)),
            Transformation((Literal("x"),)),
        ]
        serial = CoverageComputer(pairs, num_workers=1)
        expected = [
            sorted(result.covered_rows)
            for result in serial.coverage_of_all(transformations)
        ]
        covered, hits, misses, applications, rows_processed = sharded_coverage(
            pairs,
            transformations,
            use_unit_cache=True,
            num_workers=2,
            start_method="spawn",
        )
        assert [sorted(rows) for rows in covered] == expected
        assert (hits, misses, applications) == stats_tuple(serial)
        assert rows_processed == len(pairs)


class TestShardedMatchingEquivalence:
    @POOL_SETTINGS
    @given(
        source=st.lists(CELL, min_size=1, max_size=8),
        target=st.lists(CELL, min_size=1, max_size=8),
        workers=st.sampled_from(WORKER_COUNTS),
    )
    def test_matches_serial_on_random_inputs(self, source, target, workers):
        assert_sharded_match_equals_serial(
            source, target, MatchingConfig(min_ngram=2, max_ngram=5), workers
        )

    @POOL_SETTINGS
    @given(
        source=st.lists(TIGHT_CELL, min_size=1, max_size=8),
        target=st.lists(TIGHT_CELL, min_size=1, max_size=8),
        workers=st.sampled_from((2, 3)),
    )
    def test_matches_serial_under_rscore_ties(self, source, target, workers):
        # A 3-symbol alphabet forces representative selection to be dominated
        # by tie-breaking, which must be identical across process boundaries
        # (per-process string-hash seeds change set iteration order).
        assert_sharded_match_equals_serial(
            source, target, MatchingConfig(min_ngram=1, max_ngram=3), workers
        )

    @POOL_SETTINGS
    @given(
        source=st.lists(CELL, min_size=1, max_size=6),
        target=st.lists(CELL, min_size=1, max_size=6),
        cap=st.integers(min_value=1, max_value=3),
    )
    def test_matches_serial_with_candidate_cap(self, source, target, cap):
        assert_sharded_match_equals_serial(
            source,
            target,
            MatchingConfig(min_ngram=2, max_ngram=4, max_candidates_per_row=cap),
            2,
        )

    @settings(deadline=None, max_examples=4)
    @given(seed=st.integers(min_value=0, max_value=3))
    def test_matches_serial_on_synthetic_dataset(self, seed):
        pair, _ = generate_table_pair(
            SyntheticConfig(num_rows=50, seed=seed), name="sharded-match-eq"
        )
        source = list(pair.source["value"])
        target = list(pair.target["value"])
        for workers in WORKER_COUNTS:
            assert_sharded_match_equals_serial(
                source, target, MatchingConfig(), workers
            )

    def test_spawn_fallback_matches_fork(self):
        pair, _ = generate_table_pair(
            SyntheticConfig(num_rows=30, seed=9), name="spawn-match-eq"
        )
        source = list(pair.source["value"])
        target = list(pair.target["value"])
        serial = NGramRowMatcher(MatchingConfig()).match_values(source, target)
        index = InvertedIndex.build(target, min_size=4, max_size=20, lowercase=True)
        spawned = sharded_match(
            index,
            source,
            target,
            max_candidates_per_row=0,
            num_workers=2,
            start_method="spawn",
        )
        assert spawned == serial


class TestWorkerKnobs:
    def test_zero_workers_resolves_to_cpu_count(self):
        assert resolve_num_workers(0) == (os.cpu_count() or 1)

    def test_zero_workers_runs_end_to_end(self):
        # num_workers=0 must not crash regardless of the host's core count
        # (on a 1-core host it resolves to the serial path).
        pairs = [("Rafiei, Davood", "D Rafiei"), ("Bowling, Michael", "M Bowling")]
        serial = TransformationDiscovery(
            DiscoveryConfig(num_workers=1)
        ).discover_from_strings(pairs)
        all_cores = TransformationDiscovery(
            DiscoveryConfig(num_workers=0)
        ).discover_from_strings(pairs)
        assert all_cores.top == serial.top
        assert all_cores.cover == serial.cover

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            DiscoveryConfig(num_workers=-1)
        with pytest.raises(ValueError):
            MatchingConfig(num_workers=-1)
        with pytest.raises(ValueError):
            CoverageComputer([], num_workers=-1).coverage_of_all([])

    def test_env_default_reaches_configs(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        assert DiscoveryConfig().num_workers == 3
        assert MatchingConfig().num_workers == 3
        monkeypatch.delenv("REPRO_NUM_WORKERS")
        assert DiscoveryConfig().num_workers == 1
        assert MatchingConfig().num_workers == 1
