"""Old/new equivalence: the packed fast paths must match the seed exactly.

Two engines were rebuilt for performance in the fast-path PR:

* the row matcher (packed inverted index + build-time representatives) must
  return *exactly* the pairs of the preserved seed implementation
  (:class:`repro.matching.reference.ReferenceRowMatcher`) — same pairs, same
  order, including Rscore ties,
* the batched (trie-walking) coverage engine must return *identical*
  :class:`~repro.core.coverage.CoverageResult`'s to the one-transformation-
  at-a-time path.

These properties are exercised with hypothesis over adversarially small
alphabets (to force shared n-grams and score ties) and deterministically on
the synthetic and wordlist-backed datasets.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage import CoverageComputer
from repro.core.pairs import pairs_from_strings
from repro.core.transformation import Transformation
from repro.core.units import (
    Literal,
    Split,
    SplitSubstr,
    Substr,
    TwoCharSplitSubstr,
)
from repro.datasets.synthetic import SyntheticConfig, generate_table_pair
from repro.datasets.web_tables import TOPICS, generate_pair
from repro.matching.reference import ReferenceRowMatcher
from repro.matching.row_matcher import MatchingConfig, NGramRowMatcher

# A tiny alphabet makes n-gram collisions — and therefore identical row
# frequencies and Rscore ties — very likely.
TIGHT_CELL = st.text(alphabet="ab ", min_size=0, max_size=10)
CELL = st.text(
    alphabet=string.ascii_lowercase + string.digits + " ,-.", max_size=14
)


def assert_matchers_agree(source_values, target_values, config):
    packed = NGramRowMatcher(config).match_values(source_values, target_values)
    reference = ReferenceRowMatcher(config).match_values(source_values, target_values)
    assert packed == reference


class TestMatcherEquivalence:
    @given(
        source=st.lists(CELL, min_size=1, max_size=10),
        target=st.lists(CELL, min_size=1, max_size=10),
    )
    def test_packed_matches_reference(self, source, target):
        assert_matchers_agree(
            source, target, MatchingConfig(min_ngram=2, max_ngram=5)
        )

    @given(
        source=st.lists(TIGHT_CELL, min_size=1, max_size=10),
        target=st.lists(TIGHT_CELL, min_size=1, max_size=10),
    )
    def test_packed_matches_reference_under_rscore_ties(self, source, target):
        # With a 3-symbol alphabet most n-grams collide, so representative
        # selection is dominated by tie-breaking.
        assert_matchers_agree(
            source, target, MatchingConfig(min_ngram=1, max_ngram=3)
        )

    @given(
        source=st.lists(CELL, min_size=1, max_size=8),
        target=st.lists(CELL, min_size=1, max_size=8),
        cap=st.integers(min_value=1, max_value=3),
    )
    def test_packed_matches_reference_with_candidate_cap(self, source, target, cap):
        assert_matchers_agree(
            source,
            target,
            MatchingConfig(min_ngram=2, max_ngram=4, max_candidates_per_row=cap),
        )

    @settings(deadline=None)
    @given(case_sensitive=st.booleans())
    def test_packed_matches_reference_on_synthetic_dataset(self, case_sensitive):
        pair, _ = generate_table_pair(
            SyntheticConfig(num_rows=60, seed=7), name="equivalence"
        )
        assert_matchers_agree(
            list(pair.source["value"]),
            list(pair.target["value"]),
            MatchingConfig(lowercase=not case_sensitive),
        )

    @settings(deadline=None, max_examples=len(TOPICS))
    @given(topic_index=st.integers(min_value=0, max_value=len(TOPICS) - 1))
    def test_packed_matches_reference_on_wordlist_tables(self, topic_index):
        # The web-table topics compose the wordlists (names, streets, cities)
        # into realistic cells with many repeated n-grams across rows.
        pair = generate_pair(TOPICS[topic_index], num_rows=40, seed=11)
        assert_matchers_agree(
            list(pair.source["join"]),
            list(pair.target["join"]),
            MatchingConfig(),
        )


# --------------------------------------------------------------------------- #
# Coverage equivalence
# --------------------------------------------------------------------------- #
UNITS = st.one_of(
    st.builds(Literal, st.text(alphabet="ab, ", min_size=0, max_size=3)),
    st.builds(
        Substr,
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=7, max_value=12),
    ),
    st.builds(Split, st.sampled_from([",", " ", "-"]), st.integers(1, 3)),
    st.builds(
        SplitSubstr,
        st.sampled_from([",", " "]),
        st.integers(1, 2),
        st.integers(0, 2),
        st.integers(3, 5),
    ),
    # Exercises the two-delimiter specialization of the batched kernel,
    # including multi-character delimiters (which the reference _split can
    # never split on — the specialized op must replicate that exactly).
    st.builds(
        TwoCharSplitSubstr,
        st.sampled_from([",", " ", "ab"]),
        st.sampled_from(["-", ".", "b "]),
        st.integers(1, 2),
        st.integers(0, 1),
        st.integers(2, 4),
    ),
)

TRANSFORMATIONS = st.lists(
    st.builds(Transformation, st.lists(UNITS, min_size=1, max_size=4)),
    min_size=0,
    max_size=25,
)

STRING_PAIRS = st.lists(
    st.tuples(CELL, CELL),
    min_size=0,
    max_size=12,
)


def assert_coverage_engines_agree(pairs, transformations, *, use_unit_cache=True):
    batched = CoverageComputer(pairs, use_unit_cache=use_unit_cache)
    unbatched = CoverageComputer(pairs, use_unit_cache=use_unit_cache)
    batched_results = batched.coverage_of_all(transformations, batched=True)
    unbatched_results = unbatched.coverage_of_all(transformations, batched=False)
    assert batched_results == unbatched_results
    # Both paths classify every (transformation, row) application exactly once.
    expected = len(transformations) * len(pairs)
    assert batched.stats.cache_hits + batched.stats.cache_misses == expected
    assert unbatched.stats.cache_hits + unbatched.stats.cache_misses == expected


class TestAnchorAutomaton:
    @given(
        texts=st.lists(
            st.text(alphabet="ab, ", min_size=1, max_size=5),
            min_size=1,
            max_size=12,
            unique=True,
        ),
        target=st.text(alphabet="ab, ", max_size=20),
    )
    def test_scan_matches_substring_search(self, texts, target):
        # The automaton is the prefilter's ground truth for anchor presence:
        # one scan of the target must find exactly the anchors a substring
        # search would, including overlapping and nested patterns.
        from repro.core.coverage import _build_anchor_automaton

        goto, fail, outputs = _build_anchor_automaton(texts)
        found: set[int] = set()
        state = 0
        for char in target:
            next_state = goto[state].get(char)
            while next_state is None and state:
                state = fail[state]
                next_state = goto[state].get(char)
            state = next_state if next_state is not None else 0
            found.update(outputs[state])
        expected = {
            text_id for text_id, text in enumerate(texts) if text in target
        }
        assert found == expected


class TestCoverageEquivalence:
    @given(raw_pairs=STRING_PAIRS, transformations=TRANSFORMATIONS)
    def test_batched_matches_unbatched(self, raw_pairs, transformations):
        assert_coverage_engines_agree(pairs_from_strings(raw_pairs), transformations)

    @given(raw_pairs=STRING_PAIRS, transformations=TRANSFORMATIONS)
    def test_batched_matches_unbatched_without_cache(
        self, raw_pairs, transformations
    ):
        assert_coverage_engines_agree(
            pairs_from_strings(raw_pairs), transformations, use_unit_cache=False
        )

    @given(transformations=TRANSFORMATIONS)
    def test_batched_handles_duplicate_transformations(self, transformations):
        # Duplicates share one trie path but must each report their coverage
        # (the no-duplicate-removal ablation relies on this).
        pairs = pairs_from_strings([("a,b", "b"), ("a b", "a")])
        assert_coverage_engines_agree(pairs, transformations + transformations)

    @given(
        raw_pairs=STRING_PAIRS,
        anchors=st.lists(
            st.text(alphabet="ab, ", min_size=1, max_size=4),
            min_size=1,
            max_size=4,
        ),
        transformations=TRANSFORMATIONS,
    )
    def test_literal_anchored_prefilter_preserves_results(
        self, raw_pairs, anchors, transformations
    ):
        # Force every transformation through literal anchors (prepended and
        # appended), so the prefilter's required-set pruning fires on every
        # trie edge — covered rows and the accounting invariant must be
        # unchanged.  Mostly-absent anchors make whole-subtree skips the
        # common case, mirroring the real workload.
        anchored = [
            Transformation(
                (Literal(anchors[index % len(anchors)]),)
                + transformation.units
                + (Literal(anchors[(index + 1) % len(anchors)]),)
            )
            for index, transformation in enumerate(transformations)
        ]
        assert_coverage_engines_agree(
            pairs_from_strings(raw_pairs), anchored + transformations
        )

    @given(raw_pairs=STRING_PAIRS, transformations=TRANSFORMATIONS)
    def test_anchorless_transformations_are_a_prefilter_noop(
        self, raw_pairs, transformations
    ):
        # Strip every literal: no anchors, no required sets — the prefilter
        # degrades to a no-op and the walk must still match the reference.
        stripped = []
        for transformation in transformations:
            units = tuple(
                unit for unit in transformation.units if unit.anchor_text is None
            )
            if units:
                stripped.append(Transformation(units))
        assert_coverage_engines_agree(pairs_from_strings(raw_pairs), stripped)

    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=3))
    def test_batched_matches_unbatched_on_synthetic_discovery(self, seed):
        from repro.core.config import DiscoveryConfig
        from repro.core.discovery import TransformationDiscovery

        pair, _ = generate_table_pair(
            SyntheticConfig(num_rows=30, seed=seed), name="coverage-eq"
        )
        string_pairs = pair.golden_string_pairs()
        batched = TransformationDiscovery(
            DiscoveryConfig(sample_size=10)
        ).discover_from_strings(string_pairs)
        unbatched = TransformationDiscovery(
            DiscoveryConfig(sample_size=10, use_batched_coverage=False)
        ).discover_from_strings(string_pairs)
        assert batched.top == unbatched.top
        assert batched.cover == unbatched.cover
