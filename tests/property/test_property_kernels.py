"""Kernel tier equivalence: every vectorized path must be byte-identical.

The numpy tier of :mod:`repro.kernels` is an *implementation* of the serial
Python walkers, never a reinterpretation — so equality here is exact, not
approximate, at three levels:

* **op level** — every py/np dual in :mod:`repro.kernels.blocks` and
  :mod:`repro.kernels.bitset` computes elementwise-equal values on
  randomized inputs;
* **walker level** — the numpy coverage walker returns the same covered
  rows *and the same cache statistics* as the reference walk (every cache
  is per-row, so the tallies are tier-invariant), and the numpy apply
  walker returns the same ``(row, output)`` pairs as the reference, both
  pinned to ``Transformation.apply`` row by row;
* **engine level** — ``CoverageComputer`` produces identical coverage
  under ``use_tier("python")`` and ``use_tier("numpy")`` across worker
  counts {1, 2, 3}, and the sharded matching-index build reproduces the
  serial ``InvertedIndex`` byte for byte (postings *dict order* included)
  under fork and spawn — the spawn case is what caught the string-hash-seed
  ordering bug fixed in ``unique_ngrams_by_size``.

numpy-vs-python cases skip themselves when the numpy tier is not active;
the CI forced-fallback leg (``REPRO_KERNELS=python``) still runs the
tier-independent cases — dispatch plumbing, sharded index identity — so the
override path is exercised, not just the tier it selects.
"""

from __future__ import annotations

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.coverage import (
    CoverageComputer,
    _build_unit_trie,
    _walk_trie_rows_python,
)
from repro.core.pairs import pairs_from_strings
from repro.core.transformation import Transformation
from repro.core.units import Literal, Split, SplitSubstr, Substr
from repro.kernels import bitset, blocks
from repro.matching.index import InvertedIndex
from repro.model.apply import _transform_trie_rows_python

NUMPY_TIER = kernels.numpy_or_none() is not None
needs_numpy = pytest.mark.skipif(
    not NUMPY_TIER,
    reason="numpy tier not active (numpy missing or REPRO_KERNELS=python)",
)

WORKER_COUNTS = (1, 2, 3)

CELL = st.text(
    alphabet=string.ascii_lowercase + string.digits + " ,-.", max_size=14
)

UNITS = st.one_of(
    st.builds(Literal, st.text(alphabet="ab, ", min_size=0, max_size=3)),
    st.builds(
        Substr,
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=7, max_value=12),
    ),
    st.builds(Split, st.sampled_from([",", " ", "-"]), st.integers(1, 3)),
    st.builds(
        SplitSubstr,
        st.sampled_from([",", " "]),
        st.integers(1, 2),
        st.integers(0, 2),
        st.integers(3, 5),
    ),
)

TRANSFORMATIONS = st.lists(
    st.builds(Transformation, st.lists(UNITS, min_size=1, max_size=4)),
    min_size=0,
    max_size=12,
)

STRING_PAIRS = st.lists(st.tuples(CELL, CELL), min_size=0, max_size=10)


# --------------------------------------------------------------------------
# Op level: the py/np duals of repro.kernels.blocks / repro.kernels.bitset.
# --------------------------------------------------------------------------


@needs_numpy
@given(statuses=st.lists(st.integers(min_value=0, max_value=2), max_size=60))
def test_partition_statuses_dual(statuses):
    assert blocks.partition_statuses_np(statuses) == (
        blocks.partition_statuses_py(statuses)
    )


@st.composite
def _startswith_cases(draw):
    """Rows of (target, prefix, valid start offset) — offsets never exceed
    the target length, matching the walker's caller guarantee."""
    targets = draw(st.lists(CELL, max_size=20))
    prefixes = [
        draw(st.text(alphabet="ab, .", max_size=4)) for _ in targets
    ]
    starts = [
        draw(st.integers(min_value=0, max_value=len(target)))
        for target in targets
    ]
    return targets, prefixes, starts


@needs_numpy
@given(case=_startswith_cases())
def test_startswith_at_dual(case):
    targets, prefixes, starts = case
    assert blocks.startswith_at_np(targets, prefixes, starts) == (
        blocks.startswith_at_py(targets, prefixes, starts)
    )


@needs_numpy
@given(
    targets=st.lists(CELL, max_size=20),
    outputs=st.lists(st.text(alphabet="ab, .", max_size=5), max_size=20),
)
def test_find_positions_dual(targets, outputs):
    n = min(len(targets), len(outputs))
    targets, outputs = targets[:n], outputs[:n]
    assert blocks.find_positions_np(targets, outputs) == (
        blocks.find_positions_py(targets, outputs)
    )


@needs_numpy
@given(
    member_ends=st.lists(
        st.integers(min_value=0, max_value=20), max_size=10
    ).map(sorted),
    piece_lengths=st.lists(st.integers(min_value=0, max_value=25), max_size=30),
)
def test_slice_cuts_dual(member_ends, piece_lengths):
    assert blocks.slice_cuts_np(member_ends, piece_lengths) == (
        blocks.slice_cuts_py(member_ends, piece_lengths)
    )


@needs_numpy
@given(
    pieces=st.lists(
        st.text(alphabet="abcde", min_size=6, max_size=12), max_size=20
    ),
    start=st.integers(min_value=0, max_value=6),
    length=st.integers(min_value=0, max_value=6),
)
def test_slice_pieces_dual(pieces, start, length):
    # end <= 6 <= len(piece): the callers' in-bounds guarantee.
    end = min(start + length, 6)
    assert blocks.slice_pieces_np(pieces, start, end) == (
        blocks.slice_pieces_py(pieces, start, end)
    )


@needs_numpy
@given(texts=st.lists(CELL, max_size=30))
def test_str_lengths_dual(texts):
    assert blocks.str_lengths_np(texts) == blocks.str_lengths_py(texts)


ROW_SETS = st.lists(
    st.lists(st.integers(min_value=0, max_value=1200), max_size=40).map(
        lambda rows: sorted(set(rows))
    ),
    max_size=8,
)


@needs_numpy
@given(row_sets=ROW_SETS)
def test_bitset_duals(row_sets):
    masks_py = [bitset.mask_from_rows_py(rows) for rows in row_sets]
    masks_np = [bitset.mask_from_rows_np(rows) for rows in row_sets]
    assert masks_py == masks_np
    for rows, mask in zip(row_sets, masks_py):
        assert bitset.rows_from_mask_py(mask) == rows
        assert bitset.rows_from_mask_np(mask) == rows
    assert bitset.union_masks_np(masks_py) == bitset.union_masks_py(masks_py)
    assert bitset.popcounts_np(masks_py) == bitset.popcounts_py(masks_py)


@given(row_sets=ROW_SETS)
def test_bitset_dispatchers_roundtrip_on_active_tier(row_sets):
    # Runs on whichever tier is active — the forced-fallback leg covers the
    # python dispatch, the default leg the numpy dispatch.
    masks = [bitset.mask_from_rows(rows) for rows in row_sets]
    for rows, mask in zip(row_sets, masks):
        assert bitset.rows_from_mask(mask) == rows
        assert mask.bit_count() == len(rows)
    assert bitset.popcounts(masks) == [mask.bit_count() for mask in masks]
    union = bitset.union_masks(masks)
    expected = 0
    for mask in masks:
        expected |= mask
    assert union == expected


# --------------------------------------------------------------------------
# Walker level: the block walkers against the serial reference walks.
# --------------------------------------------------------------------------


@needs_numpy
@settings(deadline=None, max_examples=60)
@given(
    string_pairs=STRING_PAIRS,
    transformations=TRANSFORMATIONS,
    row_offset=st.sampled_from([0, 7]),
    use_cache=st.booleans(),
)
def test_coverage_walker_identical(
    string_pairs, transformations, row_offset, use_cache
):
    """The numpy coverage walk returns the reference's exact tuple:
    covered rows per transformation, cache hits/misses, applications,
    rows processed."""
    from repro.kernels.coverage import available, walk_trie_rows_numpy

    if not available():
        pytest.skip("numpy coverage walker not available")
    pairs = pairs_from_strings(string_pairs)
    trie = _build_unit_trie(transformations)
    # Fresh cache state per walk: with use_cache the walkers *write* the
    # per-row non-covering sets, so sharing one list would leak state from
    # the reference walk into the kernel walk.
    reference = _walk_trie_rows_python(
        pairs, row_offset, trie, [set() for _ in pairs], use_cache
    )
    vectorized = walk_trie_rows_numpy(
        pairs, row_offset, trie, [set() for _ in pairs], use_cache
    )
    assert vectorized == reference


@needs_numpy
@settings(deadline=None, max_examples=60)
@given(
    values=st.lists(CELL, max_size=12),
    transformations=TRANSFORMATIONS,
    row_offset=st.sampled_from([0, 5]),
)
def test_apply_walker_identical_and_pinned_to_apply(
    values, transformations, row_offset
):
    from repro.kernels.apply import available, transform_trie_rows_numpy

    if not available():
        pytest.skip("numpy apply walker not available")
    trie = _build_unit_trie(transformations)
    reference = _transform_trie_rows_python(values, row_offset, trie)
    vectorized = transform_trie_rows_numpy(values, row_offset, trie)
    assert vectorized == reference
    # Both walkers are pinned to the unbatched public semantics: entry
    # (index, row, output) exists iff transformations[index].apply of that
    # row's value returns output (None = row absent).
    for index, transformation in enumerate(transformations):
        produced = dict(reference.get(index, []))
        for slot, value in enumerate(values):
            expected = transformation.apply(value)
            assert produced.get(row_offset + slot) == expected


# --------------------------------------------------------------------------
# Engine level: tiers × worker counts, and the sharded index build.
# --------------------------------------------------------------------------


@needs_numpy
@settings(deadline=None, max_examples=10)
@given(
    string_pairs=st.lists(st.tuples(CELL, CELL), min_size=1, max_size=8),
    transformations=TRANSFORMATIONS,
    num_workers=st.sampled_from(WORKER_COUNTS),
)
def test_coverage_computer_tier_equivalence(
    string_pairs, transformations, num_workers
):
    """CoverageComputer: python tier serial == numpy tier at any worker
    count (min_rows_per_worker=0 forces real pools for workers > 1)."""
    pairs = pairs_from_strings(string_pairs)

    def masks(tier):
        with kernels.use_tier(tier):
            computer = CoverageComputer(
                pairs, num_workers=num_workers, min_rows_per_worker=0
            )
            results = computer.coverage_of_all(list(transformations))
        return [result.covered_mask for result in results], (
            computer.stats.cache_hits,
            computer.stats.cache_misses,
            computer.stats.applications,
        )

    assert masks("numpy") == masks("python")


def _synthetic_rows(count: int) -> list[str]:
    rng = random.Random(7)
    words = ["alpha", "beta", "gamma", "delta", "omega", "zeta", "theta"]
    return [
        " ".join(rng.choice(words) for _ in range(rng.randint(1, 5)))
        + str(rng.randint(0, 999))
        for _ in range(count)
    ]


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
@pytest.mark.parametrize("stop_gram_cap", [0, 40])
def test_sharded_index_build_byte_identical(start_method, stop_gram_cap):
    """The merged sharded index equals the serial build byte for byte —
    including the *insertion order* of the postings dict, which is what the
    string-hash-seed bug broke under spawn before ``unique_ngrams_by_size``
    switched to order-preserving dedup."""
    import multiprocessing

    from repro.parallel.index_build import sharded_index_build

    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {start_method} unavailable")
    rows = _synthetic_rows(300)
    serial = InvertedIndex.build(
        rows, min_size=4, max_size=8, lowercase=True, stop_gram_cap=stop_gram_cap
    )
    for num_workers in WORKER_COUNTS:
        sharded = sharded_index_build(
            rows,
            min_size=4,
            max_size=8,
            lowercase=True,
            stop_gram_cap=stop_gram_cap,
            num_workers=num_workers,
            start_method=start_method,
        )
        assert sharded.num_rows == serial.num_rows
        assert list(sharded._postings) == list(serial._postings)
        for gram, postings in serial._postings.items():
            assert list(sharded._postings[gram]) == list(postings)
        assert sharded._frequency == serial._frequency


@pytest.mark.parametrize("tier", ["python", "numpy"])
def test_sharded_index_build_tier_invariant(tier):
    """The index build is string work, not array work — but it runs inside
    tier-dispatched engines, so pin that both tiers leave it untouched."""
    if tier == "numpy" and not NUMPY_TIER:
        pytest.skip("numpy tier not active")
    from repro.parallel.index_build import sharded_index_build

    rows = _synthetic_rows(120)
    with kernels.use_tier(tier):
        serial = InvertedIndex.build(
            rows, min_size=4, max_size=7, lowercase=True, stop_gram_cap=30
        )
        sharded = sharded_index_build(
            rows,
            min_size=4,
            max_size=7,
            lowercase=True,
            stop_gram_cap=30,
            num_workers=2,
        )
    assert list(sharded._postings) == list(serial._postings)
    assert sharded._frequency == serial._frequency


@settings(deadline=None, max_examples=25)
@given(
    string_pairs=STRING_PAIRS,
    transformations=TRANSFORMATIONS,
    use_cache=st.booleans(),
)
def test_walker_dispatch_matches_reference_on_active_tier(
    string_pairs, transformations, use_cache
):
    """_walk_trie_rows (the tier dispatcher every engine calls) equals the
    reference walk on whichever tier this process resolved — under
    REPRO_KERNELS=python this pins the forced fallback to the spec."""
    from repro.core.coverage import _walk_trie_rows

    pairs = pairs_from_strings(string_pairs)
    trie = _build_unit_trie(transformations)
    reference = _walk_trie_rows_python(
        pairs, 0, trie, [set() for _ in pairs], use_cache
    )
    dispatched = _walk_trie_rows(
        pairs, 0, trie, [set() for _ in pairs], use_cache
    )
    assert dispatched == reference
