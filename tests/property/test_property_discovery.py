"""Property-based tests for the discovery pipeline invariants."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DiscoveryConfig
from repro.core.coverage import CoverageComputer
from repro.core.discovery import TransformationDiscovery
from repro.core.generation import TransformationGenerator
from repro.core.pairs import pairs_from_strings
from repro.core.placeholders import PlaceholderExtractor
from repro.core.skeletons import SkeletonBuilder

WORD = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
TEXT = st.text(
    alphabet=string.ascii_lowercase + string.digits + " ,.-@", min_size=0, max_size=30
)


class TestPlaceholderInvariants:
    @given(source=TEXT, target=TEXT)
    @settings(max_examples=150)
    def test_placeholders_are_common_substrings_tiling_the_target(self, source, target):
        extractor = PlaceholderExtractor()
        placeholders = extractor.maximal_placeholders(source, target)
        previous_end = 0
        for placeholder in placeholders:
            assert placeholder.text in source
            assert (
                target[placeholder.target_start : placeholder.target_end]
                == placeholder.text
            )
            assert placeholder.target_start >= previous_end
            previous_end = placeholder.target_end

    @given(source=TEXT, target=TEXT)
    @settings(max_examples=100)
    def test_source_match_positions_are_correct(self, source, target):
        extractor = PlaceholderExtractor()
        for placeholder in extractor.maximal_placeholders(source, target):
            for position in placeholder.source_matches:
                assert source[position : position + placeholder.length] == placeholder.text


class TestSkeletonInvariants:
    @given(source=TEXT, target=TEXT)
    @settings(max_examples=150)
    def test_skeletons_spell_the_target_and_respect_the_budget(self, source, target):
        config = DiscoveryConfig()
        builder = SkeletonBuilder(config)
        for skeleton in builder.build(source, target):
            assert skeleton.target_text == target
            assert skeleton.num_placeholders <= config.max_placeholders


class TestGenerationInvariants:
    @given(source=TEXT, target=TEXT)
    @settings(max_examples=75)
    def test_generated_transformations_cover_their_own_row(self, source, target):
        if not target:
            return
        config = DiscoveryConfig()
        builder = SkeletonBuilder(config)
        generator = TransformationGenerator(config)
        skeletons = builder.build(source, target)
        for transformation in generator.from_row(source, skeletons):
            assert transformation.apply(source) == target


class TestDiscoveryInvariants:
    @given(
        firsts=st.lists(WORD, min_size=2, max_size=6, unique=True),
        lasts=st.lists(WORD, min_size=2, max_size=6, unique=True),
    )
    @settings(max_examples=30, deadline=None)
    def test_structured_inputs_are_fully_covered(self, firsts, lasts):
        """'last, first' -> 'first last' corpora are always fully coverable."""
        pairs = [
            (f"{last}, {first}", f"{first} {last}")
            for first, last in zip(firsts, lasts)
        ]
        result = TransformationDiscovery().discover_from_strings(pairs)
        assert result.cover_coverage == 1.0

    @given(
        pairs=st.lists(
            st.tuples(TEXT.filter(bool), TEXT.filter(bool)), min_size=1, max_size=6
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_reported_coverage_is_consistent_with_reapplication(self, pairs):
        """Every row a transformation claims to cover is actually covered."""
        row_pairs = pairs_from_strings(pairs)
        result = TransformationDiscovery().discover(row_pairs)
        for coverage in list(result.top) + list(result.cover):
            for row in coverage.covered_rows:
                source, target = pairs[row]
                assert coverage.transformation.apply(source) == target

    @given(
        pairs=st.lists(
            st.tuples(TEXT.filter(bool), TEXT.filter(bool)), min_size=1, max_size=5
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_cover_coverage_at_least_top_coverage(self, pairs):
        result = TransformationDiscovery().discover_from_strings(pairs)
        assert result.cover_coverage >= result.top_coverage - 1e-12

    @given(
        pairs=st.lists(
            st.tuples(TEXT.filter(bool), TEXT.filter(bool)), min_size=1, max_size=5
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_unit_cache_does_not_change_the_outcome(self, pairs):
        with_cache = TransformationDiscovery(
            DiscoveryConfig(use_unit_cache=True)
        ).discover_from_strings(pairs)
        without_cache = TransformationDiscovery(
            DiscoveryConfig(use_unit_cache=False)
        ).discover_from_strings(pairs)
        assert with_cache.top_coverage == without_cache.top_coverage
        assert with_cache.cover_coverage == without_cache.cover_coverage

    @given(
        pairs=st.lists(
            st.tuples(TEXT.filter(bool), TEXT.filter(bool)), min_size=1, max_size=5
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_duplicate_removal_does_not_change_the_outcome(self, pairs):
        with_dedup = TransformationDiscovery(
            DiscoveryConfig(use_duplicate_removal=True)
        ).discover_from_strings(pairs)
        without_dedup = TransformationDiscovery(
            DiscoveryConfig(use_duplicate_removal=False)
        ).discover_from_strings(pairs)
        assert with_dedup.top_coverage == without_dedup.top_coverage
        assert with_dedup.cover_coverage == without_dedup.cover_coverage


class TestCoverageComputerInvariants:
    @given(
        pairs=st.lists(
            st.tuples(TEXT.filter(bool), TEXT.filter(bool)), min_size=1, max_size=6
        ),
        source=TEXT.filter(bool),
        target=TEXT.filter(bool),
    )
    @settings(max_examples=50, deadline=None)
    def test_cache_and_no_cache_agree_on_arbitrary_transformations(
        self, pairs, source, target
    ):
        config = DiscoveryConfig()
        builder = SkeletonBuilder(config)
        generator = TransformationGenerator(config)
        transformations = list(
            generator.from_row(source, builder.build(source, target))
        )[:25]
        if not transformations:
            return
        row_pairs = pairs_from_strings(pairs)
        cached = CoverageComputer(row_pairs, use_unit_cache=True)
        plain = CoverageComputer(row_pairs, use_unit_cache=False)
        for transformation in transformations:
            assert (
                cached.coverage_of(transformation).covered_rows
                == plain.coverage_of(transformation).covered_rows
            )
