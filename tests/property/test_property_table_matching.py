"""Property-based tests for the table substrate and the row matcher."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.index import InvertedIndex
from repro.matching.ngrams import character_ngrams, unique_ngrams
from repro.matching.scoring import inverse_row_frequency
from repro.table.ops import equi_join, hash_join, project
from repro.table.table import Table

CELL = st.text(alphabet=string.ascii_lowercase + string.digits + " ,-", max_size=12)
COLUMN_NAME = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


@st.composite
def tables(draw):
    num_columns = draw(st.integers(min_value=1, max_value=3))
    num_rows = draw(st.integers(min_value=0, max_value=6))
    names = draw(
        st.lists(COLUMN_NAME, min_size=num_columns, max_size=num_columns, unique=True)
    )
    columns = {
        name: draw(st.lists(CELL, min_size=num_rows, max_size=num_rows))
        for name in names
    }
    if num_rows == 0:
        # Tables require at least one column; zero rows are fine.
        return Table({name: [] for name in names})
    return Table(columns)


class TestTableProperties:
    @given(table=tables())
    def test_round_trip_through_records(self, table):
        if table.num_rows == 0:
            return
        assert Table.from_records(table.to_records(), column_order=table.column_names) == table

    @given(table=tables())
    def test_projection_preserves_row_count(self, table):
        projected = project(table, [table.column_names[0]])
        assert projected.num_rows == table.num_rows

    @given(table=tables(), data=st.data())
    def test_take_preserves_values(self, table, data):
        if table.num_rows == 0:
            return
        indices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=table.num_rows - 1),
                min_size=1,
                max_size=5,
            )
        )
        taken = table.take(indices)
        for out_row, src_row in enumerate(indices):
            for name in table.column_names:
                assert taken[name][out_row] == table[name][src_row]

    @given(left=st.lists(CELL, max_size=8), right=st.lists(CELL, max_size=8))
    def test_equi_join_matches_nested_loop_semantics(self, left, right):
        if not left or not right:
            return
        left_table = Table({"k": left})
        right_table = Table({"k": right})
        pairs = set(equi_join(left_table, right_table, left_on="k", right_on="k"))
        expected = {
            (i, j)
            for i, lv in enumerate(left)
            for j, rv in enumerate(right)
            if lv == rv
        }
        assert pairs == expected

    @given(left=st.lists(CELL, min_size=1, max_size=6), right=st.lists(CELL, min_size=1, max_size=6))
    def test_hash_join_row_count_matches_pair_count(self, left, right):
        left_table = Table({"k": left})
        right_table = Table({"k": right})
        joined = hash_join(left_table, right_table, left_on="k", right_on="k")
        pairs = equi_join(left_table, right_table, left_on="k", right_on="k")
        assert joined.num_rows == len(pairs)


class TestMatchingProperties:
    @given(text=CELL, size=st.integers(min_value=1, max_value=5))
    def test_ngram_count(self, text, size):
        grams = character_ngrams(text, size)
        assert len(grams) == max(0, len(text) - size + 1)
        for gram in grams:
            assert gram in text.lower()

    @given(rows=st.lists(CELL, min_size=1, max_size=8))
    def test_inverted_index_is_consistent_with_direct_search(self, rows):
        index = InvertedIndex.build(rows, min_size=2, max_size=3)
        for size in (2, 3):
            for row_id, row in enumerate(rows):
                for gram in unique_ngrams(row, size):
                    assert row_id in index.rows_containing(gram)

    @given(rows=st.lists(CELL, min_size=1, max_size=8), gram=st.text(
        alphabet=string.ascii_lowercase, min_size=2, max_size=3
    ))
    def test_irf_bounds(self, rows, gram):
        index = InvertedIndex.build(rows, min_size=2, max_size=3)
        irf = inverse_row_frequency(gram, index)
        assert 0.0 <= irf <= 1.0
        if irf > 0:
            assert irf >= 1.0 / len(rows)
