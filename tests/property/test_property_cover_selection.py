"""CELF/bitset cover selection must reproduce the set-based spec tie for tie.

The coverage-v3 selection engine replaces the plain greedy scan of
``greedy_minimal_cover`` with a CELF lazy-greedy over packed bitmasks.  Its
contract is exact: across every instance — including ties on gain,
placeholder count, unit count and rendering, duplicate transformations,
support thresholds, and selection caps — the selected sequence must be
*identical* to :func:`repro.core.cover.greedy_minimal_cover_reference`,
which keeps the original set-arithmetic implementation as the executable
spec.  The bitset helpers and set-ops are checked against their frozenset
counterparts the same way.
"""

from __future__ import annotations

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.core.cover import (
    cover_fraction,
    covered_mask,
    covered_rows,
    greedy_minimal_cover,
    greedy_minimal_cover_reference,
    mask_from_rows,
    rows_from_mask,
    top_k_by_coverage,
)
from repro.core.coverage import CoverageResult
from repro.core.transformation import Transformation
from repro.core.units import Literal, Split, Substr

ROW_SETS = st.sets(st.integers(min_value=0, max_value=40), max_size=12)

# A tiny unit pool makes equal transformations — and therefore exact key
# ties down to the rendering — likely, which is precisely what the CELF
# tie-breaking proof needs exercised.
TIE_PRONE_UNITS = st.one_of(
    st.builds(Literal, st.sampled_from(["a", "b", ""])),
    st.builds(Substr, st.just(0), st.integers(min_value=1, max_value=3)),
    st.builds(Split, st.just(","), st.integers(min_value=1, max_value=2)),
)

RESULTS = st.lists(
    st.builds(
        CoverageResult,
        st.builds(Transformation, st.lists(TIE_PRONE_UNITS, min_size=1, max_size=3)),
        ROW_SETS,
    ),
    max_size=20,
)


class TestCelfMatchesReferenceGreedy:
    @given(results=RESULTS)
    def test_identical_selection_sequence(self, results):
        assert greedy_minimal_cover(results) == greedy_minimal_cover_reference(
            results
        )

    @given(results=RESULTS, min_support=st.integers(min_value=1, max_value=6))
    def test_identical_under_min_support(self, results, min_support):
        assert greedy_minimal_cover(
            results, min_support=min_support
        ) == greedy_minimal_cover_reference(results, min_support=min_support)

    @given(results=RESULTS, cap=st.integers(min_value=0, max_value=5))
    def test_identical_under_selection_cap(self, results, cap):
        assert greedy_minimal_cover(
            results, max_transformations=cap
        ) == greedy_minimal_cover_reference(results, max_transformations=cap)

    @given(results=RESULTS)
    def test_identical_with_duplicate_candidates(self, results):
        # Duplicates produce exact key ties; the reference breaks them by
        # input position, and CELF must do the same.
        doubled = list(results) + list(results)
        assert greedy_minimal_cover(doubled) == greedy_minimal_cover_reference(
            doubled
        )

    @given(seed=st.integers(min_value=0, max_value=999))
    def test_identical_on_seeded_random_instances(self, seed):
        # Deterministic volume: classic random set-cover instances with
        # heavy overlap, the regime where lazy bounds go stale the most.
        rng = random.Random(seed)
        universe = rng.randrange(5, 60)
        results = [
            CoverageResult(
                Transformation([Literal(f"t{index}")]),
                frozenset(
                    rng.sample(range(universe), rng.randrange(0, universe))
                ),
            )
            for index in range(rng.randrange(1, 25))
        ]
        min_support = rng.choice([1, 1, 1, 2, 3])
        assert greedy_minimal_cover(
            results, min_support=min_support
        ) == greedy_minimal_cover_reference(results, min_support=min_support)


class TestBitsetAgreesWithSets:
    @given(rows=ROW_SETS)
    def test_mask_roundtrip(self, rows):
        assert set(rows_from_mask(mask_from_rows(rows))) == rows
        assert mask_from_rows(rows) == sum(1 << row for row in rows)

    @given(rows=ROW_SETS)
    def test_result_representations_are_interchangeable(self, rows):
        transformation = Transformation([Literal("x")])
        from_rows = CoverageResult(transformation, rows)
        from_mask = CoverageResult(
            transformation, covered_mask=mask_from_rows(rows)
        )
        assert from_rows == from_mask
        assert from_mask.covered_rows == frozenset(rows)
        assert from_rows.covered_mask == from_mask.covered_mask
        assert from_rows.coverage == from_mask.coverage == len(rows)

    @given(results=RESULTS, num_pairs=st.integers(min_value=0, max_value=50))
    def test_union_ops_match_set_arithmetic(self, results, num_pairs):
        expected: set[int] = set()
        for result in results:
            expected |= result.covered_rows
        assert covered_rows(results) == frozenset(expected)
        assert covered_mask(results) == mask_from_rows(expected)
        if num_pairs:
            assert cover_fraction(results, num_pairs) == len(expected) / num_pairs
        else:
            assert cover_fraction(results, num_pairs) == 0.0

    @given(results=RESULTS, k=st.integers(min_value=1, max_value=5))
    def test_top_k_ranks_by_popcount(self, results, k):
        ranked = top_k_by_coverage(results, k)
        expected = sorted(
            results,
            key=lambda r: (
                -len(r.covered_rows),
                r.transformation.num_placeholders,
                len(r.transformation),
                repr(r.transformation),
            ),
        )[:k]
        assert ranked == expected
