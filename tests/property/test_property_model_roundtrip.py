"""Property tests: model round-trips apply byte-identically, serial and sharded.

The artifact layer's contract is that ``loads(dumps(model))`` is
indistinguishable from the live object at apply time: same outputs for every
transformation on every input, same joined pairs through the batched apply
engine at any worker count.  These tests generate random transformations
(random unit sequences, not just discovery-shaped ones) and assert exactly
that.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transformation import Transformation
from repro.core.units import Literal, Split, SplitSubstr, Substr
from repro.join.joiner import TransformationJoiner
from repro.model import TransformationApplier, TransformationModel

TEXT = st.text(alphabet=string.ascii_letters + string.digits + " ,.-@/", max_size=30)
DELIMITER = st.sampled_from(list(" ,.-@/"))


@st.composite
def units(draw):
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return Literal(draw(TEXT))
    if kind == 1:
        start = draw(st.integers(min_value=0, max_value=8))
        return Substr(start, draw(st.integers(min_value=start + 1, max_value=12)))
    if kind == 2:
        return Split(draw(DELIMITER), draw(st.integers(min_value=1, max_value=4)))
    start = draw(st.integers(min_value=0, max_value=5))
    return SplitSubstr(
        draw(DELIMITER),
        draw(st.integers(min_value=1, max_value=4)),
        start,
        draw(st.integers(min_value=start + 1, max_value=8)),
    )


TRANSFORMATIONS = st.builds(
    Transformation, st.lists(units(), min_size=1, max_size=4)
)


@st.composite
def models(draw):
    transformations = draw(
        st.lists(TRANSFORMATIONS, min_size=1, max_size=6, unique=True)
    )
    num_pairs = draw(st.integers(min_value=1, max_value=50))
    counts = [
        draw(st.integers(min_value=0, max_value=num_pairs))
        for _ in transformations
    ]
    min_support = draw(st.sampled_from([0.0, 0.05, 0.5]))
    return TransformationModel(
        transformations=transformations,
        coverage_counts=counts,
        num_candidate_pairs=num_pairs,
        min_support=min_support,
    )


class TestModelRoundTrip:
    @given(model=models())
    def test_loads_dumps_is_identity(self, model):
        assert TransformationModel.loads(model.dumps()) == model

    @given(model=models(), sources=st.lists(TEXT, max_size=8))
    @settings(max_examples=50)
    def test_round_tripped_transformations_apply_identically(self, model, sources):
        clone = TransformationModel.loads(model.dumps())
        for original, loaded in zip(model.transformations, clone.transformations):
            for source in sources:
                assert loaded.apply(source) == original.apply(source)

    @given(model=models())
    def test_dict_round_trip_preserves_counts_and_config(self, model):
        clone = TransformationModel.from_dict(model.to_dict())
        assert clone.coverage_counts == model.coverage_counts
        assert clone.num_candidate_pairs == model.num_candidate_pairs
        assert clone.min_support == model.min_support
        assert clone.discovery_config == model.discovery_config


class TestApplierEquivalence:
    @given(
        transformations=st.lists(TRANSFORMATIONS, min_size=1, max_size=5),
        sources=st.lists(TEXT, min_size=1, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_batched_apply_matches_reference(self, transformations, sources):
        # The trie-compiled kernel must reproduce Transformation.apply for
        # every (transformation, row) combination.
        dense = TransformationApplier(transformations).apply_all(sources)
        for transformation, row_outputs in zip(transformations, dense):
            assert row_outputs == [transformation.apply(s) for s in sources]

    @given(
        transformations=st.lists(TRANSFORMATIONS, min_size=1, max_size=4),
        sources=st.lists(TEXT, min_size=1, max_size=10),
        num_workers=st.sampled_from([2, 3]),
    )
    @settings(max_examples=15, deadline=None)
    def test_sharded_apply_is_byte_identical(
        self, transformations, sources, num_workers
    ):
        applier = TransformationApplier(transformations)
        serial = applier.transform_rows(sources)
        sharded = applier.transform_rows(
            sources, num_workers=num_workers, min_rows_per_worker=0
        )
        assert sharded == serial


class TestSpawnFallback:
    def test_spawn_sharded_transform_matches_serial(self):
        # The pickle-once fallback: the frozen trie and the value list ship
        # to spawn workers through TransformShardState.__getstate__.
        from repro.model.apply import TransformationApplier, transform_trie_rows
        from repro.parallel.transform import sharded_transform

        transformations = [
            Transformation([SplitSubstr(" ", 2, 0, 1), Literal(" "), Split(",", 1)]),
            Transformation([Split(",", 2)]),
            Transformation([Substr(0, 4)]),
        ]
        values = [f"last{i:02d}, first{i:02d}" for i in range(40)]
        applier = TransformationApplier(transformations)
        trie = applier.trie
        assert trie is not None
        serial = transform_trie_rows(values, 0, trie)
        spawned = sharded_transform(
            values, trie, num_workers=2, start_method="spawn"
        )
        assert spawned == serial


class TestJoinerEquivalence:
    @given(
        transformations=st.lists(TRANSFORMATIONS, min_size=1, max_size=4),
        sources=st.lists(TEXT, min_size=1, max_size=10),
        targets=st.lists(TEXT, min_size=1, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_batched_join_matches_reference_loop(
        self, transformations, sources, targets
    ):
        joiner = TransformationJoiner(transformations)
        batched = joiner.join_values(sources, targets)
        reference = joiner.join_values_reference(sources, targets)
        assert batched.pairs == reference.pairs
        assert batched.matched_by == reference.matched_by

    @given(
        transformations=st.lists(TRANSFORMATIONS, min_size=1, max_size=3),
        sources=st.lists(TEXT, min_size=1, max_size=8),
        targets=st.lists(TEXT, min_size=1, max_size=8),
    )
    @settings(max_examples=10, deadline=None)
    def test_sharded_join_of_a_loaded_model_matches_live(
        self, transformations, sources, targets
    ):
        # The full artifact contract in one assertion: persist, reload,
        # shard — the joined pairs never change.
        live = TransformationJoiner(transformations)
        model = TransformationModel(
            transformations=transformations,
            coverage_counts=[0] * len(transformations),
            num_candidate_pairs=1,
        )
        loaded = TransformationModel.loads(model.dumps())
        sharded = TransformationJoiner(
            loaded.transformations, num_workers=2, min_rows_per_worker=0
        )
        assert (
            sharded.join_values(sources, targets).pairs
            == live.join_values_reference(sources, targets).pairs
        )
