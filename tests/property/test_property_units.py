"""Property-based tests for transformation units and transformations."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transformation import Transformation
from repro.core.units import Literal, Split, SplitSubstr, Substr, TwoCharSplitSubstr

TEXT = st.text(alphabet=string.ascii_letters + string.digits + " ,.-@/", max_size=40)
NON_EMPTY_TEXT = TEXT.filter(bool)
DELIMITER = st.sampled_from(list(" ,.-@/"))


@st.composite
def substr_units(draw):
    start = draw(st.integers(min_value=0, max_value=20))
    end = draw(st.integers(min_value=start + 1, max_value=30))
    return Substr(start, end)


@st.composite
def split_units(draw):
    return Split(draw(DELIMITER), draw(st.integers(min_value=1, max_value=6)))


@st.composite
def split_substr_units(draw):
    start = draw(st.integers(min_value=0, max_value=10))
    end = draw(st.integers(min_value=start + 1, max_value=15))
    return SplitSubstr(
        draw(DELIMITER), draw(st.integers(min_value=1, max_value=6)), start, end
    )


@st.composite
def literal_units(draw):
    return Literal(draw(TEXT))


ANY_UNIT = st.one_of(substr_units(), split_units(), split_substr_units(), literal_units())


class TestUnitProperties:
    @given(unit=substr_units(), source=TEXT)
    def test_substr_output_is_a_substring_of_the_source(self, unit, source):
        output = unit.apply(source)
        if output is not None:
            assert output in source
            assert len(output) == unit.end - unit.start

    @given(unit=split_units(), source=TEXT)
    def test_split_output_is_a_substring_without_the_delimiter(self, unit, source):
        output = unit.apply(source)
        if output is not None:
            assert output in source
            assert unit.delimiter not in output

    @given(unit=split_substr_units(), source=TEXT)
    def test_split_substr_output_is_a_substring_of_the_source(self, unit, source):
        output = unit.apply(source)
        if output is not None:
            assert output in source

    @given(text=TEXT, source=TEXT)
    def test_literal_ignores_the_input(self, text, source):
        assert Literal(text).apply(source) == text

    @given(unit=ANY_UNIT, source=TEXT)
    def test_apply_is_deterministic(self, unit, source):
        assert unit.apply(source) == unit.apply(source)

    @given(unit=ANY_UNIT)
    def test_units_equal_to_themselves_and_hash_consistently(self, unit):
        assert unit == unit
        assert hash(unit) == hash(unit)

    @given(
        d1=DELIMITER,
        d2=DELIMITER,
        index=st.integers(min_value=1, max_value=5),
        source=TEXT,
    )
    @settings(max_examples=60)
    def test_two_char_split_matches_manual_split(self, d1, d2, index, source):
        if d1 == d2:
            return
        unit = TwoCharSplitSubstr(d1, d2, index, 0, 1)
        output = unit.apply(source)
        if output is not None:
            pieces = source.replace(d2, d1).split(d1)
            assert output == pieces[index - 1][0:1]


class TestTransformationProperties:
    @given(units=st.lists(ANY_UNIT, min_size=1, max_size=4), source=TEXT)
    def test_output_is_concatenation_of_unit_outputs(self, units, source):
        transformation = Transformation(units)
        outputs = [unit.apply(source) for unit in units]
        expected = None if any(o is None for o in outputs) else "".join(outputs)
        assert transformation.apply(source) == expected

    @given(units=st.lists(ANY_UNIT, min_size=1, max_size=4), source=TEXT)
    def test_simplified_preserves_semantics(self, units, source):
        transformation = Transformation(units)
        assert transformation.apply(source) == transformation.simplified().apply(source)

    @given(units=st.lists(ANY_UNIT, min_size=1, max_size=4))
    def test_placeholder_and_literal_counts_partition_units(self, units):
        transformation = Transformation(units)
        assert (
            transformation.num_placeholders + transformation.num_literals
            == len(transformation)
        )

    @given(units=st.lists(ANY_UNIT, min_size=1, max_size=3), source=TEXT)
    def test_covers_agrees_with_apply(self, units, source):
        transformation = Transformation(units)
        output = transformation.apply(source)
        if output is not None:
            assert transformation.covers(source, output)
