"""The setsim matcher is exact, deterministic, and shard/tier-invariant.

Three guarantees, each load-bearing for the engine's claim that its speedup
is *pure pruning*:

* **Exactness** — on randomized token tables the prefix-filtered matcher
  returns the same match set as brute-force all-pairs similarity at the same
  threshold, for jaccard/cosine/overlap, including exact-threshold ties
  (thresholds like 1/3 and 0.5 that real size combinations hit exactly),
  empty token sets, and duplicate rows.
* **Determinism** — the global token ordering and the match output never
  depend on the per-interpreter string hash seed (the trap PR 8 closed for
  n-gram dedup): a subprocess sweep over ``PYTHONHASHSEED`` values must
  produce byte-identical orderings and matches, and the sharded path must
  reproduce the serial pair list exactly under fork and spawn at any worker
  count.
* **Tier invariance** — ``use_tier("python")`` and ``use_tier("numpy")``
  produce identical pairs *and identical pruning statistics*: the numpy
  posting-filter kernel is an implementation of the python dual, never a
  reinterpretation.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
from array import array
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.kernels.setsim import (
    filter_token_postings_np,
    filter_token_postings_py,
    intersect_count_np,
    intersect_count_py,
)
from repro.matching.row_matcher import MatchingConfig
from repro.matching.setsim import (
    SetSimRowMatcher,
    build_token_order,
    similarity_score,
)
from repro.matching.tokenize import whitespace_tokens

NUMPY_TIER = kernels.numpy_or_none() is not None
needs_numpy = pytest.mark.skipif(
    not NUMPY_TIER,
    reason="numpy tier not active (numpy missing or REPRO_KERNELS=python)",
)

WORKER_COUNTS = (1, 2, 3)

# A tiny vocabulary on purpose: heavy token reuse produces dense similarity
# structure (shared prefixes, threshold ties, duplicate rows) that a sparse
# alphabet would almost never generate.
VOCAB = [f"t{i}" for i in range(12)]

ROW = st.lists(st.sampled_from(VOCAB), min_size=0, max_size=6).map(" ".join)
TABLE = st.lists(ROW, min_size=0, max_size=25)

# Thresholds real size combinations hit *exactly*: jaccard 1/3 (overlap 1 of
# sizes 1+3, or 2 of 2+4...), 0.5, and 1.0 (identical sets); the conservative
# filter epsilon must not flip these ties either way.
JACCARD_THRESHOLDS = (1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0)
COSINE_THRESHOLDS = (0.5, 1.0 / math.sqrt(2.0), 1.0)
OVERLAP_THRESHOLDS = (1, 2, 4)


def brute_force_matches(
    source_values, target_values, similarity, threshold
) -> set[tuple[int, int]]:
    """All-pairs similarity at the same threshold — the executable spec."""
    source_sets = [frozenset(whitespace_tokens(v)) for v in source_values]
    target_sets = [frozenset(whitespace_tokens(v)) for v in target_values]
    matches = set()
    for i, left in enumerate(source_sets):
        for j, right in enumerate(target_sets):
            if not left or not right:
                continue
            score = similarity_score(
                len(left & right), len(left), len(right), similarity
            )
            if score >= threshold:
                matches.add((i, j))
    return matches


def matcher_for(similarity, threshold, **overrides) -> SetSimRowMatcher:
    config = MatchingConfig(
        engine="setsim",
        setsim_similarity=similarity,
        setsim_threshold=threshold,
        setsim_tokenizer="whitespace",
        num_workers=overrides.pop("num_workers", 1),
        **overrides,
    )
    return SetSimRowMatcher(config)


# --------------------------------------------------------------------------
# Exactness: prefix-filtered == brute force, all measures, tie thresholds.
# --------------------------------------------------------------------------


@settings(deadline=None, max_examples=80)
@given(
    source=TABLE,
    target=TABLE,
    threshold=st.sampled_from(JACCARD_THRESHOLDS),
)
def test_jaccard_equals_brute_force(source, target, threshold):
    pairs, stats = matcher_for("jaccard", threshold).match_values_with_stats(
        source, target
    )
    produced = {(p.source_row, p.target_row) for p in pairs}
    assert produced == brute_force_matches(source, target, "jaccard", threshold)
    assert stats.matches == len(pairs) <= stats.candidates <= max(stats.all_pairs, 0)


@settings(deadline=None, max_examples=80)
@given(
    source=TABLE,
    target=TABLE,
    threshold=st.sampled_from(COSINE_THRESHOLDS),
)
def test_cosine_equals_brute_force(source, target, threshold):
    pairs = matcher_for("cosine", threshold).match_values(source, target)
    produced = {(p.source_row, p.target_row) for p in pairs}
    assert produced == brute_force_matches(source, target, "cosine", threshold)


@settings(deadline=None, max_examples=80)
@given(
    source=TABLE,
    target=TABLE,
    threshold=st.sampled_from(OVERLAP_THRESHOLDS),
)
def test_overlap_equals_brute_force(source, target, threshold):
    pairs = matcher_for("overlap", threshold).match_values(source, target)
    produced = {(p.source_row, p.target_row) for p in pairs}
    assert produced == brute_force_matches(source, target, "overlap", threshold)


def test_empty_and_duplicate_rows():
    """Empty token sets match nothing (even at overlap 1); duplicate rows
    each produce their own (row-id-distinct) matches."""
    source = ["t1 t2", "", "t1 t2", "   "]
    target = ["t1 t2", "", "t2 t1"]
    for similarity, threshold in (("jaccard", 1.0), ("overlap", 1)):
        pairs = matcher_for(similarity, threshold).match_values(source, target)
        produced = {(p.source_row, p.target_row) for p in pairs}
        assert produced == {(0, 0), (0, 2), (2, 0), (2, 2)}
        assert produced == brute_force_matches(
            source, target, similarity, threshold
        )


# --------------------------------------------------------------------------
# Determinism: sharding (fork and spawn) and the string hash seed.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_sharded_matches_byte_identical(start_method):
    """Shard concatenation reproduces the serial matcher exactly — pairs,
    order, and the candidate count — at any worker count, fork or spawn."""
    import multiprocessing

    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {start_method} unavailable")
    import random

    rng = random.Random(11)
    source = [
        " ".join(rng.choice(VOCAB) for _ in range(rng.randint(0, 6)))
        for _ in range(160)
    ]
    target = [
        " ".join(rng.choice(VOCAB) for _ in range(rng.randint(0, 6)))
        for _ in range(160)
    ]
    serial_pairs, serial_stats = matcher_for("jaccard", 0.5).match_values_with_stats(
        source, target
    )
    for num_workers in WORKER_COUNTS[1:]:
        from repro.matching.setsim import SetSimIndex, ordered_token_ids
        from repro.matching.tokenize import tokenizer_for
        from repro.parallel.setsim import sharded_setsim_match

        tokenize = tokenizer_for("whitespace")
        source_tokens = [tokenize(v) for v in source]
        target_tokens = [tokenize(v) for v in target]
        order = build_token_order([*source_tokens, *target_tokens])
        index = SetSimIndex(
            [ordered_token_ids(t, order) for t in target_tokens], "jaccard", 0.5
        )
        pairs, candidates = sharded_setsim_match(
            index,
            [ordered_token_ids(t, order) for t in source_tokens],
            source,
            target,
            num_workers=num_workers,
            start_method=start_method,
        )
        assert pairs == serial_pairs
        assert candidates == serial_stats.candidates


def test_matcher_sharded_config_path_identical():
    """The config-driven sharded path (num_workers > 1 with the small-input
    tuning disabled) equals the serial matcher through the public API."""
    import random

    rng = random.Random(13)
    source = [
        " ".join(rng.choice(VOCAB) for _ in range(rng.randint(0, 5)))
        for _ in range(90)
    ]
    target = [
        " ".join(rng.choice(VOCAB) for _ in range(rng.randint(0, 5)))
        for _ in range(90)
    ]
    serial = matcher_for("cosine", 0.5).match_values(source, target)
    for num_workers in WORKER_COUNTS[1:]:
        sharded = matcher_for(
            "cosine", 0.5, num_workers=num_workers, min_rows_per_worker=0
        ).match_values(source, target)
        assert sharded == serial


_HASHSEED_PROBE = """
import json, random, sys
sys.path.insert(0, {src_path!r})
from repro.matching.row_matcher import MatchingConfig
from repro.matching.setsim import SetSimRowMatcher, build_token_order
from repro.matching.tokenize import whitespace_tokens

rng = random.Random(3)
vocab = [f"t{{i}}" for i in range(12)]
source = [" ".join(rng.choice(vocab) for _ in range(rng.randint(0, 6)))
          for _ in range(60)]
target = [" ".join(rng.choice(vocab) for _ in range(rng.randint(0, 6)))
          for _ in range(60)]
order = build_token_order(
    [whitespace_tokens(v) for v in source + target]
)
matcher = SetSimRowMatcher(MatchingConfig(
    engine="setsim", setsim_threshold=0.5, num_workers=1))
pairs = matcher.match_values(source, target)
print(json.dumps({{
    "order": sorted(order.items()),
    "pairs": [[p.source_row, p.target_row] for p in pairs],
}}))
"""


def test_token_order_and_matches_hash_seed_independent():
    """Byte-identical token ordering and match list across PYTHONHASHSEED
    values — the df tie-break by token (and dict.fromkeys dedup) is what
    makes this hold; a set-iteration anywhere in the path would break it."""
    src_path = str(Path(__file__).resolve().parents[2] / "src")
    script = _HASHSEED_PROBE.format(src_path=src_path)
    outputs = []
    for seed in ("0", "1", "4242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1] == outputs[2]
    payload = json.loads(outputs[0])
    assert payload["pairs"], "probe produced no matches; test is vacuous"


# --------------------------------------------------------------------------
# Tier invariance: python and numpy kernels agree bit for bit.
# --------------------------------------------------------------------------


@st.composite
def _posting_cases(draw):
    count = draw(st.integers(min_value=0, max_value=40))
    rows = array("i", range(count))
    sizes = array(
        "i", [draw(st.integers(min_value=1, max_value=10)) for _ in range(count)]
    )
    positions = array(
        "i",
        [draw(st.integers(min_value=0, max_value=size - 1)) for size in sizes],
    )
    probe_size = draw(st.integers(min_value=1, max_value=10))
    probe_position = draw(st.integers(min_value=0, max_value=probe_size - 1))
    similarity = draw(st.sampled_from(["jaccard", "cosine", "overlap"]))
    if similarity == "overlap":
        threshold = float(draw(st.integers(min_value=1, max_value=5)))
    else:
        threshold = draw(st.sampled_from([1.0 / 3.0, 0.5, 0.7, 1.0]))
    size_low = draw(st.integers(min_value=1, max_value=6))
    size_high = draw(st.integers(min_value=size_low, max_value=12))
    return (
        rows,
        positions,
        sizes,
        probe_size,
        probe_position,
        similarity,
        threshold,
        size_low,
        size_high,
    )


@needs_numpy
@settings(deadline=None, max_examples=120)
@given(case=_posting_cases())
def test_filter_token_postings_dual(case):
    (
        rows,
        positions,
        sizes,
        probe_size,
        probe_position,
        similarity,
        threshold,
        size_low,
        size_high,
    ) = case
    kwargs = dict(
        probe_size=probe_size,
        probe_position=probe_position,
        similarity=similarity,
        threshold=threshold,
        size_low=size_low,
        size_high=size_high,
    )
    assert filter_token_postings_np(rows, positions, sizes, **kwargs) == (
        filter_token_postings_py(rows, positions, sizes, **kwargs)
    )


@needs_numpy
@given(
    left=st.lists(
        st.integers(min_value=0, max_value=300), max_size=120, unique=True
    ).map(sorted),
    right=st.lists(
        st.integers(min_value=0, max_value=300), max_size=120, unique=True
    ).map(sorted),
)
def test_intersect_count_dual(left, right):
    left_arr = array("i", left)
    right_arr = array("i", right)
    expected = len(set(left) & set(right))
    assert intersect_count_py(left_arr, right_arr) == expected
    assert intersect_count_np(left_arr, right_arr) == expected


@needs_numpy
def test_matcher_tier_equivalence():
    """use_tier("python") == use_tier("numpy"): identical pairs and
    identical pruning statistics through the full matcher."""
    import random

    rng = random.Random(5)
    source = [
        " ".join(rng.choice(VOCAB) for _ in range(rng.randint(0, 6)))
        for _ in range(200)
    ]
    target = [
        " ".join(rng.choice(VOCAB) for _ in range(rng.randint(0, 6)))
        for _ in range(200)
    ]

    def run(tier):
        with kernels.use_tier(tier):
            return matcher_for("jaccard", 0.5).match_values_with_stats(
                source, target
            )

    assert run("numpy") == run("python")
