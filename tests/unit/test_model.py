"""Unit tests for the artifact layer (repro.model)."""

from __future__ import annotations

import json

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.core.transformation import Transformation
from repro.core.units import Literal, Split, SplitSubstr, Substr, TwoCharSplitSubstr
from repro.join.joiner import TransformationJoiner
from repro.model import (
    FORMAT_NAME,
    SCHEMA_VERSION,
    ModelFormatError,
    SchemaVersionError,
    TransformationApplier,
    TransformationModel,
    config_from_dict,
    config_to_dict,
    transformation_from_dict,
    transformation_to_dict,
    unit_from_dict,
    unit_to_dict,
)

ALL_UNITS = [
    Literal("x-"),
    Literal(""),
    Substr(0, 3),
    Split(",", 1),
    SplitSubstr(" ", 2, 0, 1),
    TwoCharSplitSubstr("-", "/", 2, 0, 2),
]


class TestUnitSerialization:
    @pytest.mark.parametrize("unit", ALL_UNITS, ids=lambda u: u.describe())
    def test_round_trip(self, unit):
        clone = unit_from_dict(unit_to_dict(unit))
        assert clone == unit
        for source in ("Rafiei, Davood", "a-b/c", "", "x"):
            assert clone.apply(source) == unit.apply(source)

    def test_payload_is_json_able(self):
        for unit in ALL_UNITS:
            assert unit_from_dict(json.loads(json.dumps(unit_to_dict(unit)))) == unit

    def test_unknown_unit_type_rejected(self):
        with pytest.raises(ModelFormatError, match="unknown unit type"):
            unit_from_dict({"unit": "Regex", "pattern": ".*"})

    def test_missing_and_extra_fields_rejected(self):
        with pytest.raises(ModelFormatError, match="requires fields"):
            unit_from_dict({"unit": "Substr", "start": 0})
        with pytest.raises(ModelFormatError, match="requires fields"):
            unit_from_dict({"unit": "Substr", "start": 0, "end": 2, "step": 1})

    def test_invalid_field_values_rejected(self):
        # Deserialization re-runs the unit validators, so a hand-edited file
        # cannot smuggle in an out-of-range unit.
        with pytest.raises(ModelFormatError, match="invalid Substr"):
            unit_from_dict({"unit": "Substr", "start": 2, "end": 1})
        with pytest.raises(ModelFormatError, match="invalid Split"):
            unit_from_dict({"unit": "Split", "delimiter": "", "index": 1})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ModelFormatError):
            unit_from_dict(["Substr", 0, 1])

    def test_non_string_unit_name_rejected(self):
        # An unhashable name must not escape as a raw TypeError.
        with pytest.raises(ModelFormatError, match="unit type must be a string"):
            unit_from_dict({"unit": ["Split"], "delimiter": ",", "index": 1})

    def test_wrong_typed_field_values_rejected(self):
        # Range validators alone would let these through (a dict is truthy,
        # True is an int) and blow up much later at apply time.
        with pytest.raises(ModelFormatError, match="delimiter"):
            unit_from_dict({"unit": "Split", "delimiter": {"a": 1}, "index": 1})
        with pytest.raises(ModelFormatError, match="index"):
            unit_from_dict({"unit": "Split", "delimiter": ",", "index": True})
        with pytest.raises(ModelFormatError, match="start"):
            unit_from_dict({"unit": "Substr", "start": "0", "end": 2})

    def test_unregistered_subclass_not_serializable(self):
        class Sneaky(Literal):
            pass

        with pytest.raises(ModelFormatError, match="unregistered"):
            unit_to_dict(Sneaky("x"))


class TestTransformationSerialization:
    def test_round_trip(self):
        transformation = Transformation(
            [SplitSubstr(" ", 2, 0, 1), Literal(" "), Split(",", 1)]
        )
        clone = transformation_from_dict(transformation_to_dict(transformation))
        assert clone == transformation
        assert clone.apply("Rafiei, Davood") == transformation.apply("Rafiei, Davood")

    def test_empty_payload_rejected(self):
        with pytest.raises(ModelFormatError, match="non-empty list"):
            transformation_from_dict([])
        with pytest.raises(ModelFormatError, match="non-empty list"):
            transformation_from_dict({"units": []})


class TestConfigSerialization:
    def test_default_round_trip(self):
        config = DiscoveryConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_custom_round_trip(self):
        config = DiscoveryConfig(
            max_placeholders=4,
            enabled_units=("Literal", "Substr"),
            sample_size=100,
            min_support=3,
            case_insensitive=True,
            num_workers=2,
        )
        clone = config_from_dict(json.loads(json.dumps(config_to_dict(config))))
        assert clone == config
        assert clone.enabled_units == ("Literal", "Substr")

    def test_unknown_fields_rejected(self):
        with pytest.raises(ModelFormatError, match="unknown discovery_config"):
            config_from_dict({"warp_factor": 9})

    def test_invalid_values_rejected(self):
        with pytest.raises(ModelFormatError, match="invalid discovery_config"):
            config_from_dict({"max_placeholders": 0})


@pytest.fixture
def fitted_model(name_initial_pairs) -> TransformationModel:
    engine = TransformationDiscovery()
    result = engine.discover_from_strings(name_initial_pairs)
    return TransformationModel.from_discovery(
        result, config=engine.config, min_support=0.05
    )


class TestTransformationModel:
    def test_from_discovery_carries_cover_and_counts(
        self, fitted_model, name_initial_pairs
    ):
        assert fitted_model.num_transformations >= 1
        assert fitted_model.num_candidate_pairs == len(name_initial_pairs)
        assert len(fitted_model.coverage_counts) == fitted_model.num_transformations
        assert fitted_model.discovery is not None
        assert fitted_model.stats["num_pairs"] == len(name_initial_pairs)
        assert all(0.0 <= s <= 1.0 for s in fitted_model.support_fractions())

    def test_dict_round_trip(self, fitted_model):
        clone = TransformationModel.from_dict(fitted_model.to_dict())
        assert clone == fitted_model
        assert clone.discovery is None  # the live result never serializes

    def test_json_round_trip_applies_identically(self, fitted_model):
        clone = TransformationModel.loads(fitted_model.dumps())
        assert clone == fitted_model
        for original, loaded in zip(
            fitted_model.transformations, clone.transformations
        ):
            for source in ("Nascimento, Mario", "no delimiters here", ""):
                assert loaded.apply(source) == original.apply(source)

    def test_save_load_round_trip(self, fitted_model, tmp_path):
        path = fitted_model.save(tmp_path / "model.json")
        assert path.exists()
        assert TransformationModel.load(path) == fitted_model

    def test_save_is_atomic_and_overwrites(self, fitted_model, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("previous content", encoding="utf-8")
        fitted_model.save(path)
        # The temp file never lingers and the target is fully replaced.
        assert list(tmp_path.iterdir()) == [path]
        assert TransformationModel.load(path) == fitted_model

    def test_describe_mentions_cover(self, fitted_model):
        description = fitted_model.describe()
        assert "transformations" in description
        assert "covers" in description

    def test_misaligned_counts_rejected(self, fitted_model):
        with pytest.raises(ValueError, match="coverage counts"):
            TransformationModel(
                transformations=fitted_model.transformations,
                coverage_counts=fitted_model.coverage_counts + [1],
                num_candidate_pairs=5,
            )

    def test_bad_min_support_rejected(self, fitted_model):
        with pytest.raises(ValueError, match="min_support"):
            TransformationModel(
                transformations=fitted_model.transformations,
                coverage_counts=fitted_model.coverage_counts,
                num_candidate_pairs=5,
                min_support=1.5,
            )

    def test_joiner_is_memoized_per_worker_knobs(self, fitted_model):
        # The fit-once / apply-many path must compile the trie once per
        # model, not once per batch: same knobs -> the same joiner object.
        assert fitted_model.joiner() is fitted_model.joiner()
        assert fitted_model.joiner(num_workers=2) is fitted_model.joiner(
            num_workers=2
        )
        assert fitted_model.joiner() is not fitted_model.joiner(num_workers=2)

    def test_joiner_filters_by_stored_support(self, fitted_model, name_initial_pairs):
        # The model-backed joiner must reproduce the coverage_results-backed
        # filtering of the one-shot pipeline exactly.
        discovery = fitted_model.discovery
        assert discovery is not None
        reference = TransformationJoiner(
            discovery.transformations,
            min_support=fitted_model.min_support,
            coverage_results=discovery.cover,
            num_candidate_pairs=discovery.num_candidate_pairs,
        )
        from_model = fitted_model.joiner()
        assert from_model.transformations == reference.transformations


class TestModelFormatErrors:
    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ModelFormatError, match="not valid JSON"):
            TransformationModel.load(path)

    def test_non_object_payload_rejected(self):
        with pytest.raises(ModelFormatError, match="must be an object"):
            TransformationModel.loads("[1, 2, 3]")

    def test_foreign_json_rejected(self):
        with pytest.raises(ModelFormatError, match="not a transformation model"):
            TransformationModel.loads('{"hello": "world"}')

    def test_schema_version_mismatch_rejected(self, fitted_model):
        payload = fitted_model.to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError, match="unsupported model schema"):
            TransformationModel.from_dict(payload)
        payload["schema_version"] = None
        with pytest.raises(SchemaVersionError):
            TransformationModel.from_dict(payload)

    def test_schema_error_is_a_format_error(self):
        # Callers catching ModelFormatError handle both failure modes.
        assert issubclass(SchemaVersionError, ModelFormatError)

    def test_missing_keys_rejected(self):
        with pytest.raises(ModelFormatError, match="missing keys"):
            TransformationModel.from_dict(
                {"format": FORMAT_NAME, "schema_version": SCHEMA_VERSION}
            )

    def test_bad_cover_entries_rejected(self, fitted_model):
        payload = fitted_model.to_dict()
        payload["cover"] = [{"coverage": 3}]
        with pytest.raises(ModelFormatError, match="cover entries"):
            TransformationModel.from_dict(payload)
        payload["cover"] = "everything"
        with pytest.raises(ModelFormatError, match="cover must be a list"):
            TransformationModel.from_dict(payload)

    def test_bad_coverage_count_rejected(self, fitted_model):
        payload = fitted_model.to_dict()
        payload["cover"][0]["coverage"] = "many"
        with pytest.raises(ModelFormatError, match="coverage must be an integer"):
            TransformationModel.from_dict(payload)

    def test_negative_counts_rejected(self, fitted_model):
        payload = fitted_model.to_dict()
        payload["cover"][0]["coverage"] = -2
        with pytest.raises(ModelFormatError, match="invalid model payload"):
            TransformationModel.from_dict(payload)

    def test_non_integer_candidate_pairs_rejected(self, fitted_model):
        payload = fitted_model.to_dict()
        payload["num_candidate_pairs"] = 2.5
        with pytest.raises(ModelFormatError, match="num_candidate_pairs"):
            TransformationModel.from_dict(payload)
        payload["num_candidate_pairs"] = True
        with pytest.raises(ModelFormatError, match="num_candidate_pairs"):
            TransformationModel.from_dict(payload)

    def test_inconsistent_support_payload_rejected(self, fitted_model):
        # min_support > 0 with a non-empty cover but no candidate pairs is
        # unconstructible by fit; loading it must fail cleanly instead of
        # blowing up at joiner-construction time.
        payload = fitted_model.to_dict()
        payload["num_candidate_pairs"] = 0
        assert payload["min_support"] > 0 and payload["cover"]
        with pytest.raises(ModelFormatError, match="inconsistent model"):
            TransformationModel.from_dict(payload)

    def test_non_numeric_min_support_rejected(self, fitted_model):
        # A hand-edited `"min_support": true` would satisfy the 0 <= x <= 1
        # range check and silently filter everything; strict parsing refuses.
        payload = fitted_model.to_dict()
        payload["min_support"] = True
        with pytest.raises(ModelFormatError, match="min_support"):
            TransformationModel.from_dict(payload)
        payload["min_support"] = "none"
        with pytest.raises(ModelFormatError, match="min_support"):
            TransformationModel.from_dict(payload)


class TestTransformationApplier:
    def test_matches_reference_apply(self, name_initial_pairs):
        result = TransformationDiscovery().discover_from_strings(name_initial_pairs)
        transformations = [r.transformation for r in result.cover]
        applier = TransformationApplier(transformations)
        values = [source for source, _ in name_initial_pairs] + ["held-out, row"]
        dense = applier.apply_all(values)
        for transformation, row_outputs in zip(transformations, dense):
            assert row_outputs == [transformation.apply(v) for v in values]

    def test_empty_inputs(self):
        applier = TransformationApplier([])
        assert applier.transform_rows(["a", "b"]) == {}
        assert applier.apply_all(["a", "b"]) == []
        applier = TransformationApplier([Transformation([Substr(0, 2)])])
        assert applier.transform_rows([]) == {}

    def test_non_applicable_rows_absent_from_sparse_output(self):
        applier = TransformationApplier([Transformation([Split(",", 2)])])
        outputs = applier.transform_rows(["a,b", "plain", "c,d"])
        assert outputs == {0: [(0, "b"), (2, "d")]}

    def test_shared_prefixes_share_output(self):
        # Two transformations sharing a first unit must agree with their
        # one-at-a-time semantics even though the prefix is evaluated once.
        first = Transformation([Split(",", 1), Literal("!")])
        second = Transformation([Split(",", 1), Literal("?")])
        applier = TransformationApplier([first, second])
        dense = applier.apply_all(["a,b", "nope"])
        assert dense[0] == ["a!", None]
        assert dense[1] == ["a?", None]
