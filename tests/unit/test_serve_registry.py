"""Unit tests for the serving registry, its caches, and the joiner's
target-index reuse (the cold-path waste fixed alongside the serving layer)."""

from __future__ import annotations

import os

import pytest

from repro.core.discovery import TransformationDiscovery
from repro.join.joiner import TransformationJoiner, target_values_key
from repro.model.artifact import TransformationModel
from repro.serve.cache import LRUCache
from repro.serve.errors import BadRequestError, ModelLoadError, ModelNotFoundError
from repro.serve.registry import ModelRegistry


def fit_model(pairs: list[tuple[str, str]]) -> TransformationModel:
    engine = TransformationDiscovery()
    result = engine.discover_from_strings(pairs)
    return TransformationModel.from_discovery(
        result, config=engine.config, min_support=0.05
    )


@pytest.fixture
def model(name_initial_pairs) -> TransformationModel:
    return fit_model(name_initial_pairs)


@pytest.fixture
def registry(tmp_path, model) -> ModelRegistry:
    model.save(tmp_path / "names.json")
    return ModelRegistry(tmp_path)


class TestLRUCache:
    def test_build_once_then_hit(self):
        cache = LRUCache(4)
        builds = []
        value, hit = cache.get_or_build("k", lambda: builds.append(1) or "v")
        assert (value, hit) == ("v", False)
        value, hit = cache.get_or_build("k", lambda: builds.append(1) or "other")
        assert (value, hit) == ("v", True)
        assert len(builds) == 1
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 0

    def test_capacity_bound_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.get_or_build("a", lambda: "a")
        cache.get_or_build("b", lambda: "b")
        cache.get_or_build("a", lambda: "a")  # refresh a; b is now oldest
        cache.get_or_build("c", lambda: "c")  # evicts b
        assert cache.stats()["size"] == 2
        assert cache.stats()["evictions"] == 1
        _, hit = cache.get_or_build("a", lambda: "a")
        assert hit is True
        _, hit = cache.get_or_build("b", lambda: "b")
        assert hit is False  # was evicted, rebuilt

    def test_invalidate_is_not_an_eviction(self):
        cache = LRUCache(4)
        cache.get_or_build(("m", 1), lambda: "x")
        cache.get_or_build(("m", 2), lambda: "y")
        cache.invalidate(lambda key: key[1] == 1)
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["evictions"] == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestTargetValuesKey:
    def test_boundaries_do_not_alias(self):
        assert target_values_key(["ab", "c"]) != target_values_key(["a", "bc"])
        assert target_values_key([]) != target_values_key([""])
        assert target_values_key(["x"]) == target_values_key(["x"])


class TestJoinerTargetIndexReuse:
    """Satellite: the second `join_values` call must not rebuild the index."""

    def test_repeated_target_builds_index_once(self, model, name_initial_pairs):
        joiner = model.joiner()
        targets = [target for _, target in name_initial_pairs]
        sources = [source for source, _ in name_initial_pairs]
        builds = []
        original = joiner.build_target_index

        def counting(values):
            builds.append(len(values))
            return original(values)

        joiner.build_target_index = counting
        first = joiner.join_values(sources, targets)
        second = joiner.join_values(sources, targets)
        assert len(builds) == 1
        assert second.pairs == first.pairs
        # A *different* target column must not reuse the cached index.
        joiner.join_values(sources, targets[:-1])
        assert len(builds) == 2

    def test_prebuilt_index_skips_build_entirely(self, model, name_initial_pairs):
        joiner = model.joiner()
        targets = [target for _, target in name_initial_pairs]
        sources = [source for source, _ in name_initial_pairs]
        expected = model.joiner().join_values(sources, targets)
        index = joiner.build_target_index(targets)
        builds = []
        joiner.build_target_index = lambda values: builds.append(1)
        result = joiner.join_values(sources, targets, target_index=index)
        assert builds == []
        assert result.pairs == expected.pairs

    def test_case_insensitive_index_is_normalized(self, name_initial_pairs):
        joiner = TransformationJoiner(
            fit_model(name_initial_pairs).transformations, case_insensitive=True
        )
        index = joiner.build_target_index(["D RAFIEI"])
        assert list(index.rows_for("d rafiei")) == [0]


class TestModelRegistry:
    def test_lookup_and_cache_hits(self, registry, model, name_initial_pairs):
        joiner, entry, hit = registry.joiner_for("names")
        assert hit is False
        assert entry.model == model
        _, _, hit = registry.joiner_for("names")
        assert hit is True
        targets = [target for _, target in name_initial_pairs]
        _, hit = registry.target_index_for(joiner, targets)
        assert hit is False
        _, hit = registry.target_index_for(joiner, targets)
        assert hit is True

    def test_unknown_model_raises_not_found(self, registry):
        with pytest.raises(ModelNotFoundError):
            registry.get("missing")

    @pytest.mark.parametrize("name", ["../escape", "a/b", ".hidden", ""])
    def test_unsafe_names_rejected(self, registry, name):
        with pytest.raises(BadRequestError):
            registry.get(name)

    def test_corrupt_file_degrades_only_that_model(self, tmp_path, model):
        model.save(tmp_path / "good.json")
        (tmp_path / "bad.json").write_text("{not json", encoding="utf-8")
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ModelLoadError):
            registry.get("bad")
        # The healthy model keeps serving.
        joiner, _, _ = registry.joiner_for("good")
        assert joiner.transformations
        summaries = {summary["name"]: summary for summary in registry.list_models()}
        assert summaries["good"]["ok"] is True
        assert summaries["bad"]["ok"] is False
        assert "bad" in registry.stats()["models_failed"]

    def test_fixing_corrupt_file_clears_error(self, tmp_path, model):
        path = tmp_path / "m.json"
        path.write_text("{not json", encoding="utf-8")
        registry = ModelRegistry(tmp_path)
        with pytest.raises(ModelLoadError):
            registry.get("m")
        model.save(path)
        os.utime(path, ns=(path.stat().st_atime_ns, path.stat().st_mtime_ns + 1))
        assert registry.get("m").model == model

    def test_mtime_reload_swaps_atomically(
        self, tmp_path, name_initial_pairs, phone_pairs
    ):
        path = tmp_path / "m.json"
        first = fit_model(name_initial_pairs)
        first.save(path)
        registry = ModelRegistry(tmp_path)
        old_joiner, old_entry, _ = registry.joiner_for("m")
        second = fit_model(phone_pairs)
        second.save(path)
        # Force a visible mtime change even on coarse-resolution filesystems.
        os.utime(path, ns=(path.stat().st_atime_ns, old_entry.mtime_ns + 1))
        new_joiner, new_entry, hit = registry.joiner_for("m")
        assert hit is False  # the stale compiled joiner was invalidated
        assert new_entry.model == second
        assert new_entry.mtime_ns != old_entry.mtime_ns
        # The old entry object is untouched (swap, not mutation): a reader
        # holding it mid-request still sees the complete old model.
        assert old_entry.model == first
        assert old_joiner.transformations == first.joiner().transformations
        assert new_joiner.transformations == second.joiner().transformations

    def test_deleted_file_turns_into_not_found(self, tmp_path, model):
        path = tmp_path / "m.json"
        model.save(path)
        registry = ModelRegistry(tmp_path)
        registry.get("m")
        path.unlink()
        with pytest.raises(ModelNotFoundError):
            registry.get("m")
        assert "m" not in registry.stats()["models_loaded"]

    def test_lru_eviction_rewarm(self, tmp_path, name_initial_pairs, phone_pairs):
        fit_model(name_initial_pairs).save(tmp_path / "a.json")
        fit_model(phone_pairs).save(tmp_path / "b.json")
        registry = ModelRegistry(tmp_path, joiner_cache_capacity=1)
        _, _, hit = registry.joiner_for("a")
        assert hit is False
        _, _, hit = registry.joiner_for("b")  # evicts a
        assert hit is False
        _, _, hit = registry.joiner_for("a")  # re-warms
        assert hit is False
        _, _, hit = registry.joiner_for("a")
        assert hit is True
        assert registry.stats()["joiner_cache"]["evictions"] >= 2

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            ModelRegistry(tmp_path / "nope")
