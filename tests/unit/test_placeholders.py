"""Unit tests for placeholder extraction (repro.core.placeholders)."""

from __future__ import annotations

import pytest

from repro.core.placeholders import Placeholder, PlaceholderExtractor, find_occurrences


class TestFindOccurrences:
    def test_finds_all_positions(self):
        assert find_occurrences("abcabcabc", "abc") == (0, 3, 6)

    def test_overlapping_occurrences(self):
        assert find_occurrences("aaaa", "aa") == (0, 1, 2)

    def test_limit_caps_results(self):
        assert find_occurrences("aaaa", "a", limit=2) == (0, 1)

    def test_absent_needle(self):
        assert find_occurrences("abc", "x") == ()


class TestPlaceholderDataclass:
    def test_span_must_match_text_length(self):
        with pytest.raises(ValueError):
            Placeholder(text="ab", target_start=0, target_end=3, source_matches=(0,))

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            Placeholder(text="", target_start=0, target_end=0, source_matches=())

    def test_length(self):
        placeholder = Placeholder(
            text="abc", target_start=2, target_end=5, source_matches=(0,)
        )
        assert placeholder.length == 3


class TestMaximalPlaceholders:
    def test_paper_email_example(self):
        extractor = PlaceholderExtractor()
        placeholders = extractor.maximal_placeholders(
            "bowling, michael", "michael.bowling@ualberta.ca"
        )
        texts = [p.text for p in placeholders]
        assert "michael" in texts
        assert "bowling" in texts

    def test_placeholders_tile_target_without_overlap(self):
        extractor = PlaceholderExtractor()
        source = "Victor Robbie Kasumba"
        target = "Victor R. Kasumba"
        placeholders = extractor.maximal_placeholders(source, target)
        spans = [(p.target_start, p.target_end) for p in placeholders]
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    def test_maximal_segmentation_of_paper_skeleton_example(self):
        # "Victor R" is a maximal block ("Victor R" occurs in
        # "Victor Robbie Kasumba" but "Victor R." does not).
        extractor = PlaceholderExtractor()
        placeholders = extractor.maximal_placeholders(
            "Victor Robbie Kasumba", "Victor R. Kasumba"
        )
        texts = [p.text for p in placeholders]
        assert texts[0] == "Victor R"
        assert any("Kasumba" in text for text in texts)

    def test_no_common_text_yields_no_placeholders(self):
        extractor = PlaceholderExtractor()
        assert extractor.maximal_placeholders("abc", "xyz") == []

    def test_min_length_filters_short_blocks(self):
        extractor = PlaceholderExtractor(min_length=3)
        placeholders = extractor.maximal_placeholders("ab cdef", "ab cdef!")
        texts = [p.text for p in placeholders]
        assert texts == ["ab cdef"]
        extractor_strict = PlaceholderExtractor(min_length=8)
        assert extractor_strict.maximal_placeholders("ab cdef", "ab!") == []

    def test_source_matches_recorded(self):
        extractor = PlaceholderExtractor()
        placeholders = extractor.maximal_placeholders("xxabcxx", "abc")
        assert placeholders[0].source_matches == (2,)

    def test_max_matches_cap(self):
        extractor = PlaceholderExtractor(max_matches=1)
        placeholders = extractor.maximal_placeholders("ababab", "ab")
        assert placeholders[0].source_matches == (0,)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            PlaceholderExtractor(min_length=0)
        with pytest.raises(ValueError):
            PlaceholderExtractor(max_matches=0)


class TestSeparatorSplitting:
    def test_split_on_space(self):
        extractor = PlaceholderExtractor()
        source = "Victor Robbie Kasumba"
        [parent] = [
            p
            for p in extractor.maximal_placeholders(source, "Victor R. Kasumba")
            if p.text == "Victor R"
        ]
        pieces = extractor.split_placeholder(parent, source)
        assert [p.text for p in pieces] == ["Victor", "R"]

    def test_split_preserves_target_positions(self):
        extractor = PlaceholderExtractor()
        source = "aaa bbb"
        parent = extractor.maximal_placeholders(source, "aaa bbb")[0]
        pieces = extractor.split_placeholder(parent, source)
        assert [(p.target_start, p.target_end) for p in pieces] == [(0, 3), (4, 7)]

    def test_nothing_to_split_returns_original(self):
        extractor = PlaceholderExtractor()
        source = "abcdef"
        parent = extractor.maximal_placeholders(source, "abcdef")[0]
        assert extractor.split_placeholder(parent, source) == [parent]

    def test_extract_reports_both_sets(self):
        extractor = PlaceholderExtractor()
        result = extractor.extract("Victor Robbie Kasumba", "Victor R. Kasumba")
        assert "maximal" in result
        assert "split" in result
        assert len(result["split"]) > len(result["maximal"]) - 1

    def test_extract_without_splitting(self):
        extractor = PlaceholderExtractor(split_on_separators=False)
        result = extractor.extract("Victor Robbie Kasumba", "Victor R. Kasumba")
        assert "split" not in result
