"""Unit tests for transformation transfer and case-insensitive discovery."""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.core.pairs import pairs_from_strings
from repro.core.transfer import TransformationTransfer
from repro.core.transformation import Transformation
from repro.core.units import Literal, Split, SplitSubstr
from repro.join.joiner import TransformationJoiner
from repro.join.pipeline import JoinPipeline
from repro.table.table import Table


@pytest.fixture
def initial_rule() -> Transformation:
    return Transformation([SplitSubstr(" ", 2, 0, 1), Literal(" "), Split(",", 1)])


class TestTransformationTransfer:
    def test_transfer_covers_new_dataset_without_rediscovery(self, initial_rule):
        new_pairs = pairs_from_strings(
            [
                ("Keller, Fatima", "F Keller"),
                ("Watson, Henry", "H Watson"),
                ("Novak, Priya", "P Novak"),
            ]
        )
        transfer = TransformationTransfer([initial_rule])
        result = transfer.transfer(new_pairs, discover_remaining=False)
        assert result.transferred_coverage == 1.0
        assert result.cover_coverage == 1.0
        assert result.transformations == [initial_rule]
        assert result.fresh_discovery is None

    def test_uncovered_rows_trigger_fresh_discovery(self, initial_rule):
        new_pairs = pairs_from_strings(
            [
                ("Keller, Fatima", "F Keller"),
                ("Watson, Henry", "H Watson"),
                ("alpha-beta", "beta/alpha"),
                ("gamma-delta", "delta/gamma"),
            ]
        )
        transfer = TransformationTransfer([initial_rule])
        result = transfer.transfer(new_pairs)
        assert result.transferred_coverage == pytest.approx(0.5)
        assert result.cover_coverage == 1.0
        assert result.fresh_discovery is not None
        assert len(result.discovered) >= 1

    def test_unsupported_transformations_are_dropped(self, initial_rule):
        unrelated = Transformation([Split("|", 1)])
        new_pairs = pairs_from_strings([("Keller, Fatima", "F Keller")] * 3)
        transfer = TransformationTransfer([initial_rule, unrelated])
        result = transfer.transfer(new_pairs, discover_remaining=False)
        assert result.transformations == [initial_rule]

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            TransformationTransfer([], min_support=0)

    def test_empty_input(self, initial_rule):
        result = TransformationTransfer([initial_rule]).transfer([])
        assert result.cover_coverage == 0.0
        assert result.transformations == []

    def test_transfer_is_consistent_with_scratch_discovery(self):
        """Transfer + gap discovery covers as much as discovery from scratch."""
        old_pairs = [
            ("Rafiei, Davood", "D Rafiei"),
            ("Bowling, Michael", "M Bowling"),
            ("Gosgnach, Simon", "S Gosgnach"),
        ]
        new_pairs = [
            ("Keller, Fatima", "F Keller"),
            ("Watson, Henry", "H Watson"),
            ("alpha-beta", "beta/alpha"),
            ("gamma-delta", "delta/gamma"),
        ]
        engine = TransformationDiscovery()
        learned = engine.discover_from_strings(old_pairs)
        transfer = TransformationTransfer(learned.transformations)
        transferred = transfer.transfer(pairs_from_strings(new_pairs))
        scratch = engine.discover_from_strings(new_pairs)
        assert transferred.cover_coverage >= scratch.cover_coverage - 1e-9


class TestCaseInsensitiveDiscovery:
    def test_mixed_case_email_mapping_is_learned(self):
        pairs = [
            ("Bowling, Michael", "michael.bowling@ualberta.ca"),
            ("Rafiei, Davood", "davood.rafiei@ualberta.ca"),
            ("Gosgnach, Simon", "simon.gosgnach@ualberta.ca"),
        ]
        case_sensitive = TransformationDiscovery().discover_from_strings(pairs)
        case_insensitive = TransformationDiscovery(
            DiscoveryConfig(case_insensitive=True)
        ).discover_from_strings(pairs)
        assert case_insensitive.top_coverage == 1.0
        assert case_insensitive.top_coverage > case_sensitive.top_coverage

    def test_joiner_case_insensitive_mode(self):
        rule = Transformation([Split(",", 1)])
        joiner = TransformationJoiner([rule], case_insensitive=True)
        result = joiner.join_values(["BOWLING, Michael"], ["bowling"])
        assert result.as_set() == {(0, 0)}

    def test_pipeline_wires_case_insensitivity_through(self):
        source = Table(
            {"Name": ["Bowling, Michael", "Rafiei, Davood", "Gosgnach, Simon"]}
        )
        target = Table(
            {
                "Email": [
                    "michael.bowling@ualberta.ca",
                    "davood.rafiei@ualberta.ca",
                    "simon.gosgnach@ualberta.ca",
                ]
            }
        )
        pipeline = JoinPipeline(
            discovery_config=DiscoveryConfig(case_insensitive=True),
            min_support=0.0,
        )
        outcome = pipeline.run(
            source, target, source_column="Name", target_column="Email"
        )
        assert {(i, i) for i in range(3)} <= outcome.joined_pairs
