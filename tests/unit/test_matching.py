"""Unit tests for the row-matching substrate (repro.matching)."""

from __future__ import annotations

import pytest

from repro.core.pairs import RowPair
from repro.matching.index import InvertedIndex
from repro.matching.ngrams import character_ngrams, ngrams_in_range, unique_ngrams
from repro.matching.row_matcher import (
    GoldenRowMatcher,
    MatchingConfig,
    NGramRowMatcher,
    choose_source_column,
)
from repro.matching.scoring import inverse_row_frequency, representative_score
from repro.table.table import Table


class TestNgrams:
    def test_character_ngrams(self):
        assert character_ngrams("abcd", 2) == ["ab", "bc", "cd"]

    def test_lowercasing(self):
        assert character_ngrams("AbC", 2) == ["ab", "bc"]
        assert character_ngrams("AbC", 2, lowercase=False) == ["Ab", "bC"]

    def test_short_text(self):
        assert character_ngrams("ab", 4) == []

    def test_unique_ngrams(self):
        assert unique_ngrams("aaaa", 2) == {"aa"}

    def test_ngrams_in_range(self):
        grams = list(ngrams_in_range("abcd", 2, 3))
        assert "ab" in grams and "abc" in grams and "abcd" not in grams

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            character_ngrams("abc", 0)
        with pytest.raises(ValueError):
            list(ngrams_in_range("abc", 3, 2))


class TestInvertedIndex:
    def test_build_and_lookup(self):
        index = InvertedIndex.build(["hello world", "hello there"], min_size=4, max_size=6)
        assert index.num_rows == 2
        assert list(index.rows_containing("hello")) == [0, 1]
        assert list(index.rows_containing("world")) == [0]
        assert list(index.rows_containing("zzzz")) == []

    def test_postings_are_packed_and_not_copied(self):
        index = InvertedIndex.build(["abcd", "xabc", "abcx"], min_size=3, max_size=3)
        postings = index.rows_containing("abc")
        # Sorted ascending, and the same object on every call (no copies).
        assert list(postings) == sorted(postings)
        assert index.rows_containing("abc") is postings

    def test_row_frequency(self):
        index = InvertedIndex.build(["abcd", "abce", "abxx"], min_size=2, max_size=3)
        assert index.row_frequency("ab") == 3
        assert index.row_frequency("abc") == 2
        assert index.row_frequency("zz") == 0

    def test_case_insensitive_by_default(self):
        index = InvertedIndex.build(["Hello"], min_size=4, max_size=5)
        assert list(index.rows_containing("HELLO")) == [0]

    def test_contains(self):
        index = InvertedIndex.build(["abcd"], min_size=2, max_size=2)
        assert "ab" in index
        assert "zz" not in index
        assert 42 not in index

    def test_num_ngrams_counts_distinct(self):
        index = InvertedIndex.build(["aaaa"], min_size=2, max_size=2)
        assert index.num_ngrams == 1

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            InvertedIndex(min_size=0, max_size=3)
        with pytest.raises(ValueError):
            InvertedIndex(min_size=4, max_size=2)
        with pytest.raises(ValueError):
            InvertedIndex(min_size=2, max_size=3, stop_gram_cap=-1)

    def test_out_of_order_add_rejected(self):
        index = InvertedIndex(min_size=2, max_size=2)
        index.add(0, "ab")
        index.add(1, "cd")
        with pytest.raises(ValueError):
            index.add(0, "ef")
        with pytest.raises(ValueError):
            # Repeating a row id would silently double-count postings.
            index.add(1, "ab")

    def test_stop_gram_pruning_drops_postings_keeps_frequencies(self):
        rows = ["abcd", "abce", "abcf", "abzz"]
        index = InvertedIndex.build(rows, min_size=2, max_size=3, stop_gram_cap=2)
        # "ab" occurs in 4 rows (> cap): postings dropped, frequency kept.
        assert list(index.rows_containing("ab")) == []
        assert index.row_frequency("ab") == 4
        assert "ab" in index
        assert index.num_pruned_ngrams > 0
        # "abc" occurs in 3 rows (> cap) and is pruned too; "bz" survives.
        assert list(index.rows_containing("bz")) == [3]

    def test_add_after_pruning_keeps_frequencies_exact(self):
        index = InvertedIndex.build(
            ["abc", "abd", "abe"], min_size=2, max_size=2, stop_gram_cap=2
        )
        assert list(index.rows_containing("ab")) == []
        assert index.row_frequency("ab") == 3
        index.add(3, "abz")
        # A pruned stop-gram stays pruned and its frequency keeps counting.
        assert list(index.rows_containing("ab")) == []
        assert index.row_frequency("ab") == 4
        assert list(index.rows_containing("bz")) == [3]

    def test_representatives_match_scoring_definition(self):
        source = ["abcd", "abce"]
        target = ["abcd", "qqqq"]
        index = InvertedIndex.build(target, min_size=3, max_size=4)
        reps = index.representatives(source)
        # Row 0: "abc"/"bcd" of size 3 ("abc" scores 1/2*1, "bcd" 1*1 — "bcd"
        # wins), "abcd" of size 4 (scores 1*1).
        assert reps[0] == ["bcd", "abcd"]
        # Row 1: only "abc" co-occurs at size 3, nothing at size 4.
        assert reps[1] == ["abc"]

    def test_representatives_break_ties_lexicographically(self):
        # Both "abcd" and "bcde" occur once in source and once in target:
        # equal Rscore, so the lexicographically smallest wins.
        index = InvertedIndex.build(["abcdexx", "yyyyyyy"], min_size=4, max_size=4)
        reps = index.representatives(["abcde"])
        assert reps[0] == ["abcd"]


class TestValueIndex:
    def test_build_and_probe(self):
        from repro.matching.index import ValueIndex

        index = ValueIndex.build(["a", "b", "a", "c"])
        assert index.num_rows == 4
        assert index.num_values == 3
        assert list(index.rows_for("a")) == [0, 2]
        assert list(index.rows_for("missing")) == []
        assert "b" in index
        assert 7 not in index

    def test_lowercase_mode(self):
        from repro.matching.index import ValueIndex

        index = ValueIndex.build(["Ada", "ada"], lowercase=True)
        assert list(index.rows_for("ADA")) == [0, 1]


class TestScoring:
    def test_irf_is_inverse_of_row_count(self):
        index = InvertedIndex.build(["abcd", "abce", "abcf", "xyzw"], min_size=3, max_size=4)
        assert inverse_row_frequency("abc", index) == pytest.approx(1 / 3)
        assert inverse_row_frequency("xyzw", index) == 1.0
        assert inverse_row_frequency("none", index) == 0.0

    def test_rscore_product(self):
        source = InvertedIndex.build(["abcd", "abce"], min_size=3, max_size=4)
        target = InvertedIndex.build(["abcd", "qqqq"], min_size=3, max_size=4)
        assert representative_score("abcd", source, target) == pytest.approx(1.0)
        assert representative_score("abc", source, target) == pytest.approx(0.5)
        assert representative_score("qqqq", source, target) == 0.0

    def test_rare_ngrams_score_higher(self):
        rows = ["university of alberta " + suffix for suffix in ["aa", "bb", "cc"]]
        source = InvertedIndex.build(rows, min_size=2, max_size=4)
        target = InvertedIndex.build(rows, min_size=2, max_size=4)
        common = representative_score("university"[:4], source, target)
        rare = representative_score("aa", source, target)
        assert rare > common


class TestMatchingConfig:
    def test_defaults_follow_paper(self):
        config = MatchingConfig()
        assert config.min_ngram == 4
        assert config.max_ngram == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            MatchingConfig(min_ngram=0)
        with pytest.raises(ValueError):
            MatchingConfig(min_ngram=5, max_ngram=4)
        with pytest.raises(ValueError):
            MatchingConfig(max_candidates_per_row=-1)


class TestNGramRowMatcher:
    def test_matches_reformatted_names(self, staff_tables):
        source, target = staff_tables
        matcher = NGramRowMatcher()
        pairs = matcher.match(
            source, target, source_column="Name", target_column="Name"
        )
        found = {(p.source_row, p.target_row) for p in pairs}
        expected = {(i, i) for i in range(source.num_rows)}
        assert expected <= found

    def test_returns_row_pair_objects_with_text(self, staff_tables):
        source, target = staff_tables
        pairs = NGramRowMatcher().match(
            source, target, source_column="Name", target_column="Name"
        )
        for pair in pairs:
            assert isinstance(pair, RowPair)
            assert pair.source == source["Name"][pair.source_row]
            assert pair.target == target["Name"][pair.target_row]

    def test_no_duplicates(self, staff_tables):
        source, target = staff_tables
        pairs = NGramRowMatcher().match(
            source, target, source_column="Name", target_column="Name"
        )
        keys = [(p.source_row, p.target_row) for p in pairs]
        assert len(keys) == len(set(keys))

    def test_candidate_cap(self):
        source_values = ["common text alpha", "common text beta"]
        target_values = ["common text one", "common text two", "common text three"]
        capped = NGramRowMatcher(MatchingConfig(min_ngram=4, max_ngram=6, max_candidates_per_row=1))
        pairs = capped.match_values(source_values, target_values)
        per_source: dict[int, int] = {}
        for pair in pairs:
            per_source[pair.source_row] = per_source.get(pair.source_row, 0) + 1
        assert all(count <= 1 for count in per_source.values())

    def test_disjoint_columns_produce_no_pairs(self):
        pairs = NGramRowMatcher(MatchingConfig(min_ngram=4, max_ngram=8)).match_values(
            ["aaaaaa", "bbbbbb"], ["cccccc", "dddddd"]
        )
        assert pairs == []


class TestGoldenRowMatcher:
    def test_replays_ground_truth(self, staff_tables):
        source, target = staff_tables
        golden = [(i, i) for i in range(source.num_rows)]
        pairs = GoldenRowMatcher(golden).match(
            source, target, source_column="Name", target_column="Name"
        )
        assert [(p.source_row, p.target_row) for p in pairs] == golden
        assert pairs[0].source == "Rafiei, Davood"

    def test_out_of_range_pair_rejected(self, staff_tables):
        source, target = staff_tables
        with pytest.raises(IndexError):
            GoldenRowMatcher([(99, 0)]).match(
                source, target, source_column="Name", target_column="Name"
            )


class TestChooseSourceColumn:
    def test_longer_column_is_source(self):
        long = Table({"c": ["a very long description here"]})
        short = Table({"c": ["short"]})
        assert choose_source_column(long, short, "c", "c") is True
        assert choose_source_column(short, long, "c", "c") is False
