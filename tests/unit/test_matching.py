"""Unit tests for the row-matching substrate (repro.matching)."""

from __future__ import annotations

import pytest

from repro.core.pairs import RowPair
from repro.matching.index import InvertedIndex
from repro.matching.ngrams import character_ngrams, ngrams_in_range, unique_ngrams
from repro.matching.row_matcher import (
    GoldenRowMatcher,
    MatchingConfig,
    NGramRowMatcher,
    choose_source_column,
)
from repro.matching.scoring import inverse_row_frequency, representative_score
from repro.table.table import Table


class TestNgrams:
    def test_character_ngrams(self):
        assert character_ngrams("abcd", 2) == ["ab", "bc", "cd"]

    def test_lowercasing(self):
        assert character_ngrams("AbC", 2) == ["ab", "bc"]
        assert character_ngrams("AbC", 2, lowercase=False) == ["Ab", "bC"]

    def test_short_text(self):
        assert character_ngrams("ab", 4) == []

    def test_unique_ngrams(self):
        assert unique_ngrams("aaaa", 2) == {"aa"}

    def test_ngrams_in_range(self):
        grams = list(ngrams_in_range("abcd", 2, 3))
        assert "ab" in grams and "abc" in grams and "abcd" not in grams

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            character_ngrams("abc", 0)
        with pytest.raises(ValueError):
            list(ngrams_in_range("abc", 3, 2))


class TestInvertedIndex:
    def test_build_and_lookup(self):
        index = InvertedIndex.build(["hello world", "hello there"], min_size=4, max_size=6)
        assert index.num_rows == 2
        assert index.rows_containing("hello") == frozenset({0, 1})
        assert index.rows_containing("world") == frozenset({0})
        assert index.rows_containing("zzzz") == frozenset()

    def test_row_frequency(self):
        index = InvertedIndex.build(["abcd", "abce", "abxx"], min_size=2, max_size=3)
        assert index.row_frequency("ab") == 3
        assert index.row_frequency("abc") == 2
        assert index.row_frequency("zz") == 0

    def test_case_insensitive_by_default(self):
        index = InvertedIndex.build(["Hello"], min_size=4, max_size=5)
        assert index.rows_containing("HELLO") == frozenset({0})

    def test_contains(self):
        index = InvertedIndex.build(["abcd"], min_size=2, max_size=2)
        assert "ab" in index
        assert "zz" not in index
        assert 42 not in index

    def test_num_ngrams_counts_distinct(self):
        index = InvertedIndex.build(["aaaa"], min_size=2, max_size=2)
        assert index.num_ngrams == 1

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            InvertedIndex(min_size=0, max_size=3)
        with pytest.raises(ValueError):
            InvertedIndex(min_size=4, max_size=2)


class TestScoring:
    def test_irf_is_inverse_of_row_count(self):
        index = InvertedIndex.build(["abcd", "abce", "abcf", "xyzw"], min_size=3, max_size=4)
        assert inverse_row_frequency("abc", index) == pytest.approx(1 / 3)
        assert inverse_row_frequency("xyzw", index) == 1.0
        assert inverse_row_frequency("none", index) == 0.0

    def test_rscore_product(self):
        source = InvertedIndex.build(["abcd", "abce"], min_size=3, max_size=4)
        target = InvertedIndex.build(["abcd", "qqqq"], min_size=3, max_size=4)
        assert representative_score("abcd", source, target) == pytest.approx(1.0)
        assert representative_score("abc", source, target) == pytest.approx(0.5)
        assert representative_score("qqqq", source, target) == 0.0

    def test_rare_ngrams_score_higher(self):
        rows = ["university of alberta " + suffix for suffix in ["aa", "bb", "cc"]]
        source = InvertedIndex.build(rows, min_size=2, max_size=4)
        target = InvertedIndex.build(rows, min_size=2, max_size=4)
        common = representative_score("university"[:4], source, target)
        rare = representative_score("aa", source, target)
        assert rare > common


class TestMatchingConfig:
    def test_defaults_follow_paper(self):
        config = MatchingConfig()
        assert config.min_ngram == 4
        assert config.max_ngram == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            MatchingConfig(min_ngram=0)
        with pytest.raises(ValueError):
            MatchingConfig(min_ngram=5, max_ngram=4)
        with pytest.raises(ValueError):
            MatchingConfig(max_candidates_per_row=-1)


class TestNGramRowMatcher:
    def test_matches_reformatted_names(self, staff_tables):
        source, target = staff_tables
        matcher = NGramRowMatcher()
        pairs = matcher.match(
            source, target, source_column="Name", target_column="Name"
        )
        found = {(p.source_row, p.target_row) for p in pairs}
        expected = {(i, i) for i in range(source.num_rows)}
        assert expected <= found

    def test_returns_row_pair_objects_with_text(self, staff_tables):
        source, target = staff_tables
        pairs = NGramRowMatcher().match(
            source, target, source_column="Name", target_column="Name"
        )
        for pair in pairs:
            assert isinstance(pair, RowPair)
            assert pair.source == source["Name"][pair.source_row]
            assert pair.target == target["Name"][pair.target_row]

    def test_no_duplicates(self, staff_tables):
        source, target = staff_tables
        pairs = NGramRowMatcher().match(
            source, target, source_column="Name", target_column="Name"
        )
        keys = [(p.source_row, p.target_row) for p in pairs]
        assert len(keys) == len(set(keys))

    def test_candidate_cap(self):
        source_values = ["common text alpha", "common text beta"]
        target_values = ["common text one", "common text two", "common text three"]
        capped = NGramRowMatcher(MatchingConfig(min_ngram=4, max_ngram=6, max_candidates_per_row=1))
        pairs = capped.match_values(source_values, target_values)
        per_source: dict[int, int] = {}
        for pair in pairs:
            per_source[pair.source_row] = per_source.get(pair.source_row, 0) + 1
        assert all(count <= 1 for count in per_source.values())

    def test_disjoint_columns_produce_no_pairs(self):
        pairs = NGramRowMatcher(MatchingConfig(min_ngram=4, max_ngram=8)).match_values(
            ["aaaaaa", "bbbbbb"], ["cccccc", "dddddd"]
        )
        assert pairs == []


class TestGoldenRowMatcher:
    def test_replays_ground_truth(self, staff_tables):
        source, target = staff_tables
        golden = [(i, i) for i in range(source.num_rows)]
        pairs = GoldenRowMatcher(golden).match(
            source, target, source_column="Name", target_column="Name"
        )
        assert [(p.source_row, p.target_row) for p in pairs] == golden
        assert pairs[0].source == "Rafiei, Davood"

    def test_out_of_range_pair_rejected(self, staff_tables):
        source, target = staff_tables
        with pytest.raises(IndexError):
            GoldenRowMatcher([(99, 0)]).match(
                source, target, source_column="Name", target_column="Name"
            )


class TestChooseSourceColumn:
    def test_longer_column_is_source(self):
        long = Table({"c": ["a very long description here"]})
        short = Table({"c": ["short"]})
        assert choose_source_column(long, short, "c", "c") is True
        assert choose_source_column(short, long, "c", "c") is False
