"""Unit tests for the serving resilience layer.

Covers the pieces individually — the circuit-breaker state machine
(including the half-open single probe under real thread concurrency and
the mtime fast-path), the admission controller's bounds and
deadline-while-queued behaviour, the micro-batcher's per-follower
deadlines, the engine's failure remapping, cooperative deadlines on the
apply path, the serve-scoped fault grammar, request-body parsing
(``deadline_ms``, the 413 cap), and the bounded latency window.  The
end-to-end behaviours (injected hangs → 504, saturation → 429, breaker
transitions over HTTP) live in ``tests/integration/test_serve_chaos.py``.
"""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.datasets.synthetic import SyntheticConfig, generate_table_pair
from repro.join.pipeline import JoinPipeline
from repro.parallel.errors import DeadlineExceededError as CoreDeadlineExceededError
from repro.parallel.errors import ShardError, ShardTimeoutError
from repro.serve import JoinServer, LatencyStats
from repro.serve.admission import AdmissionController
from repro.serve.breaker import CircuitBreaker
from repro.serve.engine import MicroBatcher, ServeEngine
from repro.serve.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
)
from repro.testing.faults import (
    SERVE_SITES,
    FaultInjected,
    FaultSpec,
    maybe_inject_serve,
    parse_fault_spec,
)


@pytest.fixture(scope="module")
def fitted_model():
    pair, _ = generate_table_pair(SyntheticConfig(num_rows=120, seed=11))
    model = JoinPipeline(min_support=0.05).fit(
        pair.source, pair.target, source_column="value", target_column="value"
    )
    return pair, model


# --------------------------------------------------------------------- #
# Circuit breaker state machine
# --------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("m", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("m", cooldown_s=-1.0)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker("m", failure_threshold=3, cooldown_s=60.0)
        for _ in range(2):
            breaker.acquire()
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.acquire()
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.acquire()
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after_s > 0

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker("m", failure_threshold=2, cooldown_s=60.0)
        breaker.acquire()
        breaker.record_failure()
        breaker.acquire()
        breaker.record_success()
        breaker.acquire()
        breaker.record_failure()
        # The earlier failure was cleared: one more is still below threshold.
        assert breaker.state == "closed"

    def _trip(self, breaker: CircuitBreaker) -> None:
        while breaker.state == "closed":
            breaker.acquire()
            breaker.record_failure()

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker("m", failure_threshold=1, cooldown_s=0.05)
        self._trip(breaker)
        time.sleep(0.06)
        breaker.acquire()  # admitted as the probe
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.acquire()  # healthy again

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker("m", failure_threshold=1, cooldown_s=0.05)
        self._trip(breaker)
        time.sleep(0.06)
        breaker.acquire()
        breaker.record_failure()
        assert breaker.state == "open"
        # The cool-down restarted: immediately rejected again.
        with pytest.raises(CircuitOpenError):
            breaker.acquire()

    def test_half_open_abort_frees_the_probe_slot(self):
        breaker = CircuitBreaker("m", failure_threshold=1, cooldown_s=0.05)
        self._trip(breaker)
        time.sleep(0.06)
        breaker.acquire()
        breaker.record_abort()
        assert breaker.state == "open"
        # A later request can still become the probe once the (restarted)
        # cool-down elapses — the slot did not stay wedged.
        time.sleep(0.06)
        breaker.acquire()
        assert breaker.state == "half_open"

    def test_half_open_admits_exactly_one_probe_under_concurrency(self):
        breaker = CircuitBreaker("m", failure_threshold=1, cooldown_s=0.05)
        self._trip(breaker)
        time.sleep(0.06)
        workers = 8
        barrier = threading.Barrier(workers)
        admitted = []
        rejected = []
        lock = threading.Lock()

        def attempt() -> None:
            barrier.wait()
            try:
                breaker.acquire()
            except CircuitOpenError:
                with lock:
                    rejected.append(1)
            else:
                with lock:
                    admitted.append(1)

        threads = [threading.Thread(target=attempt) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert len(admitted) == 1
        assert len(rejected) == workers - 1

    def test_changed_mtime_admits_a_probe_before_the_cooldown(self):
        mtime = {"value": 100}
        breaker = CircuitBreaker(
            "m",
            failure_threshold=1,
            cooldown_s=3600.0,
            mtime_fn=lambda: mtime["value"],
        )
        self._trip(breaker)
        with pytest.raises(CircuitOpenError):
            breaker.acquire()
        mtime["value"] = 200  # the operator shipped a fixed artifact
        breaker.acquire()  # probe admitted immediately, no cool-down wait
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_snapshot_counters(self):
        breaker = CircuitBreaker("m", failure_threshold=1, cooldown_s=3600.0)
        self._trip(breaker)
        with pytest.raises(CircuitOpenError):
            breaker.acquire()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "open"
        assert snapshot["times_opened"] == 1
        assert snapshot["rejected"] == 1
        assert snapshot["failure_threshold"] == 1


# --------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------- #
class TestAdmissionController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)

    def test_admits_within_bounds_and_tracks_gauges(self):
        admission = AdmissionController(max_inflight=2, max_queue=0)
        admission.acquire()
        admission.acquire()
        assert admission.saturated
        admission.release()
        admission.release()
        snapshot = admission.snapshot()
        assert snapshot["admitted"] == 2
        assert snapshot["in_flight"] == 0
        assert snapshot["peak_in_flight"] == 2

    def test_sheds_beyond_both_bounds(self):
        admission = AdmissionController(max_inflight=1, max_queue=0)
        admission.acquire()
        with pytest.raises(OverloadedError) as excinfo:
            admission.acquire()
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after_s > 0
        admission.release()
        assert admission.snapshot()["shed"] == 1

    def test_queued_request_runs_after_release(self):
        admission = AdmissionController(max_inflight=1, max_queue=1)
        admission.acquire()
        acquired = threading.Event()

        def waiter() -> None:
            admission.acquire()
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()  # parked in the queue
        admission.release()
        assert acquired.wait(timeout=5)
        admission.release()
        thread.join(timeout=5)

    def test_deadline_expires_while_queued(self):
        admission = AdmissionController(max_inflight=1, max_queue=1)
        admission.acquire()
        errors: list[BaseException] = []

        def waiter() -> None:
            try:
                admission.acquire(deadline=time.monotonic() + 0.1)
            except BaseException as error:  # noqa: BLE001 - asserting type
                errors.append(error)

        thread = threading.Thread(target=waiter)
        thread.start()
        thread.join(timeout=5)
        assert len(errors) == 1
        assert isinstance(errors[0], CoreDeadlineExceededError)
        snapshot = admission.snapshot()
        assert snapshot["deadline_shed"] == 1
        assert snapshot["queued"] == 0  # the expired waiter left the queue
        admission.release()


# --------------------------------------------------------------------- #
# Micro-batcher follower deadlines
# --------------------------------------------------------------------- #
def test_micro_batch_follower_times_out_individually():
    """A follower whose budget lapses mid-execution raises; the leader is
    unaffected and still gets its (late but complete) result."""

    def execute(key, requests):
        time.sleep(0.5)
        return [("result", True) for _ in requests]

    batcher = MicroBatcher(execute, max_batch_size=8, max_wait_s=0.2)
    outcomes: dict[str, object] = {}

    def leader() -> None:
        outcomes["leader"] = batcher.submit("k", ["a"], ["b"])

    def follower() -> None:
        try:
            batcher.submit(
                "k", ["c"], ["b"], deadline=time.monotonic() + 0.15
            )
        except CoreDeadlineExceededError as error:
            outcomes["follower"] = error

    leader_thread = threading.Thread(target=leader)
    leader_thread.start()
    time.sleep(0.05)  # arrive inside the leader's batch window
    follower_thread = threading.Thread(target=follower)
    follower_thread.start()
    follower_thread.join(timeout=5)
    leader_thread.join(timeout=5)
    assert isinstance(outcomes["follower"], CoreDeadlineExceededError)
    result, warm, size = outcomes["leader"]
    assert result == "result" and warm is True and size == 2


# --------------------------------------------------------------------- #
# Engine failure remapping
# --------------------------------------------------------------------- #
class TestMapFailure:
    def test_core_deadline_maps_to_serve_504(self):
        mapped = ServeEngine._map_failure(
            CoreDeadlineExceededError("expired"), None
        )
        assert isinstance(mapped, DeadlineExceededError)
        assert mapped.status == 504

    def test_shard_error_with_deadline_cause_maps_to_serve_504(self):
        cause = CoreDeadlineExceededError("worker hit the deadline")
        error = ShardError("shard failed", shard=(0, 10), cause=cause)
        mapped = ServeEngine._map_failure(error, None)
        assert isinstance(mapped, DeadlineExceededError)

    def test_shard_timeout_after_the_deadline_maps_to_serve_504(self):
        error = ShardTimeoutError("map deadline expired")
        mapped = ServeEngine._map_failure(error, time.monotonic() - 1.0)
        assert isinstance(mapped, DeadlineExceededError)

    def test_unrelated_failures_pass_through(self):
        error = ShardError("worker raised", cause=ValueError("boom"))
        assert ServeEngine._map_failure(error, None) is error
        plain = ValueError("boom")
        assert ServeEngine._map_failure(plain, None) is plain


# --------------------------------------------------------------------- #
# Cooperative deadlines on the apply path
# --------------------------------------------------------------------- #
def test_joiner_deadline_expired_raises_and_generous_deadline_matches(
    fitted_model,
):
    pair, model = fitted_model
    source = list(pair.source["value"])
    target = list(pair.target["value"])
    joiner = model.joiner()
    baseline = joiner.join_values(source, target)
    with pytest.raises(CoreDeadlineExceededError):
        joiner.join_values(source, target, deadline=time.monotonic() - 1.0)
    # An expired deadline is an error, never a truncated result; a generous
    # one changes nothing about the output.
    result = joiner.join_values(
        source, target, deadline=time.monotonic() + 60.0
    )
    assert result.pairs == baseline.pairs


# --------------------------------------------------------------------- #
# Serve-scoped fault grammar
# --------------------------------------------------------------------- #
class TestServeFaultGrammar:
    @pytest.mark.parametrize("site", SERVE_SITES)
    def test_parses_serve_sites(self, site):
        spec = parse_fault_spec(f"raise:where={site}")
        assert spec.where == site
        assert spec.matches_site(site)
        # Serve-scoped specs never reach the executor's shard sites.
        assert not spec.matches(0, in_pool_worker=True)
        assert not spec.matches(0, in_pool_worker=False)

    def test_parses_slow_kind_with_seconds(self):
        spec = parse_fault_spec("slow:where=engine:seconds=0.25")
        assert spec.kind == "slow"
        assert spec.seconds == 0.25

    def test_crash_rejected_at_serve_sites(self):
        with pytest.raises(ValueError, match="crash"):
            parse_fault_spec("crash:where=engine")

    def test_executor_wildcard_does_not_reach_serve_sites(self):
        spec = FaultSpec(kind="raise", where="any")
        for site in SERVE_SITES:
            assert not spec.matches_site(site)

    def test_inject_raise_at_matching_site_only(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "raise:where=engine")
        maybe_inject_serve("registry")  # other site: no-op
        with pytest.raises(FaultInjected):
            maybe_inject_serve("engine")

    def test_injected_hang_is_cut_at_the_deadline(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang:where=engine")
        started = time.monotonic()
        with pytest.raises(CoreDeadlineExceededError):
            maybe_inject_serve("engine", deadline=time.monotonic() + 0.15)
        assert time.monotonic() - started < 1.0

    def test_injected_slow_completes_within_its_budget(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "slow:where=server:seconds=0.1"
        )
        started = time.monotonic()
        maybe_inject_serve("server", deadline=time.monotonic() + 5.0)
        elapsed = time.monotonic() - started
        assert 0.1 <= elapsed < 1.0


# --------------------------------------------------------------------- #
# Request parsing: deadline_ms and the body cap
# --------------------------------------------------------------------- #
def _post(server: JoinServer, name: str, body: bytes) -> tuple[int, dict, dict]:
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=30)
    try:
        connection.request(
            "POST", f"/join/{name}", body, {"Content-Type": "application/json"}
        )
        response = connection.getresponse()
        headers = dict(response.getheaders())
        return response.status, json.loads(response.read()), headers
    finally:
        connection.close()


@pytest.fixture()
def small_server(fitted_model, tmp_path):
    _, model = fitted_model
    model.save(tmp_path / "synth.json")
    with JoinServer(tmp_path, port=0, max_body_bytes=2048) as server:
        server.start_background()
        yield server


class TestRequestParsing:
    @pytest.mark.parametrize("bad", [0, -5, "soon", True, [100]])
    def test_invalid_deadline_ms_is_a_400(self, small_server, bad):
        body = json.dumps(
            {"source": ["a"], "target": ["a"], "deadline_ms": bad}
        ).encode()
        status, payload, _ = _post(small_server, "synth", body)
        assert status == 400
        assert payload["error"]["type"] == "BadRequestError"
        assert "deadline_ms" in payload["error"]["message"]

    def test_valid_deadline_ms_serves_normally(self, small_server):
        body = json.dumps(
            {"source": ["a"], "target": ["a"], "deadline_ms": 10_000}
        ).encode()
        status, payload, _ = _post(small_server, "synth", body)
        assert status == 200
        assert "pairs" in payload

    def test_oversized_body_is_a_typed_413(self, small_server):
        body = json.dumps(
            {"source": ["x" * 4096], "target": ["a"]}
        ).encode()
        assert len(body) > 2048
        status, payload, _ = _post(small_server, "synth", body)
        assert status == 413
        assert payload["error"]["type"] == "PayloadTooLargeError"

    def test_stats_exposes_admission_and_resilience_sections(
        self, small_server
    ):
        host, port = small_server.address
        connection = HTTPConnection(host, port, timeout=30)
        try:
            connection.request("GET", "/stats")
            payload = json.loads(connection.getresponse().read())
        finally:
            connection.close()
        assert payload["admission"]["max_inflight"] >= 1
        assert payload["resilience"]["shed"] == 0
        assert payload["resilience"]["deadline_exceeded"] == 0
        assert "breakers" in payload["engine"]


# --------------------------------------------------------------------- #
# Latency window stays bounded
# --------------------------------------------------------------------- #
def test_latency_stats_window_is_bounded_but_totals_are_exact():
    stats = LatencyStats(window=16)
    for index in range(100):
        stats.record(index / 1000.0, warm=index > 0)
    snapshot = stats.snapshot()
    assert snapshot["count"] == 100
    assert snapshot["warm_count"] == 99
    assert snapshot["first_request_ms"] == 0.0
    assert snapshot["max_ms"] == pytest.approx(99.0)
    # Quantiles come from the bounded recent window (the last 16 samples).
    assert snapshot["p50_ms"] >= 84.0
    assert len(stats._recent) == 16
