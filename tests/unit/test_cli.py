"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.table.io import read_csv, write_csv
from repro.table.table import Table


@pytest.fixture
def staff_csvs(tmp_path, staff_tables):
    source, target = staff_tables
    source_path = tmp_path / "staff.csv"
    target_path = tmp_path / "phones.csv"
    write_csv(source, source_path)
    write_csv(target, target_path)
    return source_path, target_path


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_discover_arguments(self):
        args = build_parser().parse_args(
            [
                "discover",
                "a.csv",
                "b.csv",
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--max-placeholders",
                "4",
            ]
        )
        assert args.command == "discover"
        assert args.max_placeholders == 4

    def test_benchmark_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["benchmark", "not-a-dataset", "--output-dir", "out"]
            )

    def test_num_workers_defaults_to_config(self):
        args = build_parser().parse_args(
            [
                "discover",
                "a.csv",
                "b.csv",
                "--source-column",
                "Name",
                "--target-column",
                "Name",
            ]
        )
        assert args.num_workers is None


class TestNumWorkersFlag:
    def test_discover_with_workers_matches_serial(self, staff_csvs, capsys):
        source_path, target_path = staff_csvs
        argv = [
            "discover",
            str(source_path),
            str(target_path),
            "--source-column",
            "Name",
            "--target-column",
            "Name",
        ]
        # Pin the baseline to serial explicitly: under the CI job that sets
        # REPRO_NUM_WORKERS=2 a flagless run would itself be sharded and the
        # comparison would be a tautology.
        assert main(argv + ["--num-workers", "1"]) == 0
        serial_output = capsys.readouterr().out
        assert main(argv + ["--num-workers", "2"]) == 0
        sharded_output = capsys.readouterr().out
        assert sharded_output == serial_output


class TestDiscoverCommand:
    def test_prints_covering_set(self, staff_csvs, capsys):
        source_path, target_path = staff_csvs
        exit_code = main(
            [
                "discover",
                str(source_path),
                str(target_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "covering set:" in captured
        assert "Split" in captured


class TestJoinCommand:
    def test_writes_joined_csv(self, staff_csvs, tmp_path, capsys):
        source_path, target_path = staff_csvs
        output = tmp_path / "joined.csv"
        exit_code = main(
            [
                "join",
                str(source_path),
                str(target_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--output",
                str(output),
                "--min-support",
                "0.0",
            ]
        )
        assert exit_code == 0
        joined = read_csv(output)
        assert joined.num_rows >= 5
        assert "Name_source" in joined and "Phone_target" in joined
        assert "joined rows" in capsys.readouterr().out


class TestFitApplyCommands:
    def test_fit_writes_model_and_apply_joins_with_it(
        self, staff_csvs, tmp_path, capsys
    ):
        source_path, target_path = staff_csvs
        model_path = tmp_path / "model.json"
        exit_code = main(
            [
                "fit",
                str(source_path),
                str(target_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--save",
                str(model_path),
                "--min-support",
                "0.0",
            ]
        )
        assert exit_code == 0
        assert model_path.exists()
        assert "wrote" in capsys.readouterr().out

        output = tmp_path / "applied.csv"
        exit_code = main(
            [
                "apply",
                str(source_path),
                str(target_path),
                "--model",
                str(model_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        applied = read_csv(output)
        assert applied.num_rows >= 5
        assert "joined rows" in capsys.readouterr().out

    def test_fit_then_apply_matches_one_shot_join(self, staff_csvs, tmp_path):
        # The acceptance contract: fit + apply on the same inputs produces
        # exactly the joined table of the one-shot `join` command.
        source_path, target_path = staff_csvs
        model_path = tmp_path / "model.json"
        one_shot = tmp_path / "one_shot.csv"
        applied = tmp_path / "applied.csv"
        columns = ["--source-column", "Name", "--target-column", "Name"]
        paths = [str(source_path), str(target_path)]
        assert (
            main(
                ["join"]
                + paths
                + columns
                + ["--output", str(one_shot), "--min-support", "0.05"]
            )
            == 0
        )
        assert (
            main(["fit"] + paths + columns + ["--save", str(model_path)]) == 0
        )
        assert (
            main(
                ["apply"]
                + paths
                + ["--model", str(model_path)]
                + columns
                + ["--output", str(applied)]
            )
            == 0
        )
        assert applied.read_text() == one_shot.read_text()

    def test_fit_rejects_unwritable_save_path(self, staff_csvs, tmp_path, capsys):
        source_path, target_path = staff_csvs
        exit_code = main(
            [
                "fit",
                str(source_path),
                str(target_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--save",
                str(tmp_path / "missing-dir" / "model.json"),
            ]
        )
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_apply_rejects_missing_model_file(self, staff_csvs, tmp_path, capsys):
        # Same clean error contract as a corrupt file: one line on stderr,
        # exit 1 — not a traceback.
        source_path, target_path = staff_csvs
        exit_code = main(
            [
                "apply",
                str(source_path),
                str(target_path),
                "--model",
                str(tmp_path / "nowhere.json"),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--output",
                str(tmp_path / "out.csv"),
            ]
        )
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_apply_rejects_corrupt_model(self, staff_csvs, tmp_path, capsys):
        source_path, target_path = staff_csvs
        bad_model = tmp_path / "bad.json"
        bad_model.write_text("{broken", encoding="utf-8")
        exit_code = main(
            [
                "apply",
                str(source_path),
                str(target_path),
                "--model",
                str(bad_model),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--output",
                str(tmp_path / "out.csv"),
            ]
        )
        assert exit_code == 1
        assert "error" in capsys.readouterr().err


class TestErrorContract:
    def test_unreadable_csv_maps_to_one_error_line(self, staff_csvs, capsys):
        # Invalid UTF-8 in an input table must surface as the one-line
        # stderr contract (exit 1, single "error:" line, no traceback), not
        # a UnicodeDecodeError traceback.
        source_path, target_path = staff_csvs
        source_path.write_bytes(b"Name\n\xff\xfe\n")
        exit_code = main(
            [
                "discover",
                str(source_path),
                str(target_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err.startswith("error: ")
        assert "not valid UTF-8" in captured.err
        assert len(captured.err.strip().splitlines()) == 1

    def test_ragged_csv_maps_to_one_error_line(self, staff_csvs, capsys):
        source_path, target_path = staff_csvs
        source_path.write_text("Name,Phone\nAlice\n")
        exit_code = main(
            [
                "join",
                str(source_path),
                str(target_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--output",
                str(source_path.parent / "joined.csv"),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err.startswith("error: ")
        assert "expected 2 cells" in captured.err


class TestTimeBudgetFlag:
    def test_exhausted_budget_warns_but_succeeds(self, staff_csvs, capsys):
        # Budget exhaustion is a degraded success: valid partial output on
        # stdout, one warning line on stderr, exit code 0.
        source_path, target_path = staff_csvs
        exit_code = main(
            [
                "discover",
                str(source_path),
                str(target_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--time-budget",
                "0.000000001",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "covering set:" in captured.out
        assert captured.err.startswith("warning: discovery time budget exhausted")
        assert len(captured.err.strip().splitlines()) == 1

    def test_generous_budget_is_silent(self, staff_csvs, capsys):
        source_path, target_path = staff_csvs
        exit_code = main(
            [
                "discover",
                str(source_path),
                str(target_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--time-budget",
                "3600",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.err == ""

    def test_fit_records_budget_exhaustion_in_the_model(
        self, staff_csvs, tmp_path, capsys
    ):
        from repro.model import TransformationModel

        source_path, target_path = staff_csvs
        model_path = tmp_path / "model.json"
        exit_code = main(
            [
                "fit",
                str(source_path),
                str(target_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--save",
                str(model_path),
                "--time-budget",
                "0.000000001",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.err.startswith("warning: discovery time budget exhausted")
        model = TransformationModel.load(model_path)
        assert model.stats["budget_exhausted"] is True


class TestFaultToleranceFlags:
    def test_fault_knobs_parse_and_run(self, staff_csvs, tmp_path, capsys):
        # The resilience knobs must thread end-to-end through every stage
        # without changing results.
        source_path, target_path = staff_csvs
        argv = [
            "join",
            str(source_path),
            str(target_path),
            "--source-column",
            "Name",
            "--target-column",
            "Name",
        ]
        baseline = tmp_path / "baseline.csv"
        tolerant = tmp_path / "tolerant.csv"
        assert main(argv + ["--output", str(baseline)]) == 0
        assert (
            main(
                argv
                + [
                    "--output",
                    str(tolerant),
                    "--task-timeout",
                    "60",
                    "--shard-retries",
                    "1",
                    "--no-serial-fallback",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert tolerant.read_text() == baseline.read_text()


class TestBenchmarkCommand:
    def test_materializes_dataset(self, tmp_path, capsys):
        exit_code = main(
            [
                "benchmark",
                "synth-50",
                "--output-dir",
                str(tmp_path / "out"),
                "--scale",
                "0.1",
                "--seed",
                "1",
            ]
        )
        assert exit_code == 0
        written = list((tmp_path / "out").glob("*.csv"))
        assert len(written) == 3  # source, target, golden for one table
        table = read_csv(written[0])
        assert isinstance(table, Table)
        assert "wrote" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_arguments_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "models",
                "--port",
                "0",
                "--num-workers",
                "2",
                "--joiner-cache",
                "8",
                "--no-micro-batch",
            ]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.num_workers == 2
        assert args.joiner_cache == 8
        assert args.no_micro_batch is True

    def test_serve_rejects_missing_model_dir(self, tmp_path, capsys):
        exit_code = main(["serve", str(tmp_path / "nowhere"), "--port", "0"])
        assert exit_code == 1
        assert "not found" in capsys.readouterr().err
