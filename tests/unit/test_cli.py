"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.table.io import read_csv, write_csv
from repro.table.table import Table


@pytest.fixture
def staff_csvs(tmp_path, staff_tables):
    source, target = staff_tables
    source_path = tmp_path / "staff.csv"
    target_path = tmp_path / "phones.csv"
    write_csv(source, source_path)
    write_csv(target, target_path)
    return source_path, target_path


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_discover_arguments(self):
        args = build_parser().parse_args(
            [
                "discover",
                "a.csv",
                "b.csv",
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--max-placeholders",
                "4",
            ]
        )
        assert args.command == "discover"
        assert args.max_placeholders == 4

    def test_benchmark_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["benchmark", "not-a-dataset", "--output-dir", "out"]
            )

    def test_num_workers_defaults_to_config(self):
        args = build_parser().parse_args(
            [
                "discover",
                "a.csv",
                "b.csv",
                "--source-column",
                "Name",
                "--target-column",
                "Name",
            ]
        )
        assert args.num_workers is None


class TestNumWorkersFlag:
    def test_discover_with_workers_matches_serial(self, staff_csvs, capsys):
        source_path, target_path = staff_csvs
        argv = [
            "discover",
            str(source_path),
            str(target_path),
            "--source-column",
            "Name",
            "--target-column",
            "Name",
        ]
        # Pin the baseline to serial explicitly: under the CI job that sets
        # REPRO_NUM_WORKERS=2 a flagless run would itself be sharded and the
        # comparison would be a tautology.
        assert main(argv + ["--num-workers", "1"]) == 0
        serial_output = capsys.readouterr().out
        assert main(argv + ["--num-workers", "2"]) == 0
        sharded_output = capsys.readouterr().out
        assert sharded_output == serial_output


class TestDiscoverCommand:
    def test_prints_covering_set(self, staff_csvs, capsys):
        source_path, target_path = staff_csvs
        exit_code = main(
            [
                "discover",
                str(source_path),
                str(target_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "covering set:" in captured
        assert "Split" in captured


class TestJoinCommand:
    def test_writes_joined_csv(self, staff_csvs, tmp_path, capsys):
        source_path, target_path = staff_csvs
        output = tmp_path / "joined.csv"
        exit_code = main(
            [
                "join",
                str(source_path),
                str(target_path),
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--output",
                str(output),
                "--min-support",
                "0.0",
            ]
        )
        assert exit_code == 0
        joined = read_csv(output)
        assert joined.num_rows >= 5
        assert "Name_source" in joined and "Phone_target" in joined
        assert "joined rows" in capsys.readouterr().out


class TestBenchmarkCommand:
    def test_materializes_dataset(self, tmp_path, capsys):
        exit_code = main(
            [
                "benchmark",
                "synth-50",
                "--output-dir",
                str(tmp_path / "out"),
                "--scale",
                "0.1",
                "--seed",
                "1",
            ]
        )
        assert exit_code == 0
        written = list((tmp_path / "out").glob("*.csv"))
        assert len(written) == 3  # source, target, golden for one table
        table = read_csv(written[0])
        assert isinstance(table, Table)
        assert "wrote" in capsys.readouterr().out
