"""Unit tests for the evaluation metrics and report formatting."""

from __future__ import annotations

import pytest

from repro.core.pairs import RowPair
from repro.evaluation.join_metrics import evaluate_join
from repro.evaluation.matching_metrics import evaluate_matching, prf
from repro.evaluation.report import format_table, rows_to_csv


class TestPRF:
    def test_perfect_prediction(self):
        result = prf([(0, 0), (1, 1)], [(0, 0), (1, 1)])
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f1 == 1.0

    def test_partial_prediction(self):
        result = prf([(0, 0), (1, 2)], [(0, 0), (1, 1)])
        assert result.precision == 0.5
        assert result.recall == 0.5
        assert result.f1 == pytest.approx(0.5)

    def test_no_predictions(self):
        result = prf([], [(0, 0)])
        assert result.precision == 0.0
        assert result.recall == 0.0
        assert result.f1 == 0.0

    def test_no_gold(self):
        result = prf([(0, 0)], [])
        assert result.recall == 0.0
        assert result.f1 == 0.0

    def test_duplicates_do_not_inflate_counts(self):
        result = prf([(0, 0), (0, 0)], [(0, 0)])
        assert result.num_predicted == 1
        assert result.precision == 1.0

    def test_counts_reported(self):
        result = prf([(0, 0), (5, 5)], [(0, 0), (1, 1), (2, 2)])
        assert result.num_predicted == 2
        assert result.num_gold == 3
        assert result.num_correct == 1

    def test_as_dict(self):
        flat = prf([(0, 0)], [(0, 0)]).as_dict()
        assert flat["precision"] == 1.0 and flat["num_gold"] == 1


class TestEvaluateMatching:
    def test_row_pairs_scored_by_indices(self):
        pairs = [
            RowPair("a", "b", source_row=0, target_row=0),
            RowPair("c", "d", source_row=1, target_row=2),
        ]
        result = evaluate_matching(pairs, [(0, 0), (1, 1)])
        assert result.num_correct == 1

    def test_join_metrics_alias(self):
        result = evaluate_join([(0, 0)], [(0, 0), (1, 1)])
        assert result.precision == 1.0
        assert result.recall == 0.5


class TestReportFormatting:
    def test_format_table_alignment_and_floats(self):
        rows = [
            {"dataset": "web", "f1": 0.8612345, "rows": 92},
            {"dataset": "spreadsheet", "f1": 0.94, "rows": 34},
        ]
        rendered = format_table(rows, title="Table 1")
        assert "Table 1" in rendered
        assert "0.861" in rendered
        assert "spreadsheet" in rendered
        header, separator = rendered.splitlines()[1:3]
        assert len(header) == len(separator)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        rendered = format_table(rows, columns=["b"])
        assert "a" not in rendered.splitlines()[0]

    def test_rows_to_csv(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = rows_to_csv(rows)
        assert text.splitlines()[0] == "a,b"
        assert "2,y" in text

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""
