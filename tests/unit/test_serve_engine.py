"""Unit tests for the serving engine: streaming apply, micro-batching, and
thread-safe concurrent serving."""

from __future__ import annotations

import threading

import pytest

import repro.join.joiner as joiner_module
from repro.core.discovery import TransformationDiscovery
from repro.model.artifact import TransformationModel
from repro.serve.engine import MicroBatcher, ServeEngine, apply_iter
from repro.serve.errors import ModelNotFoundError
from repro.serve.registry import ModelRegistry


def fit_model(pairs: list[tuple[str, str]]) -> TransformationModel:
    engine = TransformationDiscovery()
    result = engine.discover_from_strings(pairs)
    return TransformationModel.from_discovery(
        result, config=engine.config, min_support=0.05
    )


@pytest.fixture
def model(name_initial_pairs) -> TransformationModel:
    return fit_model(name_initial_pairs)


@pytest.fixture
def columns(name_initial_pairs) -> tuple[list[str], list[str]]:
    sources = [source for source, _ in name_initial_pairs]
    targets = [target for _, target in name_initial_pairs]
    return sources, targets


@pytest.fixture
def engine(tmp_path, model) -> ServeEngine:
    model.save(tmp_path / "names.json")
    return ServeEngine(ModelRegistry(tmp_path))


class TestApplyIter:
    def test_results_match_per_batch_fresh_joiners(self, model, columns):
        sources, targets = columns
        batches = [
            (sources[:2], targets),
            (sources[2:], targets),
            (sources, targets[:3]),
        ]
        streamed = list(apply_iter(model, batches))
        for (batch_sources, batch_targets), result in zip(batches, streamed):
            expected = model.joiner().join_values(batch_sources, batch_targets)
            assert result.pairs == expected.pairs
            assert result.matched_by == expected.matched_by

    def test_compiles_the_trie_exactly_once(
        self, model, columns, monkeypatch
    ):
        sources, targets = columns
        original = joiner_module.TransformationApplier
        builds = []

        def counting(transformations):
            builds.append(1)
            return original(transformations)

        monkeypatch.setattr(joiner_module, "TransformationApplier", counting)
        batches = [(sources, targets)] * 4
        results = list(apply_iter(model, batches))
        assert len(results) == 4
        assert len(builds) == 1


class TestMicroBatcher:
    def test_single_request_executes_alone(self):
        def execute(key, requests):
            return [(("ran", request.source_values), True) for request in requests]

        batcher = MicroBatcher(execute, max_wait_s=0.0)
        result, warm, size = batcher.submit("k", ["a"], ["t"])
        assert result == ("ran", ["a"])
        assert warm is True
        assert size == 1
        assert batcher.stats()["batches_executed"] == 1

    def test_concurrent_same_key_requests_coalesce(self):
        executions = []

        def execute(key, requests):
            executions.append(len(requests))
            return [(tuple(request.source_values), False) for request in requests]

        batcher = MicroBatcher(execute, max_wait_s=0.2)
        clients = 4
        barrier = threading.Barrier(clients)
        results = [None] * clients

        def client(index: int) -> None:
            barrier.wait()
            results[index] = batcher.submit("k", [f"s{index}"], ["t"])

        threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every caller got exactly its own rows back.
        for index in range(clients):
            result, _, size = results[index]
            assert result == (f"s{index}",)
            assert 1 <= size <= clients
        # With a generous window the batch must actually have coalesced.
        assert batcher.stats()["coalesced_requests"] >= 2
        assert sum(executions) == clients

    def test_execute_error_propagates_to_every_caller(self):
        def execute(key, requests):
            raise RuntimeError("boom")

        batcher = MicroBatcher(execute, max_wait_s=0.0)
        with pytest.raises(RuntimeError, match="boom"):
            batcher.submit("k", ["a"], ["t"])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda key, requests: [], max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda key, requests: [], max_wait_s=-1.0)


class TestServeEngine:
    def test_response_is_byte_identical_to_offline_apply(
        self, engine, model, columns
    ):
        sources, targets = columns
        offline = model.joiner().join_values(sources, targets)
        response = engine.join("names", sources, targets)
        assert response.pairs == offline.pairs
        assert response.matched_by == [
            repr(offline.matched_by[pair]) for pair in offline.pairs
        ]
        assert response.coalesced == 1
        payload = response.to_payload()
        assert payload["num_pairs"] == offline.num_pairs
        assert payload["pairs"] == [list(pair) for pair in offline.pairs]

    def test_second_request_is_warm(self, engine, columns):
        sources, targets = columns
        assert engine.join("names", sources, targets).warm is False
        assert engine.join("names", sources, targets).warm is True

    def test_unknown_model_raises_through_the_batcher(self, engine, columns):
        sources, targets = columns
        with pytest.raises(ModelNotFoundError):
            engine.join("missing", sources, targets)

    def test_coalesced_split_matches_solo_responses(self, engine, model, columns):
        """The micro-batch split must be byte-identical to solo requests."""
        sources, targets = columns
        solo = {
            index: model.joiner().join_values(sources[index : index + 2], targets)
            for index in range(len(sources) - 1)
        }
        clients = len(solo)
        barrier = threading.Barrier(clients)
        responses = [None] * clients
        errors = []

        def client(index: int) -> None:
            try:
                barrier.wait()
                responses[index] = engine.join(
                    "names", sources[index : index + 2], targets
                )
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for index, response in enumerate(responses):
            expected = solo[index]
            assert response.pairs == expected.pairs
            assert response.matched_by == [
                repr(expected.matched_by[pair]) for pair in expected.pairs
            ]

    def test_concurrent_mixed_requests_equal_serial(self, engine, model, columns):
        """Thread-safety equivalence: hammer one engine from many threads with
        two different target columns; every response equals its serial twin."""
        sources, targets = columns
        other_targets = targets[:3]
        expected = {
            id(targets): model.joiner().join_values(sources, targets),
            id(other_targets): model.joiner().join_values(sources, other_targets),
        }
        rounds = 5
        workers = 8
        failures = []

        def worker(seed: int) -> None:
            for round_index in range(rounds):
                chosen = targets if (seed + round_index) % 2 == 0 else other_targets
                response = engine.join("names", sources, chosen)
                if response.pairs != expected[id(chosen)].pairs:
                    failures.append((seed, round_index))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        stats = engine.stats()
        assert stats["micro_batcher"]["requests"] >= rounds * workers
        assert stats["registry"]["joiner_cache"]["hits"] >= 1

    def test_micro_batch_off_still_serves(self, tmp_path, model, columns):
        sources, targets = columns
        model.save(tmp_path / "names.json")
        engine = ServeEngine(ModelRegistry(tmp_path), micro_batch=False)
        offline = model.joiner().join_values(sources, targets)
        response = engine.join("names", sources, targets)
        assert response.pairs == offline.pairs
        assert response.coalesced == 1

    def test_engine_apply_iter_uses_registry_caches(self, engine, columns):
        sources, targets = columns
        batches = [(sources[:2], targets), (sources[2:], targets)]
        results = list(engine.apply_iter("names", batches))
        assert len(results) == 2
        stats = engine.stats()["registry"]
        assert stats["target_index_cache"]["hits"] >= 1
