"""Unit tests for the kernel tier: selection machinery, op duals, guards.

Three surfaces live here:

* the tier resolution of :mod:`repro.kernels` — probe, override, error
  cases, and the write-through/restore behaviour of ``use_tier``;
* fixed-case checks of every py/np op pair in
  :mod:`repro.kernels.blocks` and :mod:`repro.kernels.bitset` (the
  randomized sweeps live in ``tests/property/test_property_kernels.py``);
* the plumbing that keeps benchmarks honest about the tier — the
  tier-aware worker tuning, the BENCH host block, the mixed-tier
  comparison rejection, and the ``--kernels`` CLI flags.

Every test must pass on both tiers: numpy-side cases skip themselves when
the numpy tier is not active (numpy missing, or ``REPRO_KERNELS=python``
as in the forced-fallback CI leg).
"""

from __future__ import annotations

import pytest

from repro import kernels
from repro.kernels import bitset, blocks


def _np_or_skip():
    np = kernels.numpy_or_none()
    if np is None:
        pytest.skip("numpy tier not active (numpy missing or forced python)")
    return np


@pytest.fixture
def restore_tier():
    """Re-resolve the tier after a test that mutated the environment."""
    yield
    kernels.refresh_tier()


class TestTierResolution:
    def test_active_tier_is_a_known_tier(self):
        assert kernels.active_tier() in ("python", "numpy")

    def test_use_tier_python_disables_numpy(self):
        import os

        with kernels.use_tier("python") as tier:
            assert tier == "python"
            assert kernels.active_tier() == "python"
            # The module handle must be withheld even when numpy is
            # importable — dispatchers key off numpy_or_none(), so this is
            # what makes the forced fallback actually take the python path.
            assert kernels.numpy_or_none() is None
            # Written through to the environment so spawn workers agree.
            assert os.environ.get("REPRO_KERNELS") == "python"
        assert kernels.active_tier() in ("python", "numpy")

    def test_use_tier_numpy_demands_numpy(self):
        try:
            import numpy  # noqa: F401

            has_numpy = True
        except ImportError:
            has_numpy = False
        if has_numpy:
            with kernels.use_tier("numpy"):
                assert kernels.active_tier() == "numpy"
                assert kernels.numpy_or_none() is not None
        else:
            with pytest.raises(ImportError), kernels.use_tier("numpy"):
                pass  # pragma: no cover

    def test_use_tier_rejects_unknown_tier(self):
        with pytest.raises(ValueError), kernels.use_tier("cuda"):
            pass  # pragma: no cover

    def test_bad_env_value_raises(self, restore_tier, monkeypatch):
        # restore_tier is requested first so its teardown (the re-probe)
        # runs after monkeypatch has removed the bad value again.
        monkeypatch.setenv("REPRO_KERNELS", "cuda")
        with pytest.raises(ValueError, match="REPRO_KERNELS"):
            kernels.refresh_tier()

    def test_numpy_demanded_but_missing_raises(self, restore_tier, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        monkeypatch.setattr(kernels, "_import_numpy", lambda: None)
        with pytest.raises(ImportError, match="demands the numpy tier"):
            kernels.refresh_tier()

    def test_numpy_version_reported_regardless_of_tier(self):
        try:
            import numpy

            expected = str(numpy.__version__)
        except ImportError:
            expected = None
        with kernels.use_tier("python"):
            assert kernels.numpy_version() == expected


class TestBlockOps:
    """Fixed-case py/np equality of every block op pair."""

    def test_partition_statuses(self):
        _np_or_skip()
        statuses = [0, 1, 2, 2, 0, 1, 1, 0, 2]
        assert blocks.partition_statuses_np(statuses) == (
            blocks.partition_statuses_py(statuses)
        )
        assert blocks.partition_statuses_py(statuses) == (
            [0, 4, 7],
            [1, 5, 6],
            3,
        )
        assert blocks.partition_statuses_np([]) == ([], [], 0)

    def test_startswith_at(self):
        _np_or_skip()
        targets = ["abcdef", "abcdef", "abcdef", "xy", "xy", ""]
        prefixes = ["abc", "cde", "", "xyz", "", ""]
        starts = [0, 2, 3, 0, 2, 0]
        expected = blocks.startswith_at_py(targets, prefixes, starts)
        assert expected == [True, True, True, False, True, True]
        assert blocks.startswith_at_np(targets, prefixes, starts) == expected

    def test_find_positions(self):
        _np_or_skip()
        targets = ["hello world", "hello world", "abc", ""]
        outputs = ["world", "xyz", "", "a"]
        expected = blocks.find_positions_py(targets, outputs)
        assert expected == [6, -1, 0, -1]
        assert blocks.find_positions_np(targets, outputs) == expected

    def test_slice_cuts(self):
        _np_or_skip()
        member_ends = [2, 4, 4, 7]
        lengths = [0, 2, 3, 4, 5, 7, 9]
        expected = blocks.slice_cuts_py(member_ends, lengths)
        assert blocks.slice_cuts_np(member_ends, lengths) == expected

    def test_slice_pieces(self):
        _np_or_skip()
        pieces = ["abcdef", "ghijkl", "mnopqr"]
        for start, end in [(0, 3), (1, 5), (2, 2), (0, 6)]:
            assert blocks.slice_pieces_np(pieces, start, end) == (
                blocks.slice_pieces_py(pieces, start, end)
            )

    def test_str_lengths(self):
        _np_or_skip()
        texts = ["", "a", "abcdef", "hello world"]
        assert blocks.str_lengths_np(texts) == blocks.str_lengths_py(texts)


class TestBitsetOps:
    MASKS = [0, 1, 0b1010, (1 << 100) | (1 << 3), (1 << 999) | 1]

    def test_mask_from_rows_duals(self):
        _np_or_skip()
        for rows in ([], [0], [0, 3, 100], list(range(0, 1500, 7))):
            assert bitset.mask_from_rows_np(rows) == bitset.mask_from_rows_py(
                rows
            )

    def test_rows_from_mask_duals(self):
        _np_or_skip()
        for mask in self.MASKS:
            assert bitset.rows_from_mask_np(mask) == bitset.rows_from_mask_py(
                mask
            )

    def test_union_masks_duals(self):
        _np_or_skip()
        assert bitset.union_masks_np(self.MASKS) == bitset.union_masks_py(
            self.MASKS
        )
        assert bitset.union_masks_np([]) == 0

    def test_popcounts_duals(self):
        _np_or_skip()
        assert bitset.popcounts_np(self.MASKS) == bitset.popcounts_py(
            self.MASKS
        )
        assert bitset.popcounts_np([]) == []

    def test_roundtrip(self):
        rows = [0, 5, 63, 64, 65, 511, 512, 2000]
        assert bitset.rows_from_mask(bitset.mask_from_rows(rows)) == rows

    def test_dispatchers_match_python_reference_on_both_tiers(self):
        rows = list(range(0, 2048, 3))
        mask = bitset.mask_from_rows_py(rows)
        for tier in ("python", "numpy"):
            if tier == "numpy" and kernels.numpy_or_none() is None:
                continue
            with kernels.use_tier(tier):
                assert bitset.mask_from_rows(rows) == mask
                assert bitset.rows_from_mask(mask) == rows
                assert bitset.union_masks([mask, 1 << 4096]) == (
                    mask | 1 << 4096
                )
                assert bitset.popcounts([mask, 0, 7]) == [len(rows), 0, 3]


class TestTierAwareWorkerTuning:
    def test_env_override_wins_on_any_tier(self, monkeypatch):
        from repro.parallel.executor import tier_min_items_per_worker

        monkeypatch.setenv("REPRO_MIN_ROWS_PER_WORKER", "10")
        with kernels.use_tier("python"):
            assert tier_min_items_per_worker() == 10

    def test_python_tier_uses_default_threshold(self, monkeypatch):
        from repro.parallel.executor import (
            DEFAULT_MIN_ITEMS_PER_WORKER,
            tier_min_items_per_worker,
        )

        monkeypatch.delenv("REPRO_MIN_ROWS_PER_WORKER", raising=False)
        with kernels.use_tier("python"):
            assert tier_min_items_per_worker() == DEFAULT_MIN_ITEMS_PER_WORKER

    def test_numpy_tier_raises_threshold(self, monkeypatch):
        from repro.parallel.executor import (
            NUMPY_MIN_ITEMS_PER_WORKER,
            tier_min_items_per_worker,
        )

        _np_or_skip()
        monkeypatch.delenv("REPRO_MIN_ROWS_PER_WORKER", raising=False)
        with kernels.use_tier("numpy"):
            assert tier_min_items_per_worker() == NUMPY_MIN_ITEMS_PER_WORKER
        assert NUMPY_MIN_ITEMS_PER_WORKER > 0

    def test_tuned_num_workers_uses_tier_threshold(self, monkeypatch):
        from repro.parallel.executor import tuned_num_workers

        monkeypatch.delenv("REPRO_MIN_ROWS_PER_WORKER", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        with kernels.use_tier("python"):
            # 600 rows: enough for 2 python-tier workers (256/worker) ...
            assert tuned_num_workers(4, 600) == 2
        if kernels.numpy_or_none() is not None:
            with kernels.use_tier("numpy"):
                # ... but below the numpy tier's 1024-per-worker break-even.
                assert tuned_num_workers(4, 600) == 1


class TestBenchTierGuards:
    def test_host_metadata_records_tier_and_numpy(self):
        from repro.perf.runner import host_metadata

        host = host_metadata()
        assert host["kernels"] in ("python", "numpy")
        assert "numpy" in host
        with kernels.use_tier("python"):
            forced = host_metadata()
        assert forced["kernels"] == "python"
        # numpy's availability is reported regardless of the active tier,
        # so a forced-fallback run stays distinguishable from a numpy-less
        # host in the payload alone.
        assert forced["numpy"] == host["numpy"]

    def test_validate_payload_flags_missing_tier(self):
        from repro.perf.runner import validate_payload

        payload = {
            "host": {"cpu_count": 1},
            "rungs": [],
        }
        problems = validate_payload(payload)
        assert any("kernel tier" in problem for problem in problems)

    def test_validate_serve_payload_flags_missing_tier(self):
        from repro.perf.serve_bench import validate_serve_payload

        problems = validate_serve_payload({"host": {"cpu_count": 1}})
        assert any("kernel tier" in problem for problem in problems)

    def test_compare_to_baseline_rejects_mixed_tiers(self):
        from repro.perf.runner import compare_to_baseline

        payload = {"host": {"kernels": "numpy"}, "rungs": []}
        baseline = {"host": {"kernels": "python"}, "rungs": []}
        problems = compare_to_baseline(payload, baseline)
        assert len(problems) == 1
        assert "not comparable" in problems[0]

    def test_compare_to_baseline_accepts_matching_tiers(self):
        from repro.perf.runner import compare_to_baseline

        payload = {"host": {"kernels": "python"}, "rungs": []}
        baseline = {"host": {"kernels": "python"}, "rungs": []}
        assert compare_to_baseline(payload, baseline) == []

    def test_compare_to_baseline_tolerates_untagged_baseline(self):
        # Baselines produced before the kernel tier existed carry no tag;
        # the comparison must not reject them (validate_payload flags the
        # missing tag separately).
        from repro.perf.runner import compare_to_baseline

        payload = {"host": {"kernels": "numpy"}, "rungs": []}
        assert compare_to_baseline(payload, {"host": {}, "rungs": []}) == []


class TestKernelsCliFlag:
    def test_cli_parser_accepts_tiers(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "--kernels",
                "python",
                "discover",
                "a.csv",
                "b.csv",
                "--source-column",
                "v",
                "--target-column",
                "v",
            ]
        )
        assert args.kernels == "python"

    def test_cli_parser_rejects_unknown_tier(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--kernels", "cuda", "discover", "a.csv", "b.csv"]
            )

    def test_perf_parser_accepts_tiers(self):
        from repro.perf.__main__ import build_parser

        args = build_parser().parse_args(["--kernels", "numpy", "--smoke"])
        assert args.kernels == "numpy"
        assert build_parser().parse_args([]).kernels == "auto"

    def test_cli_forces_tier_for_the_run(self, tmp_path):
        import os

        from repro.cli import main
        from repro.table.io import write_csv
        from repro.table.table import Table

        source = tmp_path / "source.csv"
        target = tmp_path / "target.csv"
        write_csv(Table(columns={"v": ["ab cd", "xy zw"]}), source)
        write_csv(Table(columns={"v": ["ab", "xy"]}), target)
        # The CLI writes REPRO_KERNELS itself (deliberately: spawn workers
        # must re-resolve to the pinned tier), so the test restores the
        # environment by hand — monkeypatch only undoes its own changes.
        previous = os.environ.get("REPRO_KERNELS")
        try:
            exit_code = main(
                [
                    "--kernels",
                    "python",
                    "discover",
                    str(source),
                    str(target),
                    "--source-column",
                    "v",
                    "--target-column",
                    "v",
                ]
            )
            assert exit_code == 0
            assert kernels.active_tier() == "python"
        finally:
            if previous is None:
                os.environ.pop("REPRO_KERNELS", None)
            else:
                os.environ["REPRO_KERNELS"] = previous
            kernels.refresh_tier()
