"""Unit tests for the relational substrate (repro.table)."""

from __future__ import annotations

import pytest

from repro.table.ops import equi_join, hash_join, project, rename, select
from repro.table.schema import ColumnSchema, TableSchema
from repro.table.table import Column, Table


@pytest.fixture
def people() -> Table:
    return Table(
        {
            "name": ["Alice", "Bob", "Carol"],
            "dept": ["CS", "Physics", "CS"],
        },
        name="people",
    )


class TestColumn:
    def test_values_are_strings(self):
        column = Column("x", [1, 2, 3])
        assert column.values == ("1", "2", "3")

    def test_average_length(self):
        assert Column("x", ["ab", "abcd"]).average_length() == 3.0
        assert Column("x", []).average_length() == 0.0

    def test_unique(self):
        assert Column("x", ["a", "b", "a"]).unique() == {"a", "b"}

    def test_equality_and_hash(self):
        assert Column("x", ["a"]) == Column("x", ["a"])
        assert Column("x", ["a"]) != Column("y", ["a"])
        assert hash(Column("x", ["a"])) == hash(Column("x", ["a"]))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Column("", ["a"])


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TableSchema((ColumnSchema("a"), ColumnSchema("a")))

    def test_index_of(self):
        schema = TableSchema.from_names(["a", "b"])
        assert schema.index_of("b") == 1
        with pytest.raises(KeyError):
            schema.index_of("c")

    def test_contains_and_len(self):
        schema = TableSchema.from_names(["a", "b"])
        assert "a" in schema and "z" not in schema
        assert len(schema) == 2

    def test_empty_column_name_rejected(self):
        with pytest.raises(ValueError):
            ColumnSchema("")


class TestTableConstruction:
    def test_basic_properties(self, people):
        assert people.num_rows == 3
        assert people.num_columns == 2
        assert people.column_names == ("name", "dept")
        assert len(people) == 3

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError):
            Table({"a": ["1"], "b": ["1", "2"]})

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([Column("a", ["1"]), Column("a", ["2"])])

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            Table({})

    def test_from_records(self):
        table = Table.from_records([{"a": "1", "b": "2"}, {"a": "3", "b": "4"}])
        assert table["a"].values == ("1", "3")
        assert table["b"].values == ("2", "4")

    def test_from_records_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Table.from_records([{"a": "1"}, {"b": "2"}])

    def test_from_records_empty_rejected(self):
        with pytest.raises(ValueError):
            Table.from_records([])

    def test_to_records_round_trip(self, people):
        assert Table.from_records(people.to_records()) == people


class TestTableAccess:
    def test_missing_column_raises_helpful_error(self, people):
        with pytest.raises(KeyError, match="available"):
            people.column("age")

    def test_row_access(self, people):
        row = people.row(1)
        assert row["name"] == "Bob"
        assert row.as_tuple(["dept", "name"]) == ("Physics", "Bob")

    def test_row_out_of_range(self, people):
        with pytest.raises(IndexError):
            people.row(3)

    def test_rows_iteration_order(self, people):
        assert [r["name"] for r in people.rows()] == ["Alice", "Bob", "Carol"]

    def test_contains(self, people):
        assert "name" in people and "age" not in people


class TestDerivedTables:
    def test_with_column_adds_and_replaces(self, people):
        extended = people.with_column("age", ["30", "40", "50"])
        assert extended["age"].values == ("30", "40", "50")
        replaced = extended.with_column("age", ["1", "2", "3"])
        assert replaced["age"].values == ("1", "2", "3")
        assert replaced.num_columns == 3

    def test_with_column_length_mismatch(self, people):
        with pytest.raises(ValueError):
            people.with_column("age", ["30"])

    def test_take_and_head(self, people):
        subset = people.take([2, 0])
        assert subset["name"].values == ("Carol", "Alice")
        assert people.head(2)["name"].values == ("Alice", "Bob")
        assert people.head(10).num_rows == 3

    def test_take_out_of_range(self, people):
        with pytest.raises(IndexError):
            people.take([5])

    def test_sample_is_deterministic(self, people):
        assert people.sample(2, seed=7) == people.sample(2, seed=7)
        assert people.sample(2, seed=7).num_rows == 2

    def test_with_name(self, people):
        assert people.with_name("other").name == "other"


class TestRelationalOps:
    def test_project(self, people):
        projected = project(people, ["dept"])
        assert projected.column_names == ("dept",)
        with pytest.raises(KeyError):
            project(people, ["missing"])

    def test_rename(self, people):
        renamed = rename(people, {"dept": "department"})
        assert "department" in renamed and "dept" not in renamed

    def test_select(self, people):
        selected = select(people, lambda row: row["dept"] == "CS")
        assert selected["name"].values == ("Alice", "Carol")

    def test_select_no_match_preserves_schema(self, people):
        selected = select(people, lambda row: False)
        assert selected.num_rows == 0
        assert selected.column_names == people.column_names

    def test_hash_join_matches_equal_keys(self):
        left = Table({"k": ["a", "b", "b"], "x": ["1", "2", "3"]})
        right = Table({"k": ["b", "c"], "y": ["9", "8"]})
        joined = hash_join(left, right, left_on="k", right_on="k")
        assert joined.num_rows == 2
        assert set(joined["x"].values) == {"2", "3"}
        assert set(joined["y"].values) == {"9"}

    def test_hash_join_suffixes_collisions(self):
        left = Table({"k": ["a"], "v": ["1"]})
        right = Table({"k": ["a"], "v": ["2"]})
        joined = hash_join(left, right, left_on="k", right_on="k")
        assert "v_left" in joined and "v_right" in joined

    def test_hash_join_missing_column(self):
        left = Table({"k": ["a"]})
        right = Table({"k": ["a"]})
        with pytest.raises(KeyError):
            hash_join(left, right, left_on="z", right_on="k")

    def test_equi_join_pairs(self):
        left = Table({"k": ["a", "b"]})
        right = Table({"k": ["b", "a", "a"]})
        pairs = equi_join(left, right, left_on="k", right_on="k")
        assert set(pairs) == {(0, 1), (0, 2), (1, 0)}


class TestTableIO:
    def test_csv_round_trip(self, tmp_path, people):
        from repro.table.io import read_csv, write_csv

        path = tmp_path / "people.csv"
        write_csv(people, path)
        loaded = read_csv(path)
        assert loaded == people

    def test_read_empty_file_raises(self, tmp_path):
        from repro.table.io import read_csv

        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_read_inconsistent_arity_raises(self, tmp_path):
        from repro.table.io import read_csv

        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(ValueError):
            read_csv(path)

    def test_cells_with_commas_and_quotes(self, tmp_path):
        from repro.table.io import read_csv, write_csv

        table = Table({"name": ['Rafiei, "Davood"', "O'Neil, Jack"]})
        path = tmp_path / "quoted.csv"
        write_csv(table, path)
        assert read_csv(path) == table


class TestTableReadErrors:
    def test_ragged_row_error_carries_file_and_line(self, tmp_path):
        from repro.table.io import TableReadError, read_csv

        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(
            TableReadError, match=r"ragged\.csv:3: expected 2 cells, got 1"
        ):
            read_csv(path)

    def test_invalid_utf8_error_carries_file_and_byte(self, tmp_path):
        from repro.table.io import TableReadError, read_csv

        path = tmp_path / "binary.csv"
        path.write_bytes(b"a,b\n\xff\xfe,2\n")
        with pytest.raises(TableReadError, match=r"binary\.csv: not valid UTF-8"):
            read_csv(path)

    def test_empty_file_error_is_typed(self, tmp_path):
        from repro.table.io import TableReadError, read_csv

        path = tmp_path / "empty.csv"
        path.write_text("")
        # TableReadError subclasses ValueError, so pre-typed callers that
        # catch ValueError (see TestTableIO above) keep working.
        with pytest.raises(TableReadError, match="expected a header row"):
            read_csv(path)
        assert issubclass(TableReadError, ValueError)

    def test_lenient_mode_substitutes_replacement_characters(self, tmp_path):
        from repro.table.io import read_csv

        path = tmp_path / "binary.csv"
        path.write_bytes(b"a,b\nx\xff,2\n")
        table = read_csv(path, errors="replace")
        assert table["a"].values == ("x�",)
        assert table["b"].values == ("2",)

    def test_lenient_mode_coerces_ragged_rows(self, tmp_path):
        from repro.table.io import read_csv

        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n2,3,4\n")
        table = read_csv(path, errors="replace")
        # Short rows pad with empty cells, long rows truncate.
        assert table["a"].values == ("1", "2")
        assert table["b"].values == ("", "3")

    def test_unknown_errors_mode_rejected(self, tmp_path):
        from repro.table.io import read_csv

        with pytest.raises(ValueError, match="strict"):
            read_csv(tmp_path / "x.csv", errors="ignore")
