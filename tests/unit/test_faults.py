"""Chaos tests: injected crashes, hangs and exceptions inside real workers.

These tests set ``REPRO_FAULT_INJECT`` and run real process pools, proving
the executor's documented recovery contract end-to-end: a faulty pool still
produces the byte-identical merged result (serial fallback), and with the
fallback disabled the failure surfaces as the typed taxonomy of
``repro.parallel.errors``.  CI runs this module under both ``fork`` and
``spawn`` start methods (the ``chaos`` job).
"""

from __future__ import annotations

import time

import pytest

from repro.parallel import ShardError, ShardTimeoutError, WorkerCrashError
from repro.parallel.executor import ShardedExecutor, shard_plan, worker_state
from repro.testing.faults import (
    FAULT_ENV,
    FaultInjected,
    FaultSpec,
    parse_fault_spec,
)

VALUES = list(range(40))


def _shard_sum(start: int, stop: int) -> int:
    """Sum the shared value list over one shard (module-level to pickle)."""
    values = worker_state()
    return sum(values[start:stop])


def _expected_sums(num_workers: int) -> list[int]:
    """What a fault-free run returns: one sum per shard of the plan.

    Computed analytically (not with a second pool) so the byte-identical
    assertion cannot be fooled by a systematic executor bug.
    """
    return [
        sum(VALUES[start:stop])
        for start, stop in shard_plan(len(VALUES), num_workers)
    ]


class TestParseFaultSpec:
    def test_bare_kinds(self):
        assert parse_fault_spec("crash") == FaultSpec(kind="crash")
        assert parse_fault_spec("hang") == FaultSpec(kind="hang")
        assert parse_fault_spec("raise") == FaultSpec(kind="raise")

    def test_options(self):
        spec = parse_fault_spec("crash:shard=2")
        assert spec == FaultSpec(kind="crash", shard=2)
        spec = parse_fault_spec("hang:seconds=0.25:where=any")
        assert spec == FaultSpec(kind="hang", seconds=0.25, where="any")
        spec = parse_fault_spec("raise:shard=0:where=inline")
        assert spec == FaultSpec(kind="raise", shard=0, where="inline")

    def test_whitespace_tolerated(self):
        assert parse_fault_spec("  crash : shard=1 ") == FaultSpec(
            kind="crash", shard=1
        )

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "explode",
            "crash:shard=two",
            "crash:where=everywhere",
            "crash:shard",
            "hang:seconds=soon",
            "crash:color=red",
            "crash:shard=-1",
            "hang:seconds=-5",
        ],
    )
    def test_malformed_specs_rejected(self, text):
        # A typo in a chaos-job configuration must fail loudly, not
        # silently inject nothing.
        with pytest.raises(ValueError):
            parse_fault_spec(text)

    def test_matches_filters_by_shard_and_site(self):
        spec = FaultSpec(kind="raise", shard=2, where="pool")
        assert spec.matches(2, in_pool_worker=True)
        assert not spec.matches(1, in_pool_worker=True)
        assert not spec.matches(2, in_pool_worker=False)
        everywhere = FaultSpec(kind="raise", where="any")
        assert everywhere.matches(0, in_pool_worker=True)
        assert everywhere.matches(0, in_pool_worker=False)
        inline_only = FaultSpec(kind="raise", where="inline")
        assert not inline_only.matches(0, in_pool_worker=True)
        assert inline_only.matches(0, in_pool_worker=False)


class TestCrashRecovery:
    def test_crashed_shard_recovers_byte_identical(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:shard=1")
        with ShardedExecutor(VALUES, num_workers=2) as executor:
            sums = executor.map_shards(_shard_sum, len(VALUES))
            assert executor.degraded
        assert sums == _expected_sums(2)

    def test_all_shards_crashing_recover_byte_identical(self, monkeypatch):
        # Every pool attempt dies; every shard must come back through the
        # serial inline fallback (where the pool-targeted fault never fires).
        monkeypatch.setenv(FAULT_ENV, "crash")
        with ShardedExecutor(
            VALUES, num_workers=2, max_shard_retries=0
        ) as executor:
            sums = executor.map_shards(_shard_sum, len(VALUES))
            assert executor.degraded
        assert sums == _expected_sums(2)

    def test_crash_without_fallback_raises_typed_error(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "crash:shard=0")
        with ShardedExecutor(
            VALUES, num_workers=2, max_shard_retries=0, serial_fallback=False
        ) as executor:
            with pytest.raises(WorkerCrashError) as excinfo:
                executor.map_shards(_shard_sum, len(VALUES))
        error = excinfo.value
        assert error.shard == shard_plan(len(VALUES), 2)[0]
        assert error.attempts >= 1


class TestHangRecovery:
    def test_hung_shards_fall_back_within_the_map_deadline(self, monkeypatch):
        # Every shard hangs, but task_timeout bounds the *whole map*: one
        # deadline at submission, so the run finishes in ~timeout, not
        # num_shards * timeout, and the fallback recomputes every shard.
        monkeypatch.setenv(FAULT_ENV, "hang:seconds=30")
        started = time.monotonic()
        with ShardedExecutor(
            VALUES, num_workers=2, task_timeout=0.5
        ) as executor:
            sums = executor.map_shards(_shard_sum, len(VALUES))
            assert executor.degraded
        elapsed = time.monotonic() - started
        assert sums == _expected_sums(2)
        num_shards = len(shard_plan(len(VALUES), 2))
        assert elapsed < 0.5 * num_shards / 2
        assert elapsed < 5.0

    def test_hang_without_fallback_raises_timeout(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "hang:seconds=30")
        with ShardedExecutor(
            VALUES, num_workers=2, task_timeout=0.3, serial_fallback=False
        ) as executor:
            with pytest.raises(ShardTimeoutError):
                executor.map_shards(_shard_sum, len(VALUES))


class TestRaiseRecovery:
    def test_raising_shards_retry_then_recover_inline(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "raise")
        with ShardedExecutor(
            VALUES, num_workers=2, max_shard_retries=1, retry_backoff_s=0.0
        ) as executor:
            sums = executor.map_shards(_shard_sum, len(VALUES))
            assert executor.degraded
        assert sums == _expected_sums(2)

    def test_raise_everywhere_surfaces_shard_error_with_cause(self, monkeypatch):
        # where=any also poisons the inline fallback, so recovery is
        # impossible and the terminal ShardError must carry the injected
        # exception as its cause.
        monkeypatch.setenv(FAULT_ENV, "raise:shard=0:where=any")
        with ShardedExecutor(
            VALUES, num_workers=2, max_shard_retries=0
        ) as executor:
            with pytest.raises(ShardError) as excinfo:
                executor.map_shards(_shard_sum, len(VALUES))
        assert isinstance(excinfo.value.cause, FaultInjected)
        assert isinstance(excinfo.value.__cause__, FaultInjected)

    def test_inline_targeted_fault_leaves_the_pool_unharmed(self, monkeypatch):
        # The converse of the recovery tests: a where=inline fault never
        # fires in pool workers, so a healthy pool run is not degraded.
        monkeypatch.setenv(FAULT_ENV, "raise:where=inline")
        with ShardedExecutor(VALUES, num_workers=2) as executor:
            sums = executor.map_shards(_shard_sum, len(VALUES))
            assert not executor.degraded
        assert sums == _expected_sums(2)


class TestNoInjection:
    def test_unset_env_means_clean_run(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        with ShardedExecutor(VALUES, num_workers=2) as executor:
            sums = executor.map_shards(_shard_sum, len(VALUES))
            assert not executor.degraded
        assert sums == _expected_sums(2)


class TestEngineRecovery:
    def test_discovery_recovers_from_a_worker_crash(
        self, monkeypatch, name_initial_pairs
    ):
        # End-to-end through the real engines: discovery with a crashing
        # coverage worker must equal the serial run exactly.  The serial
        # baseline runs under the same fault spec — where=pool (the default)
        # never fires without a pool, which is precisely the property that
        # makes the fallback provable.
        from repro.core.config import DiscoveryConfig
        from repro.core.discovery import TransformationDiscovery

        monkeypatch.setenv(FAULT_ENV, "crash:shard=0")
        monkeypatch.setenv("REPRO_MIN_ROWS_PER_WORKER", "0")
        serial = TransformationDiscovery(
            DiscoveryConfig(num_workers=1)
        ).discover_from_strings(name_initial_pairs)
        sharded = TransformationDiscovery(
            DiscoveryConfig(num_workers=2)
        ).discover_from_strings(name_initial_pairs)
        assert [
            (c.transformation, c.covered_rows) for c in sharded.cover
        ] == [(c.transformation, c.covered_rows) for c in serial.cover]
        assert sharded.top_coverage == serial.top_coverage
