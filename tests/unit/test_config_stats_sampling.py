"""Unit tests for DiscoveryConfig, DiscoveryStats, and the sampling analysis."""

from __future__ import annotations

import math

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.sampling import (
    autojoin_expected_covered_subsets,
    autojoin_subset_success_probability,
    minimum_sample_size,
    probability_covered_once,
    probability_discovered,
    probability_not_covered,
    required_subsets_for_autojoin,
)
from repro.core.stats import DiscoveryStats


class TestDiscoveryConfig:
    def test_defaults_follow_paper(self):
        config = DiscoveryConfig()
        assert config.max_placeholders == 3
        assert "TwoCharSplitSubstr" not in config.enabled_units
        assert config.min_support == 1

    def test_spreadsheet_preset_uses_four_placeholders(self):
        assert DiscoveryConfig.spreadsheet().max_placeholders == 4

    def test_open_data_preset_samples_and_thresholds(self):
        config = DiscoveryConfig.open_data(360_125)
        assert config.sample_size == 3000
        assert config.min_support == max(2, int(0.01 * 3000))

    def test_open_data_preset_with_small_input(self):
        config = DiscoveryConfig.open_data(100)
        assert config.sample_size == 100

    def test_relative_support(self):
        config = DiscoveryConfig().with_relative_support(0.05, 200)
        assert config.min_support == 10

    def test_relative_support_validation(self):
        with pytest.raises(ValueError):
            DiscoveryConfig().with_relative_support(1.5, 100)

    def test_replace_returns_modified_copy(self):
        config = DiscoveryConfig()
        other = config.replace(max_placeholders=5)
        assert other.max_placeholders == 5
        assert config.max_placeholders == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_placeholders": 0},
            {"min_placeholder_length": 0},
            {"min_support": 0},
            {"sample_size": -1},
            {"top_k": 0},
            {"enabled_units": ("Literal", "Bogus")},
            {"enabled_units": ("Substr",)},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DiscoveryConfig(**kwargs)


class TestDiscoveryStats:
    def test_duplicate_ratio(self):
        stats = DiscoveryStats(
            generated_transformations=100, unique_transformations=40
        )
        assert stats.duplicate_transformations == 60
        assert stats.duplicate_ratio == pytest.approx(0.6)

    def test_duplicate_ratio_of_empty_run(self):
        assert DiscoveryStats().duplicate_ratio == 0.0

    def test_cache_hit_ratio(self):
        stats = DiscoveryStats(cache_hits=90, cache_misses=10)
        assert stats.cache_hit_ratio == pytest.approx(0.9)
        assert DiscoveryStats().cache_hit_ratio == 0.0

    def test_merge_accumulates(self):
        left = DiscoveryStats(
            num_pairs=2,
            generated_transformations=10,
            unique_transformations=5,
            cache_hits=3,
            cache_misses=1,
            stage_seconds={"a": 1.0},
        )
        right = DiscoveryStats(
            num_pairs=3,
            generated_transformations=20,
            unique_transformations=10,
            cache_hits=1,
            cache_misses=1,
            stage_seconds={"a": 0.5, "b": 2.0},
        )
        merged = left.merge(right)
        assert merged.num_pairs == 5
        assert merged.generated_transformations == 30
        assert merged.stage_seconds == {"a": 1.5, "b": 2.0}

    def test_as_dict_contains_stage_times(self):
        stats = DiscoveryStats(stage_seconds={"unit_extraction": 0.25})
        flattened = stats.as_dict()
        assert flattened["seconds_unit_extraction"] == 0.25
        assert flattened["total_seconds"] == 0.25


class TestSamplingAnalysis:
    def test_probabilities_sum_to_at_most_one(self):
        for coverage in [0.05, 0.3, 0.7]:
            for size in [1, 5, 50, 200]:
                p0 = probability_not_covered(coverage, size)
                p1 = probability_covered_once(coverage, size)
                assert 0.0 <= p0 <= 1.0
                assert 0.0 <= p1 <= 1.0
                assert p0 + p1 <= 1.0 + 1e-12

    def test_paper_example_five_percent_coverage_sample_100(self):
        """Section 5.3: q=0.05, s=100 gives ~0.96 discovery probability."""
        probability = probability_discovered(0.05, 100)
        assert probability == pytest.approx(0.96, abs=0.01)

    def test_paper_example_autojoin_half_coverage_subset_5(self):
        """Section 3.2: q=0.5, s=5 needs 32 subsets for an expectation of 1."""
        assert autojoin_subset_success_probability(0.5, 5) == pytest.approx(0.03125)
        assert required_subsets_for_autojoin(0.5, 5) == 32

    def test_paper_example_autojoin_five_percent_subset_2(self):
        """Section 5.3: q=0.05, s=2 needs 400 subsets."""
        assert required_subsets_for_autojoin(0.05, 2) == 400

    def test_expected_covered_subsets_scales_linearly(self):
        single = autojoin_expected_covered_subsets(0.2, 2, 1)
        many = autojoin_expected_covered_subsets(0.2, 2, 50)
        assert many == pytest.approx(50 * single)

    def test_discovery_probability_monotone_in_sample_size(self):
        values = [probability_discovered(0.1, s) for s in (5, 20, 80, 320)]
        assert values == sorted(values)

    def test_minimum_sample_size(self):
        size = minimum_sample_size(0.05, 0.95)
        assert probability_discovered(0.05, size) >= 0.95
        assert probability_discovered(0.05, size - 1) < 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            probability_discovered(1.5, 10)
        with pytest.raises(ValueError):
            probability_discovered(0.5, -1)
        with pytest.raises(ValueError):
            required_subsets_for_autojoin(0.0, 2)
        with pytest.raises(ValueError):
            minimum_sample_size(0.5, 1.5)

    def test_zero_coverage_never_discovered(self):
        assert probability_discovered(0.0, 1000) == 0.0

    def test_full_coverage_discovered_with_two_rows(self):
        assert probability_discovered(1.0, 2) == 1.0
        assert math.isclose(probability_discovered(1.0, 1), 0.0)
