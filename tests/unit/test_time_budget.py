"""Tests for resource-bounded discovery (``DiscoveryConfig.time_budget_s``).

The budget contract: discovery under a wall-clock budget returns a *valid*
partial result (the best cover of the rows processed in time, never a
corrupt or truncated structure), records the cut in ``DiscoveryStats``
(``budget_exhausted`` / ``budget_stage`` / ``rows_fully_processed``), and
carries that provenance into the serialized model.  Old models without the
new config fields keep loading.
"""

from __future__ import annotations

import json
from time import monotonic

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.coverage import CoverageComputer
from repro.core.discovery import TransformationDiscovery
from repro.core.pairs import pairs_from_strings
from repro.core.stats import DiscoveryStats
from repro.core.transformation import Transformation
from repro.core.units import Split
from repro.model import TransformationModel


class TestBudgetedDiscovery:
    def test_tiny_budget_degrades_to_valid_partial_result(
        self, name_initial_pairs
    ):
        engine = TransformationDiscovery(DiscoveryConfig(time_budget_s=1e-9))
        result = engine.discover_from_strings(name_initial_pairs)
        stats = result.stats
        assert stats.budget_exhausted
        assert stats.budget_stage == "skeleton_generation"
        # The first pair always runs (an exhausted budget still yields
        # progress), the rest were cut.
        assert 1 <= stats.rows_fully_processed < len(name_initial_pairs)
        # The partial result is structurally valid: transformations were
        # generated from the processed prefix and coverage is consistent.
        assert result.transformations
        assert all(c.coverage >= 1 for c in result.cover)
        assert 0.0 < result.top_coverage <= 1.0

    def test_generous_budget_is_identical_to_unbudgeted(
        self, name_initial_pairs
    ):
        unbudgeted = TransformationDiscovery(
            DiscoveryConfig()
        ).discover_from_strings(name_initial_pairs)
        budgeted = TransformationDiscovery(
            DiscoveryConfig(time_budget_s=3600.0)
        ).discover_from_strings(name_initial_pairs)
        assert not budgeted.stats.budget_exhausted
        assert [
            (c.transformation, c.covered_rows) for c in budgeted.cover
        ] == [(c.transformation, c.covered_rows) for c in unbudgeted.cover]
        assert budgeted.top_coverage == unbudgeted.top_coverage

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            DiscoveryConfig(time_budget_s=-1.0)
        with pytest.raises(ValueError):
            DiscoveryConfig(task_timeout_s=-0.5)
        with pytest.raises(ValueError):
            DiscoveryConfig(shard_retries=-1)


class TestBudgetedCoverageWalk:
    def test_expired_deadline_processes_exactly_the_first_block(self):
        # 1500 rows span two 1024-row walk blocks; an already expired
        # deadline must stop after block one — but never before it, so even
        # a hopeless budget yields progress.
        pairs = pairs_from_strings(
            [(f"a{i},b{i}", f"b{i}") for i in range(1500)]
        )
        transformation = Transformation([Split(",", 2)])
        computer = CoverageComputer(pairs)
        results = computer.coverage_of_all(
            [transformation], batched=True, deadline=monotonic() - 1.0
        )
        assert computer.budget_exhausted
        assert computer.rows_processed == 1024
        # The processed prefix is byte-identical to an unbudgeted run's
        # prefix: exactly the first 1024 rows are covered.
        assert results[0].covered_rows == frozenset(range(1024))

    def test_unexpired_deadline_is_a_no_op(self):
        pairs = pairs_from_strings([(f"a{i},b{i}", f"b{i}") for i in range(50)])
        transformation = Transformation([Split(",", 2)])
        computer = CoverageComputer(pairs)
        results = computer.coverage_of_all(
            [transformation], batched=True, deadline=monotonic() + 3600.0
        )
        assert not computer.budget_exhausted
        assert computer.rows_processed == len(pairs)
        assert results[0].covered_rows == frozenset(range(50))


class TestBudgetStats:
    def test_as_dict_carries_budget_fields_only_when_exhausted(self):
        clean = DiscoveryStats()
        assert clean.as_dict()["budget_exhausted"] is False
        assert "budget_stage" not in clean.as_dict()
        cut = DiscoveryStats(
            budget_exhausted=True,
            budget_stage="skeleton_generation",
            rows_fully_processed=7,
        )
        payload = cut.as_dict()
        assert payload["budget_exhausted"] is True
        assert payload["budget_stage"] == "skeleton_generation"
        assert payload["rows_fully_processed"] == 7

    def test_merge_propagates_exhaustion(self):
        clean = DiscoveryStats()
        cut = DiscoveryStats(
            budget_exhausted=True, budget_stage="s", rows_fully_processed=3
        )
        merged = clean.merge(cut)
        assert merged.budget_exhausted
        assert merged.budget_stage == "s"
        assert merged.rows_fully_processed == 3


class TestModelProvenance:
    def test_budget_exhaustion_survives_save_and_load(
        self, name_initial_pairs, tmp_path
    ):
        engine = TransformationDiscovery(DiscoveryConfig(time_budget_s=1e-9))
        result = engine.discover_from_strings(name_initial_pairs)
        model = TransformationModel.from_discovery(
            result, config=engine.config, min_support=0.05
        )
        assert model.stats["budget_exhausted"] is True
        assert model.stats["budget_stage"] == "skeleton_generation"
        path = model.save(tmp_path / "budgeted.json")
        loaded = TransformationModel.load(path)
        assert loaded.stats["budget_exhausted"] is True
        assert loaded.stats["rows_fully_processed"] == result.stats.rows_fully_processed

    def test_pre_budget_models_still_load(self, name_initial_pairs, tmp_path):
        # A model written before the robustness fields existed has neither
        # the new config keys nor the budget stats — schema version 1 must
        # keep loading it, with the new fields at their defaults.
        engine = TransformationDiscovery()
        result = engine.discover_from_strings(name_initial_pairs)
        model = TransformationModel.from_discovery(
            result, config=engine.config, min_support=0.05
        )
        payload = model.to_dict()
        for key in (
            "time_budget_s",
            "task_timeout_s",
            "shard_retries",
            "serial_fallback",
        ):
            del payload["discovery_config"][key]
        payload["stats"].pop("budget_exhausted", None)
        loaded = TransformationModel.from_dict(
            json.loads(json.dumps(payload))
        )
        config = loaded.discovery_config
        assert config.time_budget_s == 0.0
        assert config.task_timeout_s == 0.0
        assert config.shard_retries == 2
        assert config.serial_fallback is True
        assert loaded.num_transformations == model.num_transformations
