"""Unit tests for repro.utils (text, timing, validation)."""

from __future__ import annotations

import time

import pytest

from repro.utils.text import (
    all_ngrams,
    common_substrings,
    is_separator,
    longest_common_substring,
    normalize_whitespace,
    split_on_separators,
    tokenize,
)
from repro.utils.timing import StageTimer, Timer
from repro.utils.validation import (
    require_non_empty,
    require_positive,
    require_range,
    require_type,
)


class TestTokenize:
    def test_splits_on_punctuation_and_space(self):
        assert tokenize("Rafiei, Davood") == ["Rafiei", "Davood"]
        assert tokenize("(780) 432-3636") == ["780", "432", "3636"]

    def test_empty_and_separator_only(self):
        assert tokenize("") == []
        assert tokenize("  ,. ") == []

    def test_single_token(self):
        assert tokenize("hello") == ["hello"]


class TestSplitOnSeparators:
    def test_alternating_pieces(self):
        assert split_on_separators("a, b") == [("a", False), (", ", True), ("b", False)]

    def test_round_trip(self):
        for text in ["a, b", "  leading", "trailing  ", "no-seps-here!", ""]:
            assert "".join(piece for piece, _ in split_on_separators(text)) == text

    def test_is_separator(self):
        assert is_separator(" ") and is_separator(",") and is_separator(".")
        assert not is_separator("a") and not is_separator("1")


class TestNormalizeWhitespace:
    def test_collapses_runs(self):
        assert normalize_whitespace("  a   b\t c ") == "a b c"


class TestNgrams:
    def test_all_ngrams(self):
        assert list(all_ngrams("abcd", 2)) == ["ab", "bc", "cd"]
        assert list(all_ngrams("ab", 3)) == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(all_ngrams("abc", 0))


class TestCommonSubstrings:
    def test_finds_shared_blocks(self):
        shared = common_substrings("bowling, michael", "michael.bowling")
        assert "michael" in shared
        assert "bowling" in shared
        assert "michael.bowling" not in shared

    def test_min_length(self):
        shared = common_substrings("abcdef", "abc xyz", min_length=3)
        assert "abc" in shared
        assert "ab" not in shared

    def test_disjoint_strings(self):
        assert common_substrings("abc", "xyz") == set()


class TestLongestCommonSubstring:
    def test_basic(self):
        assert longest_common_substring("bowling, michael", "michael.b") == "michael"

    def test_empty_inputs(self):
        assert longest_common_substring("", "abc") == ""
        assert longest_common_substring("abc", "") == ""

    def test_whole_string(self):
        assert longest_common_substring("abc", "abc") == "abc"


class TestTimers:
    def test_timer_accumulates(self):
        timer = Timer()
        timer.start()
        time.sleep(0.01)
        elapsed = timer.stop()
        assert elapsed > 0
        assert timer.elapsed >= elapsed

    def test_timer_stop_without_start(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_timer_reset(self):
        timer = Timer()
        timer.start()
        timer.stop()
        timer.reset()
        assert timer.elapsed == 0.0

    def test_stage_timer_accumulates_per_stage(self):
        timer = StageTimer()
        with timer.stage("a"):
            time.sleep(0.005)
        with timer.stage("a"):
            time.sleep(0.005)
        with timer.stage("b"):
            pass
        stages = timer.as_dict()
        assert set(stages) == {"a", "b"}
        assert stages["a"] > stages["b"]
        assert timer.total() == pytest.approx(sum(stages.values()))

    def test_stage_timer_manual_add(self):
        timer = StageTimer()
        timer.add("x", 1.5)
        timer.add("x", 0.5)
        assert timer.as_dict()["x"] == 2.0


class TestValidation:
    def test_require_type(self):
        require_type("x", str, "value")
        with pytest.raises(TypeError):
            require_type(1, str, "value")
        with pytest.raises(TypeError):
            require_type(1.0, (str, int), "value")

    def test_require_positive(self):
        require_positive(1, "n")
        with pytest.raises(ValueError):
            require_positive(0, "n")

    def test_require_non_empty(self):
        require_non_empty([1], "items")
        with pytest.raises(ValueError):
            require_non_empty([], "items")

    def test_require_range(self):
        require_range(0.5, 0.0, 1.0, "fraction")
        with pytest.raises(ValueError):
            require_range(1.5, 0.0, 1.0, "fraction")
