"""Unit tests for the shared-index executor (repro.parallel.executor)."""

from __future__ import annotations

import os

import pytest

from repro.parallel.executor import (
    DEFAULT_MIN_ITEMS_PER_WORKER,
    ShardedExecutor,
    default_start_method,
    env_default_workers,
    env_min_items_per_worker,
    map_sharded,
    resolve_num_workers,
    shard_plan,
    tuned_num_workers,
    worker_state,
)


def _shard_sum(start: int, stop: int) -> int:
    """Sum the shared value list over one shard (must be module-level to pickle)."""
    values = worker_state()
    return sum(values[start:stop])


def _shard_range(start: int, stop: int) -> list[int]:
    return list(range(start, stop))


def _shard_boom(start: int, stop: int) -> int:
    raise ValueError(f"boom in {start}:{stop}")


def _shard_nested_sum(start: int, stop: int) -> int:
    """Run a second, inline executor over different state mid-shard."""
    outer = worker_state()
    with ShardedExecutor([100, 200], num_workers=1) as inner:
        inner_sums = inner.map_shards(_shard_sum, 2)
    # The inner executor must restore this (outer) shard's state on exit.
    return sum(inner_sums) + sum(outer[start:stop])


class TestResolveNumWorkers:
    def test_positive_is_literal(self):
        assert resolve_num_workers(1) == 1
        assert resolve_num_workers(7) == 7

    def test_zero_resolves_to_cpu_count(self):
        # The regression contract of the `num_workers=0` knob.
        assert resolve_num_workers(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_num_workers(-1)


class TestEnvDefaultWorkers:
    def test_unset_means_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
        assert env_default_workers() == 1
        assert env_default_workers(default=3) == 3

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "4")
        assert env_default_workers() == 4

    def test_bad_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "two")
        with pytest.raises(ValueError):
            env_default_workers()
        monkeypatch.setenv("REPRO_NUM_WORKERS", "-2")
        with pytest.raises(ValueError):
            env_default_workers()


class TestDefaultStartMethod:
    def test_prefers_fork_where_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        import multiprocessing

        expected = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        assert default_start_method() == expected

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert default_start_method() == "spawn"

    def test_unknown_override_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "teleport")
        with pytest.raises(ValueError):
            default_start_method()


class TestShardPlan:
    @pytest.mark.parametrize("num_items", [0, 1, 2, 7, 100, 1001])
    @pytest.mark.parametrize("num_workers", [1, 2, 3, 8])
    def test_shards_are_contiguous_ascending_and_exhaustive(
        self, num_items, num_workers
    ):
        shards = shard_plan(num_items, num_workers)
        expected_start = 0
        for start, stop in shards:
            assert start == expected_start
            assert stop > start
            expected_start = stop
        assert expected_start == num_items

    def test_guided_sizing_decreases(self):
        sizes = [stop - start for start, stop in shard_plan(10000, 4)]
        assert sizes[0] == 10000 // 8
        assert sizes == sorted(sizes, reverse=True)

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            shard_plan(-1, 2)
        with pytest.raises(ValueError):
            shard_plan(10, 0)


class TestShardedExecutor:
    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            ShardedExecutor(None, num_workers=0)

    def test_must_be_entered_before_use(self):
        executor = ShardedExecutor([1, 2, 3], num_workers=2)
        with pytest.raises(RuntimeError):
            executor.map_shards(_shard_sum, 3)

    def test_workers_see_shared_state(self):
        values = list(range(100))
        with ShardedExecutor(values, num_workers=2) as executor:
            shard_sums = executor.map_shards(_shard_sum, len(values))
        assert sum(shard_sums) == sum(values)

    def test_results_come_back_in_shard_order(self):
        with ShardedExecutor(None, num_workers=3) as executor:
            shard_results = executor.map_shards(_shard_range, 57)
        flattened = [item for shard in shard_results for item in shard]
        assert flattened == list(range(57))

    def test_map_sharded_one_shot(self):
        values = list(range(40))
        shard_sums = map_sharded(values, _shard_sum, len(values), num_workers=2)
        assert sum(shard_sums) == sum(values)

    def test_worker_state_outside_pool_raises(self):
        with pytest.raises(RuntimeError):
            worker_state()

    def test_single_worker_runs_inline_without_pool(self):
        # The small-input fast path: one worker spawns no pool at all — the
        # shards run in-process against the same shared state.
        values = list(range(30))
        executor = ShardedExecutor(values, num_workers=1)
        with executor:
            assert executor._pool is None
            shard_sums = executor.map_shards(_shard_sum, len(values))
        assert sum(shard_sums) == sum(values)

    def test_inline_executor_restores_outer_state(self):
        with ShardedExecutor([1], num_workers=1) as executor:
            executor.map_shards(_shard_sum, 1)
        # The state installed for the inline run must not leak.
        with pytest.raises(RuntimeError):
            worker_state()

    def test_inline_state_restored_after_worker_exception(self):
        # The save/restore is try/finally — a raising worker must not leave
        # its shard's state installed as the process-global worker state.
        from repro.parallel import ShardError

        with ShardedExecutor([1, 2], num_workers=1) as executor:
            with pytest.raises(ShardError) as excinfo:
                executor.map_shards(_shard_boom, 2)
        assert isinstance(excinfo.value.__cause__, ValueError)
        with pytest.raises(RuntimeError):
            worker_state()

    def test_nested_inline_executors_restore_outer_state(self):
        values = [1, 2, 3]
        with ShardedExecutor(values, num_workers=1) as executor:
            shard_sums = executor.map_shards(_shard_nested_sum, len(values))
        # Every shard saw the inner sum (300) plus its own slice of the
        # *outer* state — proof the nesting restored state between shards.
        assert sum(shard_sums) == 300 * len(shard_sums) + sum(values)
        with pytest.raises(RuntimeError):
            worker_state()

    @pytest.mark.parametrize("num_workers", [1, 2])
    def test_executor_is_single_use(self, num_workers):
        # Both the inline and the pool-backed executor refuse reuse after
        # exit: the pool is gone (or terminated, if the run degraded), so
        # silently re-entering would rebuild state the caller thinks is
        # shared.
        values = list(range(10))
        executor = ShardedExecutor(values, num_workers=num_workers)
        with executor:
            executor.map_shards(_shard_sum, len(values))
        with pytest.raises(RuntimeError, match="single-use"):
            executor.__enter__()
        with pytest.raises(RuntimeError):
            executor.map_shards(_shard_sum, len(values))

    def test_reentering_an_entered_executor_rejected(self):
        with ShardedExecutor(None, num_workers=1) as executor:
            with pytest.raises(RuntimeError):
                executor.__enter__()


class TestTunedNumWorkers:
    def test_disabled_threshold_only_clamps_to_items(self):
        assert tuned_num_workers(4, 2, min_items_per_worker=0) == 2
        assert tuned_num_workers(4, 100, min_items_per_worker=0) == 4
        assert tuned_num_workers(1, 100, min_items_per_worker=0) == 1

    def test_small_inputs_scale_down(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        # 100 items at 8 workers is 12.5 rows each — below a threshold of
        # 50 the pool shrinks to items // threshold.
        assert tuned_num_workers(8, 100, min_items_per_worker=50) == 2
        assert tuned_num_workers(8, 49, min_items_per_worker=50) == 1
        # Plenty of work per worker: the request stands.
        assert tuned_num_workers(8, 1000, min_items_per_worker=50) == 8

    def test_single_core_host_goes_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert tuned_num_workers(8, 10**6, min_items_per_worker=1) == 1

    def test_default_threshold_comes_from_env(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.delenv("REPRO_MIN_ROWS_PER_WORKER", raising=False)
        assert env_min_items_per_worker() == DEFAULT_MIN_ITEMS_PER_WORKER
        monkeypatch.setenv("REPRO_MIN_ROWS_PER_WORKER", "10")
        assert env_min_items_per_worker() == 10
        assert tuned_num_workers(4, 20) == 2
        monkeypatch.setenv("REPRO_MIN_ROWS_PER_WORKER", "0")
        assert tuned_num_workers(4, 20) == 4

    def test_bad_env_threshold_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MIN_ROWS_PER_WORKER", "many")
        with pytest.raises(ValueError):
            env_min_items_per_worker()
        monkeypatch.setenv("REPRO_MIN_ROWS_PER_WORKER", "-5")
        with pytest.raises(ValueError):
            env_min_items_per_worker()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            tuned_num_workers(-1, 10)
