"""Unit tests for the shared-index executor (repro.parallel.executor)."""

from __future__ import annotations

import os

import pytest

from repro.parallel.executor import (
    DEFAULT_MIN_ITEMS_PER_WORKER,
    ShardedExecutor,
    default_start_method,
    env_default_workers,
    env_min_items_per_worker,
    map_sharded,
    resolve_num_workers,
    shard_plan,
    tuned_num_workers,
    worker_state,
)


def _shard_sum(start: int, stop: int) -> int:
    """Sum the shared value list over one shard (must be module-level to pickle)."""
    values = worker_state()
    return sum(values[start:stop])


def _shard_range(start: int, stop: int) -> list[int]:
    return list(range(start, stop))


class TestResolveNumWorkers:
    def test_positive_is_literal(self):
        assert resolve_num_workers(1) == 1
        assert resolve_num_workers(7) == 7

    def test_zero_resolves_to_cpu_count(self):
        # The regression contract of the `num_workers=0` knob.
        assert resolve_num_workers(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_num_workers(-1)


class TestEnvDefaultWorkers:
    def test_unset_means_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_WORKERS", raising=False)
        assert env_default_workers() == 1
        assert env_default_workers(default=3) == 3

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "4")
        assert env_default_workers() == 4

    def test_bad_values_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "two")
        with pytest.raises(ValueError):
            env_default_workers()
        monkeypatch.setenv("REPRO_NUM_WORKERS", "-2")
        with pytest.raises(ValueError):
            env_default_workers()


class TestDefaultStartMethod:
    def test_prefers_fork_where_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_START_METHOD", raising=False)
        import multiprocessing

        expected = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        assert default_start_method() == expected

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        assert default_start_method() == "spawn"

    def test_unknown_override_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "teleport")
        with pytest.raises(ValueError):
            default_start_method()


class TestShardPlan:
    @pytest.mark.parametrize("num_items", [0, 1, 2, 7, 100, 1001])
    @pytest.mark.parametrize("num_workers", [1, 2, 3, 8])
    def test_shards_are_contiguous_ascending_and_exhaustive(
        self, num_items, num_workers
    ):
        shards = shard_plan(num_items, num_workers)
        expected_start = 0
        for start, stop in shards:
            assert start == expected_start
            assert stop > start
            expected_start = stop
        assert expected_start == num_items

    def test_guided_sizing_decreases(self):
        sizes = [stop - start for start, stop in shard_plan(10000, 4)]
        assert sizes[0] == 10000 // 8
        assert sizes == sorted(sizes, reverse=True)

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            shard_plan(-1, 2)
        with pytest.raises(ValueError):
            shard_plan(10, 0)


class TestShardedExecutor:
    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            ShardedExecutor(None, num_workers=0)

    def test_must_be_entered_before_use(self):
        executor = ShardedExecutor([1, 2, 3], num_workers=2)
        with pytest.raises(RuntimeError):
            executor.map_shards(_shard_sum, 3)

    def test_workers_see_shared_state(self):
        values = list(range(100))
        with ShardedExecutor(values, num_workers=2) as executor:
            shard_sums = executor.map_shards(_shard_sum, len(values))
        assert sum(shard_sums) == sum(values)

    def test_results_come_back_in_shard_order(self):
        with ShardedExecutor(None, num_workers=3) as executor:
            shard_results = executor.map_shards(_shard_range, 57)
        flattened = [item for shard in shard_results for item in shard]
        assert flattened == list(range(57))

    def test_map_sharded_one_shot(self):
        values = list(range(40))
        shard_sums = map_sharded(values, _shard_sum, len(values), num_workers=2)
        assert sum(shard_sums) == sum(values)

    def test_worker_state_outside_pool_raises(self):
        with pytest.raises(RuntimeError):
            worker_state()

    def test_single_worker_runs_inline_without_pool(self):
        # The small-input fast path: one worker spawns no pool at all — the
        # shards run in-process against the same shared state.
        values = list(range(30))
        executor = ShardedExecutor(values, num_workers=1)
        with executor:
            assert executor._pool is None
            shard_sums = executor.map_shards(_shard_sum, len(values))
        assert sum(shard_sums) == sum(values)

    def test_inline_executor_restores_outer_state(self):
        with ShardedExecutor([1], num_workers=1) as executor:
            executor.map_shards(_shard_sum, 1)
        # The state installed for the inline run must not leak.
        with pytest.raises(RuntimeError):
            worker_state()


class TestTunedNumWorkers:
    def test_disabled_threshold_only_clamps_to_items(self):
        assert tuned_num_workers(4, 2, min_items_per_worker=0) == 2
        assert tuned_num_workers(4, 100, min_items_per_worker=0) == 4
        assert tuned_num_workers(1, 100, min_items_per_worker=0) == 1

    def test_small_inputs_scale_down(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        # 100 items at 8 workers is 12.5 rows each — below a threshold of
        # 50 the pool shrinks to items // threshold.
        assert tuned_num_workers(8, 100, min_items_per_worker=50) == 2
        assert tuned_num_workers(8, 49, min_items_per_worker=50) == 1
        # Plenty of work per worker: the request stands.
        assert tuned_num_workers(8, 1000, min_items_per_worker=50) == 8

    def test_single_core_host_goes_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert tuned_num_workers(8, 10**6, min_items_per_worker=1) == 1

    def test_default_threshold_comes_from_env(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        monkeypatch.delenv("REPRO_MIN_ROWS_PER_WORKER", raising=False)
        assert env_min_items_per_worker() == DEFAULT_MIN_ITEMS_PER_WORKER
        monkeypatch.setenv("REPRO_MIN_ROWS_PER_WORKER", "10")
        assert env_min_items_per_worker() == 10
        assert tuned_num_workers(4, 20) == 2
        monkeypatch.setenv("REPRO_MIN_ROWS_PER_WORKER", "0")
        assert tuned_num_workers(4, 20) == 4

    def test_bad_env_threshold_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MIN_ROWS_PER_WORKER", "many")
        with pytest.raises(ValueError):
            env_min_items_per_worker()
        monkeypatch.setenv("REPRO_MIN_ROWS_PER_WORKER", "-5")
        with pytest.raises(ValueError):
            env_min_items_per_worker()

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            tuned_num_workers(-1, 10)
