"""Unit tests for coverage computation, pruning, and cover selection."""

from __future__ import annotations

import pytest

from repro.core.cover import (
    cover_fraction,
    covered_mask,
    covered_rows,
    greedy_minimal_cover,
    greedy_minimal_cover_reference,
    top_k_by_coverage,
)
from repro.core.coverage import (
    CoverageComputer,
    CoverageResult,
    mask_from_rows,
    rows_from_mask,
)
from repro.core.pairs import pairs_from_strings
from repro.core.transformation import Transformation
from repro.core.units import Literal, Split, SplitSubstr, Substr


@pytest.fixture
def name_pairs():
    return pairs_from_strings(
        [
            ("Rafiei, Davood", "D Rafiei"),
            ("Bowling, Michael", "M Bowling"),
            ("Gosgnach, Simon", "S Gosgnach"),
        ]
    )


@pytest.fixture
def paper_transformation():
    return Transformation([SplitSubstr(" ", 2, 0, 1), Literal(" "), Split(",", 1)])


class TestCoverageComputer:
    def test_full_coverage(self, name_pairs, paper_transformation):
        computer = CoverageComputer(name_pairs)
        result = computer.coverage_of(paper_transformation)
        assert result.covered_rows == frozenset({0, 1, 2})
        assert result.coverage == 3
        assert result.coverage_fraction(3) == 1.0

    def test_partial_coverage(self, name_pairs):
        transformation = Transformation([Literal("D "), Split(",", 1)])
        computer = CoverageComputer(name_pairs)
        result = computer.coverage_of(transformation)
        assert result.covered_rows == frozenset({0})

    def test_zero_coverage(self, name_pairs):
        transformation = Transformation([Literal("no such value")])
        computer = CoverageComputer(name_pairs)
        assert computer.coverage_of(transformation).coverage == 0

    def test_coverage_fraction_of_empty_input(self):
        result = CoverageResult(Transformation([Literal("x")]), frozenset())
        assert result.coverage_fraction(0) == 0.0

    def test_batch_matches_individual(self, name_pairs, paper_transformation):
        other = Transformation([Literal("D "), Split(",", 1)])
        computer = CoverageComputer(name_pairs)
        batch = computer.coverage_of_all([paper_transformation, other])
        assert batch[0].covered_rows == frozenset({0, 1, 2})
        assert batch[1].covered_rows == frozenset({0})

    def test_batched_and_unbatched_paths_agree(self, name_pairs, paper_transformation):
        transformations = [
            paper_transformation,
            Transformation([Literal("D "), Split(",", 1)]),
            Transformation([Literal("zzz")]),
            Transformation([Split(",", 2), Literal(" "), Split(",", 1)]),
        ]
        batched = CoverageComputer(name_pairs).coverage_of_all(
            transformations, batched=True
        )
        unbatched = CoverageComputer(name_pairs).coverage_of_all(
            transformations, batched=False
        )
        assert batched == unbatched

    def test_batched_accounts_every_application(self, name_pairs, paper_transformation):
        transformations = [
            paper_transformation,
            Transformation([Literal("zzz"), Split(",", 1)]),
            Transformation([Literal("zzz"), Split(",", 2)]),
        ]
        computer = CoverageComputer(name_pairs)
        computer.coverage_of_all(transformations, batched=True)
        stats = computer.stats
        # Every (transformation, row) application is classified exactly once,
        # as either skipped (hit) or evaluated (miss).
        assert stats.cache_hits + stats.cache_misses == len(transformations) * 3
        # The shared bad first unit skips both zzz-transformations per row.
        assert stats.cache_hits >= 6

    def test_batched_default_follows_unit_cache(self, name_pairs):
        transformation = Transformation([Literal("zzz")])
        cached = CoverageComputer(name_pairs, use_unit_cache=True)
        cached.coverage_of_all([transformation, transformation])
        # Batched by default: the duplicate is skipped via the shared trie.
        assert cached.stats.cache_hits > 0
        uncached = CoverageComputer(name_pairs, use_unit_cache=False)
        uncached.coverage_of_all([transformation, transformation])
        # Cache off falls back to the one-at-a-time path: never a hit.
        assert uncached.stats.cache_hits == 0

    def test_batched_without_cache_reports_no_cache_hits(self, name_pairs):
        transformations = [
            Transformation([Literal("zzz"), Substr(0, 1)]),
            Transformation([Literal("zzz"), Substr(0, 2)]),
        ]
        computer = CoverageComputer(name_pairs, use_unit_cache=False)
        computer.coverage_of_all(transformations, batched=True)
        # The batch memo skips repeated failing units, but with the unit
        # cache disabled those skips are not cache hits.
        assert computer.stats.cache_hits == 0
        assert computer.stats.cache_misses == len(transformations) * 3

    def test_batched_empty_inputs(self):
        assert CoverageComputer([]).coverage_of_all([], batched=True) == []

    def test_literal_prefilter_skips_anchored_subtrees(self, name_pairs):
        # "zzz" occurs in no target: the prefilter prunes both anchored
        # transformations per row without applying any unit, and the
        # deep-anchored one is pruned before its Split ever runs.
        anchored = [
            Transformation([Literal("zzz"), Split(",", 1)]),
            Transformation([Split(",", 1), Literal("zzz")]),
        ]
        computer = CoverageComputer(name_pairs)
        results = computer.coverage_of_all(anchored, batched=True)
        assert all(result.coverage == 0 for result in results)
        assert computer.stats.cache_hits == len(anchored) * 3
        assert computer.stats.applications == 0

    def test_prefilter_is_noop_without_literal_anchors(self, name_pairs):
        # Transformations without literal units carry no anchors; the walk
        # must still match the unbatched reference exactly.
        transformations = [
            Transformation([Split(",", 2), Literal(""), Split(",", 1)]),
            Transformation([Substr(0, 1)]),
        ]
        batched = CoverageComputer(name_pairs).coverage_of_all(
            transformations, batched=True
        )
        unbatched = CoverageComputer(name_pairs).coverage_of_all(
            transformations, batched=False
        )
        assert batched == unbatched


class TestUnitCache:
    def test_cache_hits_accumulate_for_repeated_bad_units(self, name_pairs):
        bad_unit = Literal("zzz")
        transformations = [
            Transformation([bad_unit, Substr(0, 1)]),
            Transformation([bad_unit, Substr(0, 2)]),
            Transformation([bad_unit, Substr(0, 3)]),
        ]
        computer = CoverageComputer(name_pairs, use_unit_cache=True)
        for transformation in transformations:
            computer.coverage_of(transformation)
        # First transformation misses on every row (3 misses) and records the
        # bad unit; the other two hit the cache for every row.
        assert computer.stats.cache_hits == 6
        assert computer.stats.cache_misses == 3

    def test_cache_does_not_change_results(self, name_pairs, paper_transformation):
        transformations = [
            paper_transformation,
            Transformation([Literal("D "), Split(",", 1)]),
            Transformation([Literal("zzz"), Split(",", 1)]),
            Transformation([Split(",", 2), Literal(" "), Split(",", 1)]),
        ]
        cached = CoverageComputer(name_pairs, use_unit_cache=True)
        uncached = CoverageComputer(name_pairs, use_unit_cache=False)
        for transformation in transformations:
            assert (
                cached.coverage_of(transformation).covered_rows
                == uncached.coverage_of(transformation).covered_rows
            )

    def test_cache_disabled_never_hits(self, name_pairs):
        computer = CoverageComputer(name_pairs, use_unit_cache=False)
        transformation = Transformation([Literal("zzz")])
        computer.coverage_of(transformation)
        computer.coverage_of(transformation)
        assert computer.stats.cache_hits == 0

    def test_reset_cache(self, name_pairs):
        computer = CoverageComputer(name_pairs, use_unit_cache=True)
        transformation = Transformation([Literal("zzz")])
        computer.coverage_of(transformation)
        computer.reset_cache()
        computer.coverage_of(transformation)
        # After the reset the second pass misses again instead of hitting.
        assert computer.stats.cache_hits == 0
        assert computer.stats.cache_misses == 6


class TestTopK:
    def test_orders_by_coverage(self):
        t_small = CoverageResult(Transformation([Literal("a")]), frozenset({0}))
        t_large = CoverageResult(Transformation([Literal("b")]), frozenset({0, 1, 2}))
        assert top_k_by_coverage([t_small, t_large], 1)[0] is t_large

    def test_tie_broken_by_length(self):
        short = CoverageResult(Transformation([Substr(0, 1)]), frozenset({0, 1}))
        long = CoverageResult(
            Transformation([Substr(0, 1), Literal("x"), Substr(1, 2)]),
            frozenset({2, 3}),
        )
        assert top_k_by_coverage([long, short], 1)[0] is short

    def test_k_validation(self):
        with pytest.raises(ValueError):
            top_k_by_coverage([], 0)


class TestGreedyCover:
    def make_result(self, rows, label):
        return CoverageResult(Transformation([Literal(label)]), frozenset(rows))

    def test_selects_minimal_set(self):
        a = self.make_result({0, 1, 2}, "a")
        b = self.make_result({3, 4}, "b")
        c = self.make_result({0, 1}, "c")
        cover = greedy_minimal_cover([c, b, a])
        assert [r.transformation for r in cover] == [
            a.transformation,
            b.transformation,
        ]

    def test_respects_min_support(self):
        a = self.make_result({0, 1, 2}, "a")
        b = self.make_result({3}, "b")
        cover = greedy_minimal_cover([a, b], min_support=2)
        assert [r.transformation for r in cover] == [a.transformation]

    def test_max_transformations_bound(self):
        results = [self.make_result({i}, str(i)) for i in range(5)]
        cover = greedy_minimal_cover(results, max_transformations=2)
        assert len(cover) == 2

    def test_no_progress_stops(self):
        a = self.make_result({0, 1}, "a")
        duplicate = self.make_result({0, 1}, "b")
        cover = greedy_minimal_cover([a, duplicate])
        assert len(cover) == 1

    def test_greedy_approximation_on_classic_instance(self):
        """Greedy picks the big set first even when pairs of sets also cover."""
        big = self.make_result({0, 1, 2, 3}, "big")
        left = self.make_result({0, 1, 4}, "left")
        right = self.make_result({2, 3, 5}, "right")
        cover = greedy_minimal_cover([left, right, big])
        assert cover[0].transformation == big.transformation
        assert covered_rows(cover) == frozenset(range(6))

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            greedy_minimal_cover([], min_support=0)


class TestCelfAgainstReference:
    def make_result(self, rows, label):
        return CoverageResult(Transformation([Literal(label)]), frozenset(rows))

    def test_matches_reference_on_overlapping_sets(self):
        results = [
            self.make_result({0, 1, 2, 3}, "big"),
            self.make_result({0, 1, 4}, "left"),
            self.make_result({2, 3, 5}, "right"),
            self.make_result({4, 5}, "tail"),
        ]
        assert greedy_minimal_cover(results) == greedy_minimal_cover_reference(
            results
        )

    def test_matches_reference_with_support_and_cap(self):
        results = [self.make_result(set(range(i)), str(i)) for i in range(6)]
        assert greedy_minimal_cover(
            results, min_support=2, max_transformations=2
        ) == greedy_minimal_cover_reference(
            results, min_support=2, max_transformations=2
        )

    def test_reference_validates_min_support(self):
        with pytest.raises(ValueError):
            greedy_minimal_cover_reference([], min_support=0)


class TestCoverageResultRepresentations:
    def test_mask_and_rows_are_interchangeable(self):
        transformation = Transformation([Literal("x")])
        from_rows = CoverageResult(transformation, frozenset({0, 3, 70}))
        from_mask = CoverageResult(
            transformation, covered_mask=(1 << 0) | (1 << 3) | (1 << 70)
        )
        assert from_rows == from_mask
        assert from_mask.covered_rows == frozenset({0, 3, 70})
        assert from_rows.covered_mask == from_mask.covered_mask
        assert from_mask.coverage == 3
        assert from_mask.coverage_fraction(6) == 0.5

    def test_defaults_to_empty(self):
        result = CoverageResult(Transformation([Literal("x")]))
        assert result.covered_rows == frozenset()
        assert result.covered_mask == 0
        assert result.coverage == 0

    def test_mask_helpers_roundtrip(self):
        rows = [0, 7, 8, 63, 64, 100]
        assert rows_from_mask(mask_from_rows(rows)) == rows
        assert mask_from_rows([]) == 0
        assert rows_from_mask(0) == []
        with pytest.raises(ValueError):
            rows_from_mask(-1)


class TestCoverHelpers:
    def test_covered_rows_union(self):
        a = CoverageResult(Transformation([Literal("a")]), frozenset({0, 1}))
        b = CoverageResult(Transformation([Literal("b")]), frozenset({1, 2}))
        assert covered_rows([a, b]) == frozenset({0, 1, 2})
        assert covered_mask([a, b]) == 0b111

    def test_cover_fraction(self):
        a = CoverageResult(Transformation([Literal("a")]), frozenset({0, 1}))
        assert cover_fraction([a], 4) == 0.5
        assert cover_fraction([], 0) == 0.0
