"""Unit tests for per-placeholder candidate-unit generation."""

from __future__ import annotations

from repro.core.config import DiscoveryConfig
from repro.core.placeholders import Placeholder, PlaceholderExtractor
from repro.core.unit_generation import UnitGenerator
from repro.core.units import Literal, Split, SplitSubstr, Substr, TwoCharSplitSubstr


def make_placeholder(source: str, text: str) -> Placeholder:
    """Build a placeholder for *text* located in *source* (and in the target)."""
    start = source.find(text)
    assert start != -1, f"{text!r} must occur in {source!r}"
    return Placeholder(
        text=text,
        target_start=0,
        target_end=len(text),
        source_matches=(start,),
    )


class TestCandidateCorrectness:
    def test_every_candidate_emits_the_placeholder_text(self):
        generator = UnitGenerator()
        source = "prus-czarnecki, andrzej"
        for text in ["prus-czarnecki", "andrzej", "a", "czarnecki"]:
            placeholder = make_placeholder(source, text)
            for unit in generator.candidates(source, placeholder):
                assert unit.apply(source) == text

    def test_literal_always_included(self):
        generator = UnitGenerator()
        source = "abcdef"
        placeholder = make_placeholder(source, "cd")
        candidates = generator.candidates(source, placeholder)
        assert Literal("cd") in candidates

    def test_substr_candidate_generated(self):
        generator = UnitGenerator()
        source = "abcdef"
        placeholder = make_placeholder(source, "cde")
        candidates = generator.candidates(source, placeholder)
        assert Substr(2, 5) in candidates

    def test_split_candidate_for_adjacent_delimiter(self):
        generator = UnitGenerator()
        source = "first,second"
        placeholder = make_placeholder(source, "second")
        candidates = generator.candidates(source, placeholder)
        assert Split(",", 2) in candidates

    def test_split_substr_candidate_inside_piece(self):
        generator = UnitGenerator()
        source = "bowling, michael"
        placeholder = make_placeholder(source, "m")
        candidates = generator.candidates(source, placeholder)
        assert SplitSubstr(" ", 2, 0, 1) in candidates

    def test_no_duplicates(self):
        generator = UnitGenerator()
        source = "aa bb aa"
        placeholder = Placeholder(
            text="aa", target_start=0, target_end=2, source_matches=(0, 6)
        )
        candidates = generator.candidates(source, placeholder)
        assert len(candidates) == len(set(candidates))


class TestConfigurationEffects:
    def test_disabled_units_are_not_generated(self):
        config = DiscoveryConfig(enabled_units=("Literal", "Substr"))
        generator = UnitGenerator(config)
        source = "first,second"
        placeholder = make_placeholder(source, "second")
        candidates = generator.candidates(source, placeholder)
        assert all(isinstance(u, (Literal, Substr)) for u in candidates)

    def test_two_char_split_substr_generated_when_enabled(self):
        config = DiscoveryConfig(
            enabled_units=(
                "Literal",
                "Substr",
                "Split",
                "SplitSubstr",
                "TwoCharSplitSubstr",
            )
        )
        generator = UnitGenerator(config)
        source = "alpha,beta;gamma"
        placeholder = make_placeholder(source, "beta")
        candidates = generator.candidates(source, placeholder)
        assert any(isinstance(u, TwoCharSplitSubstr) for u in candidates)
        for unit in candidates:
            assert unit.apply(source) == "beta"

    def test_match_cap_limits_substr_candidates(self):
        config = DiscoveryConfig(max_matches_per_placeholder=1)
        generator = UnitGenerator(config)
        source = "ab ab ab"
        placeholder = Placeholder(
            text="ab", target_start=0, target_end=2, source_matches=(0, 3, 6)
        )
        candidates = generator.candidates(source, placeholder)
        substrs = [u for u in candidates if isinstance(u, Substr)]
        assert substrs == [Substr(0, 2)]


class TestGeneralization:
    def test_candidates_generalize_to_same_layout_rows(self):
        """A Split/SplitSubstr learned on one row applies to similar rows."""
        generator = UnitGenerator()
        source = "Rafiei, Davood"
        placeholder = make_placeholder(source, "Rafiei")
        candidates = generator.candidates(source, placeholder)
        split_like = [
            u for u in candidates if isinstance(u, (Split, SplitSubstr))
        ]
        assert split_like, "expected at least one split-based candidate"
        # At least one split-based candidate (Split(',', 1)) carries over to a
        # row with the same layout but different token lengths.
        assert any(u.apply("Bowling, Michael") == "Bowling" for u in split_like)

    def test_extractor_and_generator_integration(self):
        """Units generated from extracted placeholders rebuild the target."""
        extractor = PlaceholderExtractor()
        generator = UnitGenerator()
        source, target = "Rafiei, Davood", "D Rafiei"
        placeholders = extractor.maximal_placeholders(source, target)
        for placeholder in placeholders:
            candidates = generator.candidates(source, placeholder)
            assert candidates
            for unit in candidates:
                assert unit.apply(source) == placeholder.text
