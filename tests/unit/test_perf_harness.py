"""Unit tests for the perf harness (repro.perf)."""

from __future__ import annotations

import json

import pytest

from repro.perf import BenchmarkRunner, validate_payload
from repro.perf.__main__ import main


@pytest.fixture(scope="module")
def tiny_runner_payloads(tmp_path_factory):
    """One small before/after ladder run shared by the assertions below."""
    out = tmp_path_factory.mktemp("bench")
    runner = BenchmarkRunner(ladder=(40, 80), sample_size=20, output_dir=out)
    matching = runner.run_matching()
    discovery = runner.run_discovery()
    return runner, matching, discovery


class TestBenchmarkRunner:
    def test_rejects_bad_ladder(self):
        with pytest.raises(ValueError):
            BenchmarkRunner(ladder=())
        with pytest.raises(ValueError):
            BenchmarkRunner(ladder=(100, 0))

    def test_rejects_unknown_engine(self):
        runner = BenchmarkRunner(ladder=(10,))
        with pytest.raises(ValueError):
            runner.matcher_for("warp-drive")
        with pytest.raises(ValueError):
            runner.discovery_for("warp-drive")

    def test_matching_payload_shape(self, tiny_runner_payloads):
        _, matching, _ = tiny_runner_payloads
        assert matching["benchmark"] == "matching"
        assert [rung["rows"] for rung in matching["rungs"]] == [40, 80]
        for rung in matching["rungs"]:
            assert set(rung["engines"]) == {"seed", "packed"}
            assert rung["identical"] is True
            for record in rung["engines"].values():
                assert record["num_pairs"] > 0
                assert record["stages"]["row_matching"] >= 0
        assert validate_payload(matching) == []

    def test_discovery_payload_records_stage_breakdown(self, tiny_runner_payloads):
        _, _, discovery = tiny_runner_payloads
        for rung in discovery["rungs"]:
            assert rung["identical"] is True
            for record in rung["engines"].values():
                stages = record["stages"]
                assert "row_matching" in stages
                assert "applying_transformations" in stages
                assert record["num_transformations"] > 0
                assert record["cover_size"] > 0
        assert validate_payload(discovery) == []

    def test_max_seed_rows_caps_the_slow_engine(self):
        runner = BenchmarkRunner(ladder=(30, 60), sample_size=15)
        payload = runner.run_matching(max_seed_rows=30)
        by_rows = {rung["rows"]: rung for rung in payload["rungs"]}
        assert set(by_rows[30]["engines"]) == {"seed", "packed"}
        assert set(by_rows[60]["engines"]) == {"packed"}
        assert "speedup" not in by_rows[60]

    def test_write_emits_json_file(self, tiny_runner_payloads, tmp_path):
        runner, matching, _ = tiny_runner_payloads
        runner.output_dir = tmp_path
        path = runner.write("matching", matching)
        assert path.name == "BENCH_matching.json"
        assert json.loads(path.read_text())["benchmark"] == "matching"


class TestValidatePayload:
    def test_flags_empty_payload(self):
        assert validate_payload({}) == ["no rungs recorded"]

    def test_flags_missing_stages_and_outputs(self):
        payload = {
            "rungs": [
                {
                    "rows": 10,
                    "engines": {
                        "packed": {"stages": {}, "total_s": 0.0, "num_pairs": 0}
                    },
                }
            ]
        }
        problems = validate_payload(payload)
        assert any("no stage timings" in problem for problem in problems)
        assert any("total_s" in problem for problem in problems)
        assert any("no candidate pairs" in problem for problem in problems)

    def test_flags_disagreeing_engines(self):
        payload = {
            "rungs": [
                {
                    "rows": 10,
                    "engines": {
                        "packed": {
                            "stages": {"row_matching": 0.1},
                            "total_s": 0.1,
                            "num_pairs": 3,
                        }
                    },
                    "identical": False,
                }
            ]
        }
        assert any(
            "disagree" in problem for problem in validate_payload(payload)
        )


class TestCli:
    def test_smoke_mode_writes_reports_and_passes(self, tmp_path, capsys):
        exit_code = main(
            ["--smoke", "--ladder", "60", "--sample-size", "20", "--out", str(tmp_path)]
        )
        assert exit_code == 0
        assert (tmp_path / "BENCH_matching.json").exists()
        assert (tmp_path / "BENCH_discovery.json").exists()
        captured = capsys.readouterr()
        assert "rows=60" in captured.out

    def test_bad_engine_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--engines", "warp-drive", "--out", str(tmp_path)])
