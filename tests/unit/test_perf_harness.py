"""Unit tests for the perf harness (repro.perf)."""

from __future__ import annotations

import json
import os

import pytest

from repro.perf import BenchmarkRunner, host_metadata, validate_payload
from repro.perf.__main__ import main
from repro.perf.runner import compare_to_baseline


@pytest.fixture(scope="module")
def tiny_runner_payloads(tmp_path_factory):
    """One small before/after ladder run shared by the assertions below."""
    out = tmp_path_factory.mktemp("bench")
    runner = BenchmarkRunner(ladder=(40, 80), sample_size=20, output_dir=out)
    matching = runner.run_matching()
    discovery = runner.run_discovery()
    return runner, matching, discovery


class TestBenchmarkRunner:
    def test_rejects_bad_ladder(self):
        with pytest.raises(ValueError):
            BenchmarkRunner(ladder=())
        with pytest.raises(ValueError):
            BenchmarkRunner(ladder=(100, 0))

    def test_rejects_unknown_engine(self):
        runner = BenchmarkRunner(ladder=(10,))
        with pytest.raises(ValueError):
            runner.matcher_for("warp-drive")
        with pytest.raises(ValueError):
            runner.discovery_for("warp-drive")

    def test_matching_payload_shape(self, tiny_runner_payloads):
        _, matching, _ = tiny_runner_payloads
        assert matching["benchmark"] == "matching"
        assert [rung["rows"] for rung in matching["rungs"]] == [40, 80]
        for rung in matching["rungs"]:
            # The matching ladder runs the setsim engine head-to-head with
            # the n-gram engines by default; identity is asserted within
            # each family only (setsim legitimately matches a different set).
            assert set(rung["engines"]) == {"seed", "packed", "setsim"}
            assert rung["identical"] is True
            for record in rung["engines"].values():
                assert record["num_pairs"] > 0
                assert record["stages"]["row_matching"] >= 0
            assert rung["setsim_vs_packed"] > 0
        assert validate_payload(matching) == []

    def test_discovery_payload_records_stage_breakdown(self, tiny_runner_payloads):
        _, _, discovery = tiny_runner_payloads
        for rung in discovery["rungs"]:
            assert rung["identical"] is True
            for record in rung["engines"].values():
                stages = record["stages"]
                assert "row_matching" in stages
                assert "applying_transformations" in stages
                assert record["num_transformations"] > 0
                assert record["cover_size"] > 0
        assert validate_payload(discovery) == []

    def test_discovery_payload_tracks_apply_only_stage(self, tiny_runner_payloads):
        # The artifact layer's serving path is timed per rung, separately
        # from training: its own stage, its own seconds, its own output
        # count — and the rung's identical flag covers the joined pairs,
        # so the seed (reference loop) and packed (trie) apply engines are
        # continuously checked against each other.
        _, _, discovery = tiny_runner_payloads
        for rung in discovery["rungs"]:
            for record in rung["engines"].values():
                assert record["stages"]["apply_only"] >= 0
                assert record["apply_s"] == record["stages"]["apply_only"]
                assert record["joined_pairs"] > 0
                assert record["total_s"] == pytest.approx(
                    record["matching_s"]
                    + record["discovery_s"]
                    + record["apply_s"]
                )

    def test_validate_payload_requires_apply_stage_on_discovery(self):
        payload = {
            "benchmark": "discovery",
            "rungs": [
                {
                    "rows": 10,
                    "engines": {
                        "packed": {
                            "stages": {"row_matching": 0.1},
                            "total_s": 0.1,
                            "num_pairs": 3,
                            "num_transformations": 2,
                        }
                    },
                }
            ],
        }
        problems = validate_payload(payload)
        assert any("no apply_only stage" in problem for problem in problems)
        assert any("no pairs" in problem for problem in problems)

    def test_max_seed_rows_caps_the_slow_engine(self):
        runner = BenchmarkRunner(ladder=(30, 60), sample_size=15)
        payload = runner.run_matching(max_seed_rows=30)
        by_rows = {rung["rows"]: rung for rung in payload["rungs"]}
        assert set(by_rows[30]["engines"]) == {"seed", "packed", "setsim"}
        assert set(by_rows[60]["engines"]) == {"packed", "setsim"}
        assert "speedup" not in by_rows[60]

    def test_write_emits_json_file(self, tiny_runner_payloads, tmp_path):
        runner, matching, _ = tiny_runner_payloads
        runner.output_dir = tmp_path
        path = runner.write("matching", matching)
        assert path.name == "BENCH_matching.json"
        assert json.loads(path.read_text())["benchmark"] == "matching"

    def test_host_metadata_embedded(self, tiny_runner_payloads):
        # Multi-core numbers are only interpretable with the host context.
        _, matching, discovery = tiny_runner_payloads
        for payload in (matching, discovery):
            host = payload["host"]
            assert host["cpu_count"] == (os.cpu_count() or 1)
            assert host["start_method"] in ("fork", "spawn", "forkserver")
            assert payload["config"]["workers"] == [1]
        assert host_metadata()["cpu_count"] == (os.cpu_count() or 1)


class TestWorkersAxis:
    @pytest.fixture(scope="class")
    def workers_payloads(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench-workers")
        runner = BenchmarkRunner(
            ladder=(60,), sample_size=20, workers=(1, 2), output_dir=out
        )
        return runner, runner.run_matching(), runner.run_discovery()

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            BenchmarkRunner(ladder=(10,), workers=())
        with pytest.raises(ValueError):
            BenchmarkRunner(ladder=(10,), workers=(2, 0))

    def test_seed_engine_is_serial_only(self):
        runner = BenchmarkRunner(ladder=(10,), workers=(1, 2))
        with pytest.raises(ValueError):
            runner.matcher_for("seed", num_workers=2)
        with pytest.raises(ValueError):
            runner.discovery_for("seed", num_workers=2)

    def test_records_one_engine_per_worker_count(self, workers_payloads):
        _, matching, discovery = workers_payloads
        for rung in matching["rungs"]:
            # The workers axis sweeps both sharded engines on the matching
            # ladder; the discovery ladder has no setsim variant.
            assert set(rung["engines"]) == {
                "seed",
                "packed",
                "packed-w2",
                "setsim",
                "setsim-w2",
            }
            assert rung["engines"]["setsim-w2"]["num_workers"] == 2
        for rung in discovery["rungs"]:
            assert set(rung["engines"]) == {"seed", "packed", "packed-w2"}
        for payload in (matching, discovery):
            for rung in payload["rungs"]:
                assert rung["engines"]["packed-w2"]["num_workers"] == 2
                assert rung["identical"] is True
            assert payload["config"]["workers"] == [1, 2]
            assert validate_payload(payload) == []

    def test_parallel_efficiency_recorded(self, workers_payloads):
        _, matching, discovery = workers_payloads
        for payload in (matching, discovery):
            for rung in payload["rungs"]:
                parallel = rung["parallel"]["packed-w2"]
                assert parallel["workers"] == 2
                assert parallel["speedup_vs_serial"] > 0
                # Efficiency is normalized by what actually ran: on tiny
                # inputs (or single-core hosts) the small-input fast path
                # reduces the pool, and the record says so instead of
                # reporting the serial run as 2-worker inefficiency.
                effective = parallel["effective_workers"]
                assert 1 <= effective <= 2
                assert rung["engines"]["packed-w2"]["effective_workers"] == effective
                assert parallel["efficiency"] == pytest.approx(
                    parallel["speedup_vs_serial"] / effective, abs=0.01
                )

    def test_identical_compares_worker_variants_without_seed(self):
        # Even with the seed engine skipped, the rung still carries the
        # equivalence flag: packed vs packed-w2 on real outputs.
        runner = BenchmarkRunner(ladder=(40,), sample_size=15, workers=(1, 2))
        payload = runner.run_matching(engines=("packed",))
        rung = payload["rungs"][0]
        assert set(rung["engines"]) == {"packed", "packed-w2"}
        assert rung["identical"] is True
        # No seed baseline, but the rung must not drop the speedup: the
        # packed serial run is the (labelled) baseline and the best worker
        # variant the comparison engine.
        assert rung["speedup"] > 0
        assert rung["speedup_baseline"] == "packed"
        assert rung["speedup_engine"] == "packed-w2"


class TestSpeedupSummary:
    def test_seed_rungs_label_the_seed_baseline(self, tiny_runner_payloads):
        _, matching, discovery = tiny_runner_payloads
        for payload in (matching, discovery):
            for rung in payload["rungs"]:
                assert rung["speedup"] > 0
                assert rung["speedup_baseline"] == "seed"
                assert rung["speedup_engine"] == "packed"

    def test_stage_speedup_breakdown_recorded(self, tiny_runner_payloads):
        # The per-stage ratios are what make a coverage-stage optimisation
        # visible in the BENCH JSON instead of buried in the total.
        _, _, discovery = tiny_runner_payloads
        for rung in discovery["rungs"]:
            breakdown = rung["stage_speedup"]
            assert "applying_transformations" in breakdown
            assert "row_matching" in breakdown
            assert all(ratio > 0 for ratio in breakdown.values())

    def test_seed_capped_rungs_fall_back_to_packed_baseline(self):
        runner = BenchmarkRunner(ladder=(30, 60), sample_size=15, workers=(1, 2))
        payload = runner.run_discovery(max_seed_rows=30)
        by_rows = {rung["rows"]: rung for rung in payload["rungs"]}
        assert by_rows[30]["speedup_baseline"] == "seed"
        capped = by_rows[60]
        assert capped["speedup"] > 0
        assert capped["speedup_baseline"] == "packed"
        assert capped["speedup_engine"] == "packed-w2"
        assert "applying_transformations" in capped["stage_speedup"]


class TestCompareToBaseline:
    @staticmethod
    def payload_with_stage(seconds, rows=1000, stage="applying_transformations"):
        return {
            "rungs": [
                {
                    "rows": rows,
                    "engines": {"packed": {"stages": {stage: seconds}}},
                }
            ]
        }

    def test_within_factor_passes(self):
        current = self.payload_with_stage(1.9)
        baseline = self.payload_with_stage(1.0)
        assert compare_to_baseline(current, baseline, factor=2.0) == []

    def test_gross_regression_fails(self):
        current = self.payload_with_stage(2.5)
        baseline = self.payload_with_stage(1.0)
        problems = compare_to_baseline(current, baseline, factor=2.0)
        assert len(problems) == 1
        assert "applying_transformations" in problems[0]
        assert "rung 1000" in problems[0]

    def test_unmatched_rungs_and_stages_are_skipped(self):
        current = self.payload_with_stage(9.0, rows=5000)
        baseline = self.payload_with_stage(1.0, rows=1000)
        assert compare_to_baseline(current, baseline) == []
        current = self.payload_with_stage(9.0, stage="row_matching")
        baseline = self.payload_with_stage(1.0)
        assert compare_to_baseline(current, baseline) == []

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            compare_to_baseline({}, {}, factor=0)


class TestValidatePayload:
    def test_flags_empty_payload(self):
        assert validate_payload({}) == ["no rungs recorded"]

    def test_flags_missing_stages_and_outputs(self):
        payload = {
            "rungs": [
                {
                    "rows": 10,
                    "engines": {
                        "packed": {"stages": {}, "total_s": 0.0, "num_pairs": 0}
                    },
                }
            ]
        }
        problems = validate_payload(payload)
        assert any("no stage timings" in problem for problem in problems)
        assert any("total_s" in problem for problem in problems)
        assert any("no candidate pairs" in problem for problem in problems)

    def test_flags_missing_identical_flag(self):
        # Two engine records without the equivalence verdict means the rung
        # never compared its outputs — the smoke must treat that as failure,
        # not silently as success.
        payload = {
            "rungs": [
                {
                    "rows": 10,
                    "engines": {
                        "packed": {
                            "stages": {"row_matching": 0.1},
                            "total_s": 0.1,
                            "num_pairs": 3,
                        },
                        "packed-w2": {
                            "stages": {"row_matching": 0.1},
                            "total_s": 0.1,
                            "num_pairs": 3,
                        },
                    },
                }
            ]
        }
        assert any(
            "no identical flag" in problem for problem in validate_payload(payload)
        )

    def test_flags_disagreeing_engines(self):
        payload = {
            "rungs": [
                {
                    "rows": 10,
                    "engines": {
                        "packed": {
                            "stages": {"row_matching": 0.1},
                            "total_s": 0.1,
                            "num_pairs": 3,
                        }
                    },
                    "identical": False,
                }
            ]
        }
        assert any(
            "disagree" in problem for problem in validate_payload(payload)
        )


class TestCli:
    def test_smoke_mode_writes_reports_and_passes(self, tmp_path, capsys):
        exit_code = main(
            ["--smoke", "--ladder", "60", "--sample-size", "20", "--out", str(tmp_path)]
        )
        assert exit_code == 0
        assert (tmp_path / "BENCH_matching.json").exists()
        assert (tmp_path / "BENCH_discovery.json").exists()
        captured = capsys.readouterr()
        assert "rows=60" in captured.out

    def test_bad_engine_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--engines", "warp-drive", "--out", str(tmp_path)])

    def test_baseline_guard_passes_against_own_output(self, tmp_path):
        # First run writes the BENCH files; a second run checked against
        # them must pass.  The factor is widened well beyond the CI default:
        # this asserts the guard's plumbing, and a 60-row rung's wall clock
        # can legitimately wobble severalfold on a loaded test machine.
        args = ["--smoke", "--ladder", "60", "--sample-size", "20"]
        assert main(args + ["--out", str(tmp_path)]) == 0
        again = tmp_path / "again"
        assert (
            main(
                args
                + [
                    "--out",
                    str(again),
                    "--baseline",
                    str(tmp_path),
                    "--baseline-factor",
                    "50",
                ]
            )
            == 0
        )

    def test_baseline_guard_fails_on_gross_regression(self, tmp_path, capsys):
        args = ["--smoke", "--ladder", "60", "--sample-size", "20"]
        assert main(args + ["--out", str(tmp_path)]) == 0
        # Doctor the checked-in timing down so the fresh run looks like a
        # >2x regression of the coverage stage.
        bench_path = tmp_path / "BENCH_discovery.json"
        payload = json.loads(bench_path.read_text())
        for rung in payload["rungs"]:
            stages = rung["engines"]["packed"]["stages"]
            stages["applying_transformations"] = (
                stages["applying_transformations"] / 1000
            )
        bench_path.write_text(json.dumps(payload))
        again = tmp_path / "again"
        assert (
            main(args + ["--out", str(again), "--baseline", str(tmp_path)]) == 1
        )
        assert "applying_transformations" in capsys.readouterr().err

    def test_missing_baseline_file_fails(self, tmp_path):
        args = [
            "--smoke",
            "--ladder",
            "60",
            "--sample-size",
            "20",
            "--out",
            str(tmp_path),
            "--baseline",
            str(tmp_path / "nowhere"),
        ]
        assert main(args) == 1


def good_serve_payload() -> dict:
    """A minimal payload that passes every serve validation check."""
    return {
        "benchmark": "serve",
        "cold": {
            "first_request_s": 0.02,
            "response_ok": True,
            "warm_probe_s": 0.004,
            "warm_probe_ok": True,
        },
        "levels": [
            {
                "concurrency": 1,
                "requests": 50,
                "errors": 0,
                "shed": 0,
                "deadline_exceeded": 0,
                "duration_s": 1.0,
                "rps": 50.0,
                "verified_responses": 4,
                "matches_offline": True,
                "latency": {
                    "mean_s": 0.005,
                    "p50_s": 0.005,
                    "p99_s": 0.009,
                    "max_s": 0.010,
                },
            }
        ],
        "warm_vs_cold": {
            "cold_first_request_s": 0.02,
            "warm_p50_s": 0.005,
            "warm_below_cold": True,
        },
    }


class TestValidateServePayload:
    def test_good_payload_passes(self):
        assert validate_payload(good_serve_payload()) == []

    def test_dispatches_through_validate_payload(self):
        # A serve payload must not be judged by the training-ladder rules.
        problems = validate_payload({"benchmark": "serve"})
        assert problems
        assert all("rung" not in problem for problem in problems)

    def test_flags_cold_failures(self):
        payload = good_serve_payload()
        payload["cold"]["response_ok"] = False
        payload["cold"]["warm_probe_ok"] = False
        problems = validate_payload(payload)
        assert any("first response" in problem for problem in problems)
        assert any("warm probe" in problem for problem in problems)

    def test_flags_level_errors_and_mismatches(self):
        payload = good_serve_payload()
        payload["levels"][0]["errors"] = 3
        payload["levels"][0]["matches_offline"] = False
        problems = validate_payload(payload)
        assert any("request errors" in problem for problem in problems)
        assert any("identical to offline" in problem for problem in problems)

    def test_flags_shed_and_deadline_exceeded_requests(self):
        # BENCH records are made at the resilience defaults: a level that
        # shed requests or hit deadlines is not a clean benchmark.
        payload = good_serve_payload()
        payload["levels"][0]["shed"] = 2
        del payload["levels"][0]["deadline_exceeded"]
        problems = validate_payload(payload)
        assert any("2 shed" in problem for problem in problems)
        assert any(
            "deadline_exceeded" in problem and "missing" in problem
            for problem in problems
        )

    def test_flags_missing_latency_and_inverted_quantiles(self):
        payload = good_serve_payload()
        del payload["levels"][0]["latency"]
        assert any(
            "no latency summary" in problem
            for problem in validate_payload(payload)
        )
        payload = good_serve_payload()
        payload["levels"][0]["latency"]["p99_s"] = 0.001
        assert any("p99 below p50" in problem for problem in validate_payload(payload))

    def test_flags_warm_not_below_cold(self):
        payload = good_serve_payload()
        payload["warm_vs_cold"]["warm_below_cold"] = False
        assert any(
            "warm p50" in problem for problem in validate_payload(payload)
        )

    def test_flags_empty_levels(self):
        payload = good_serve_payload()
        payload["levels"] = []
        assert any(
            "no concurrency levels" in problem
            for problem in validate_payload(payload)
        )
