"""Unit tests for the perf harness (repro.perf)."""

from __future__ import annotations

import json
import os

import pytest

from repro.perf import BenchmarkRunner, host_metadata, validate_payload
from repro.perf.__main__ import main


@pytest.fixture(scope="module")
def tiny_runner_payloads(tmp_path_factory):
    """One small before/after ladder run shared by the assertions below."""
    out = tmp_path_factory.mktemp("bench")
    runner = BenchmarkRunner(ladder=(40, 80), sample_size=20, output_dir=out)
    matching = runner.run_matching()
    discovery = runner.run_discovery()
    return runner, matching, discovery


class TestBenchmarkRunner:
    def test_rejects_bad_ladder(self):
        with pytest.raises(ValueError):
            BenchmarkRunner(ladder=())
        with pytest.raises(ValueError):
            BenchmarkRunner(ladder=(100, 0))

    def test_rejects_unknown_engine(self):
        runner = BenchmarkRunner(ladder=(10,))
        with pytest.raises(ValueError):
            runner.matcher_for("warp-drive")
        with pytest.raises(ValueError):
            runner.discovery_for("warp-drive")

    def test_matching_payload_shape(self, tiny_runner_payloads):
        _, matching, _ = tiny_runner_payloads
        assert matching["benchmark"] == "matching"
        assert [rung["rows"] for rung in matching["rungs"]] == [40, 80]
        for rung in matching["rungs"]:
            assert set(rung["engines"]) == {"seed", "packed"}
            assert rung["identical"] is True
            for record in rung["engines"].values():
                assert record["num_pairs"] > 0
                assert record["stages"]["row_matching"] >= 0
        assert validate_payload(matching) == []

    def test_discovery_payload_records_stage_breakdown(self, tiny_runner_payloads):
        _, _, discovery = tiny_runner_payloads
        for rung in discovery["rungs"]:
            assert rung["identical"] is True
            for record in rung["engines"].values():
                stages = record["stages"]
                assert "row_matching" in stages
                assert "applying_transformations" in stages
                assert record["num_transformations"] > 0
                assert record["cover_size"] > 0
        assert validate_payload(discovery) == []

    def test_max_seed_rows_caps_the_slow_engine(self):
        runner = BenchmarkRunner(ladder=(30, 60), sample_size=15)
        payload = runner.run_matching(max_seed_rows=30)
        by_rows = {rung["rows"]: rung for rung in payload["rungs"]}
        assert set(by_rows[30]["engines"]) == {"seed", "packed"}
        assert set(by_rows[60]["engines"]) == {"packed"}
        assert "speedup" not in by_rows[60]

    def test_write_emits_json_file(self, tiny_runner_payloads, tmp_path):
        runner, matching, _ = tiny_runner_payloads
        runner.output_dir = tmp_path
        path = runner.write("matching", matching)
        assert path.name == "BENCH_matching.json"
        assert json.loads(path.read_text())["benchmark"] == "matching"

    def test_host_metadata_embedded(self, tiny_runner_payloads):
        # Multi-core numbers are only interpretable with the host context.
        _, matching, discovery = tiny_runner_payloads
        for payload in (matching, discovery):
            host = payload["host"]
            assert host["cpu_count"] == (os.cpu_count() or 1)
            assert host["start_method"] in ("fork", "spawn", "forkserver")
            assert payload["config"]["workers"] == [1]
        assert host_metadata()["cpu_count"] == (os.cpu_count() or 1)


class TestWorkersAxis:
    @pytest.fixture(scope="class")
    def workers_payloads(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench-workers")
        runner = BenchmarkRunner(
            ladder=(60,), sample_size=20, workers=(1, 2), output_dir=out
        )
        return runner, runner.run_matching(), runner.run_discovery()

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            BenchmarkRunner(ladder=(10,), workers=())
        with pytest.raises(ValueError):
            BenchmarkRunner(ladder=(10,), workers=(2, 0))

    def test_seed_engine_is_serial_only(self):
        runner = BenchmarkRunner(ladder=(10,), workers=(1, 2))
        with pytest.raises(ValueError):
            runner.matcher_for("seed", num_workers=2)
        with pytest.raises(ValueError):
            runner.discovery_for("seed", num_workers=2)

    def test_records_one_engine_per_worker_count(self, workers_payloads):
        _, matching, discovery = workers_payloads
        for payload in (matching, discovery):
            for rung in payload["rungs"]:
                assert set(rung["engines"]) == {"seed", "packed", "packed-w2"}
                assert rung["engines"]["packed-w2"]["num_workers"] == 2
                assert rung["identical"] is True
            assert payload["config"]["workers"] == [1, 2]
            assert validate_payload(payload) == []

    def test_parallel_efficiency_recorded(self, workers_payloads):
        _, matching, discovery = workers_payloads
        for payload in (matching, discovery):
            for rung in payload["rungs"]:
                parallel = rung["parallel"]["packed-w2"]
                assert parallel["workers"] == 2
                assert parallel["speedup_vs_serial"] > 0
                assert parallel["efficiency"] == pytest.approx(
                    parallel["speedup_vs_serial"] / 2, abs=0.01
                )

    def test_identical_compares_worker_variants_without_seed(self):
        # Even with the seed engine skipped, the rung still carries the
        # equivalence flag: packed vs packed-w2 on real outputs.
        runner = BenchmarkRunner(ladder=(40,), sample_size=15, workers=(1, 2))
        payload = runner.run_matching(engines=("packed",))
        rung = payload["rungs"][0]
        assert set(rung["engines"]) == {"packed", "packed-w2"}
        assert rung["identical"] is True
        assert "speedup" not in rung


class TestValidatePayload:
    def test_flags_empty_payload(self):
        assert validate_payload({}) == ["no rungs recorded"]

    def test_flags_missing_stages_and_outputs(self):
        payload = {
            "rungs": [
                {
                    "rows": 10,
                    "engines": {
                        "packed": {"stages": {}, "total_s": 0.0, "num_pairs": 0}
                    },
                }
            ]
        }
        problems = validate_payload(payload)
        assert any("no stage timings" in problem for problem in problems)
        assert any("total_s" in problem for problem in problems)
        assert any("no candidate pairs" in problem for problem in problems)

    def test_flags_disagreeing_engines(self):
        payload = {
            "rungs": [
                {
                    "rows": 10,
                    "engines": {
                        "packed": {
                            "stages": {"row_matching": 0.1},
                            "total_s": 0.1,
                            "num_pairs": 3,
                        }
                    },
                    "identical": False,
                }
            ]
        }
        assert any(
            "disagree" in problem for problem in validate_payload(payload)
        )


class TestCli:
    def test_smoke_mode_writes_reports_and_passes(self, tmp_path, capsys):
        exit_code = main(
            ["--smoke", "--ladder", "60", "--sample-size", "20", "--out", str(tmp_path)]
        )
        assert exit_code == 0
        assert (tmp_path / "BENCH_matching.json").exists()
        assert (tmp_path / "BENCH_discovery.json").exists()
        captured = capsys.readouterr()
        assert "rows=60" in captured.out

    def test_bad_engine_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--engines", "warp-drive", "--out", str(tmp_path)])
