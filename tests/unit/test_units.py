"""Unit tests for the transformation units (repro.core.units)."""

from __future__ import annotations

import pytest

from repro.core.units import (
    UNIT_CLASSES,
    UNIT_NAMES,
    Literal,
    Split,
    SplitSubstr,
    Substr,
    TwoCharSplitSubstr,
)


class TestLiteral:
    def test_returns_text_regardless_of_input(self):
        unit = Literal("abc")
        assert unit.apply("anything") == "abc"
        assert unit.apply("") == "abc"

    def test_is_constant(self):
        assert Literal("x").is_constant is True

    def test_empty_literal_is_allowed(self):
        assert Literal("").apply("input") == ""

    def test_equality_and_hash(self):
        assert Literal("a") == Literal("a")
        assert Literal("a") != Literal("b")
        assert hash(Literal("a")) == hash(Literal("a"))

    def test_describe(self):
        assert Literal("x").describe() == "Literal('x')"


class TestSubstr:
    def test_copies_requested_range(self):
        assert Substr(0, 3).apply("abcdef") == "abc"
        assert Substr(2, 5).apply("abcdef") == "cde"

    def test_full_string(self):
        assert Substr(0, 6).apply("abcdef") == "abcdef"

    def test_out_of_range_returns_none(self):
        assert Substr(0, 7).apply("abcdef") is None
        assert Substr(4, 10).apply("abc") is None

    def test_not_constant(self):
        assert Substr(0, 1).is_constant is False

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            Substr(-1, 3)
        with pytest.raises(ValueError):
            Substr(3, 3)
        with pytest.raises(ValueError):
            Substr(4, 2)

    def test_describe(self):
        assert Substr(1, 4).describe() == "Substr(1, 4)"


class TestSplit:
    def test_index_is_one_based(self):
        # Paper example: Split(',', 1) on "prus-czarnecki, andrzej" gives the
        # first piece.
        assert Split(",", 1).apply("prus-czarnecki, andrzej") == "prus-czarnecki"
        assert Split(",", 2).apply("prus-czarnecki, andrzej") == " andrzej"

    def test_missing_delimiter_returns_none(self):
        assert Split("|", 1).apply("a,b") is None

    def test_index_out_of_range_returns_none(self):
        assert Split(",", 3).apply("a,b") is None

    def test_consecutive_delimiters_yield_empty_piece(self):
        assert Split(",", 2).apply("a,,b") == ""

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            Split("", 1)
        with pytest.raises(ValueError):
            Split(",", 0)

    def test_describe(self):
        assert Split(",", 1).describe() == "Split(',', 1)"


class TestSplitSubstr:
    def test_paper_example(self):
        # SplitSubstr(' ', 2, 0, 1) on "prus-czarnecki, andrzej" selects the
        # second space-separated piece ("andrzej") and takes its first letter.
        unit = SplitSubstr(" ", 2, 0, 1)
        assert unit.apply("prus-czarnecki, andrzej") == "a"
        assert unit.apply("bowling, michael") == "m"
        assert unit.apply("gosgnach, simon") == "s"

    def test_substring_relative_to_piece(self):
        assert SplitSubstr("-", 2, 1, 3).apply("ab-cdef") == "de"

    def test_missing_delimiter_returns_none(self):
        assert SplitSubstr("|", 1, 0, 1).apply("abc") is None

    def test_piece_too_short_returns_none(self):
        assert SplitSubstr("-", 1, 0, 5).apply("ab-cdef") is None

    def test_index_out_of_range_returns_none(self):
        assert SplitSubstr("-", 3, 0, 1).apply("ab-cd") is None

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SplitSubstr("", 1, 0, 1)
        with pytest.raises(ValueError):
            SplitSubstr("-", 0, 0, 1)
        with pytest.raises(ValueError):
            SplitSubstr("-", 1, 2, 2)


class TestTwoCharSplitSubstr:
    def test_splits_on_both_delimiters(self):
        unit = TwoCharSplitSubstr(",", " ", 3, 0, 7)
        # "bowling, michael" splits on ',' and ' ' into ["bowling", "", "michael"]
        assert unit.apply("bowling, michael") == "michael"

    def test_requires_at_least_one_delimiter_present(self):
        assert TwoCharSplitSubstr(",", ";", 1, 0, 1).apply("abc") is None

    def test_single_delimiter_behaves_like_split_substr(self):
        two = TwoCharSplitSubstr(",", ";", 2, 0, 3)
        one = SplitSubstr(",", 2, 0, 3)
        assert two.apply("abc,defg") == one.apply("abc,defg") == "def"

    def test_equal_delimiters_raise(self):
        with pytest.raises(ValueError):
            TwoCharSplitSubstr(",", ",", 1, 0, 1)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            TwoCharSplitSubstr("", ",", 1, 0, 1)
        with pytest.raises(ValueError):
            TwoCharSplitSubstr(",", ";", 0, 0, 1)
        with pytest.raises(ValueError):
            TwoCharSplitSubstr(",", ";", 1, 3, 3)


class TestLemma1Expressiveness:
    """TwoCharSplitSubstr + SplitSubstr cover Auto-Join's SplitSplitSubstr cases."""

    def test_text_between_two_different_delimiters(self):
        # Input of shape X c1 Y c2 Z; select Y.
        source = "alpha,beta;gamma"
        assert TwoCharSplitSubstr(",", ";", 2, 0, 4).apply(source) == "beta"

    def test_text_before_first_delimiter(self):
        source = "alpha,beta;gamma"
        assert SplitSubstr(",", 1, 0, 5).apply(source) == "alpha"

    def test_text_after_second_delimiter(self):
        source = "alpha,beta;gamma"
        assert SplitSubstr(";", 2, 0, 5).apply(source) == "gamma"

    def test_text_between_repeated_first_delimiter(self):
        # Shape X c1 Y c1 Z c2 W; the middle piece is reachable with Split.
        source = "a,b,c;d"
        assert Split(",", 2).apply(source) == "b"


class TestUnitRegistry:
    def test_all_units_listed(self):
        assert set(UNIT_NAMES) == {
            "Literal",
            "Substr",
            "Split",
            "SplitSubstr",
            "TwoCharSplitSubstr",
        }

    def test_classes_match_names(self):
        for name in UNIT_NAMES:
            assert UNIT_CLASSES[name].__name__ == name

    def test_units_are_hashable_value_objects(self):
        units = {
            Literal("a"),
            Substr(0, 1),
            Split(",", 1),
            SplitSubstr(",", 1, 0, 1),
            TwoCharSplitSubstr(",", ";", 1, 0, 1),
        }
        assert len(units) == 5
