"""Unit tests for Transformation (repro.core.transformation)."""

from __future__ import annotations

import pytest

from repro.core.transformation import Transformation, apply_all
from repro.core.units import Literal, Split, SplitSubstr, Substr


@pytest.fixture
def paper_transformation() -> Transformation:
    """The transformation from the Auto-Join walk-through in Section 3.2."""
    return Transformation(
        [SplitSubstr(" ", 2, 0, 1), Literal(" "), Split(",", 1)]
    )


class TestApply:
    def test_concatenates_unit_outputs(self, paper_transformation):
        assert paper_transformation.apply("bowling, michael") == "m bowling"
        assert paper_transformation.apply("gosgnach, simon") == "s gosgnach"

    def test_returns_none_when_any_unit_fails(self, paper_transformation):
        # No space or comma: Split/SplitSubstr are not applicable.
        assert paper_transformation.apply("nodelimiters") is None

    def test_covers(self, paper_transformation):
        assert paper_transformation.covers("bowling, michael", "m bowling")
        assert not paper_transformation.covers("bowling, michael", "x bowling")

    def test_literal_only_transformation(self):
        transformation = Transformation([Literal("constant")])
        assert transformation.apply("whatever") == "constant"
        assert transformation.is_constant is True

    def test_single_substr(self):
        transformation = Transformation([Substr(0, 3)])
        assert transformation.apply("abcdef") == "abc"


class TestValueSemantics:
    def test_equality(self):
        left = Transformation([Literal("a"), Substr(0, 1)])
        right = Transformation([Literal("a"), Substr(0, 1)])
        assert left == right
        assert hash(left) == hash(right)

    def test_inequality_on_order(self):
        left = Transformation([Literal("a"), Substr(0, 1)])
        right = Transformation([Substr(0, 1), Literal("a")])
        assert left != right

    def test_usable_in_sets(self):
        transformations = {
            Transformation([Literal("a")]),
            Transformation([Literal("a")]),
            Transformation([Literal("b")]),
        }
        assert len(transformations) == 2

    def test_empty_transformation_rejected(self):
        with pytest.raises(ValueError):
            Transformation([])

    def test_len_and_iteration(self, paper_transformation):
        assert len(paper_transformation) == 3
        assert list(paper_transformation) == list(paper_transformation.units)

    def test_repr_contains_units(self, paper_transformation):
        rendered = repr(paper_transformation)
        assert "SplitSubstr" in rendered and "Literal" in rendered


class TestQualityMeasures:
    def test_num_placeholders_counts_non_constant_units(self, paper_transformation):
        assert paper_transformation.num_placeholders == 2
        assert paper_transformation.num_literals == 1

    def test_constant_detection(self):
        assert Transformation([Literal("a"), Literal("b")]).is_constant
        assert not Transformation([Literal("a"), Substr(0, 1)]).is_constant


class TestSimplified:
    def test_merges_adjacent_literals(self):
        transformation = Transformation(
            [Literal("a"), Literal("b"), Substr(0, 1), Literal("c")]
        )
        simplified = transformation.simplified()
        assert simplified == Transformation([Literal("ab"), Substr(0, 1), Literal("c")])

    def test_noop_when_nothing_to_merge(self):
        transformation = Transformation([Literal("a"), Substr(0, 1)])
        assert transformation.simplified() is transformation

    def test_semantics_preserved(self):
        transformation = Transformation([Literal("x"), Literal("y"), Substr(1, 3)])
        simplified = transformation.simplified()
        for source in ["abcdef", "zz", "hello world"]:
            assert transformation.apply(source) == simplified.apply(source)


class TestApplyAll:
    def test_applies_each_transformation(self):
        transformations = [
            Transformation([Substr(0, 2)]),
            Transformation([Literal("k")]),
            Transformation([Split("-", 2)]),
        ]
        assert apply_all(transformations, "ab-cd") == ["ab", "k", "cd"]
