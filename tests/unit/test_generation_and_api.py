"""Unit tests for transformation generation and the top-level package API."""

from __future__ import annotations

import pytest

import repro
from repro.core.config import DiscoveryConfig
from repro.core.generation import (
    MAX_TRANSFORMATIONS_PER_SKELETON,
    TransformationGenerator,
)
from repro.core.pairs import (
    RowPair,
    average_source_length,
    average_target_length,
    pairs_from_strings,
)
from repro.core.skeletons import SkeletonBuilder


class TestTransformationGenerator:
    def test_every_generated_transformation_reproduces_the_target(self):
        config = DiscoveryConfig()
        builder = SkeletonBuilder(config)
        generator = TransformationGenerator(config)
        source, target = "Rafiei, Davood", "D Rafiei"
        skeletons = builder.build(source, target)
        transformations = list(generator.from_row(source, skeletons))
        assert transformations
        for transformation in transformations:
            assert transformation.apply(source) == target

    def test_generation_is_lazy_and_capped(self):
        config = DiscoveryConfig()
        builder = SkeletonBuilder(config)
        generator = TransformationGenerator(config)
        source = "abc def ghi jkl"
        target = "abc def ghi"
        skeletons = builder.build(source, target)
        iterator = generator.from_row(source, skeletons)
        first = next(iterator)
        assert first.apply(source) == target
        remaining = sum(1 for _ in iterator)
        assert remaining + 1 <= MAX_TRANSFORMATIONS_PER_SKELETON * len(skeletons)

    def test_placeholder_without_candidates_falls_back_to_literal(self):
        """A skeleton placeholder with no unit candidates still yields programs."""
        config = DiscoveryConfig(enabled_units=("Literal",))
        builder = SkeletonBuilder(config)
        generator = TransformationGenerator(config)
        source, target = "abcdef", "abc-def"
        skeletons = builder.build(source, target)
        transformations = list(generator.from_row(source, skeletons))
        assert transformations
        for transformation in transformations:
            assert transformation.apply(source) == target


class TestRowPairHelpers:
    def test_pairs_from_strings_sets_row_indices(self):
        pairs = pairs_from_strings([("a", "b"), ("c", "d")])
        assert [(p.source_row, p.target_row) for p in pairs] == [(0, 0), (1, 1)]

    def test_reversed_swaps_sides(self):
        pair = RowPair("src", "tgt", source_row=3, target_row=7)
        flipped = pair.reversed()
        assert flipped.source == "tgt" and flipped.target == "src"
        assert flipped.source_row == 7 and flipped.target_row == 3

    def test_average_lengths(self):
        pairs = pairs_from_strings([("ab", "xyz"), ("abcd", "x")])
        assert average_source_length(pairs) == 3.0
        assert average_target_length(pairs) == 2.0
        assert average_source_length([]) == 0.0
        assert average_target_length([]) == 0.0


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_discover_transformations_shortcut(self):
        result = repro.discover_transformations(
            [("Rafiei, Davood", "D Rafiei"), ("Bowling, Michael", "M Bowling")]
        )
        assert result.top_coverage == 1.0

    def test_core_exports_resolve(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_readme_quickstart_snippet_behaviour(self):
        engine = repro.TransformationDiscovery()
        result = engine.discover_from_strings(
            [
                ("Rafiei, Davood", "D Rafiei"),
                ("Bowling, Michael", "M Bowling"),
                ("Gosgnach, Simon", "S Gosgnach"),
            ]
        )
        assert result.best.transformation.apply("Nascimento, Mario") == "M Nascimento"


class TestErrorMessages:
    def test_unknown_dataset_error_lists_options(self):
        from repro.datasets.registry import load_dataset

        with pytest.raises(KeyError, match="available"):
            load_dataset("bogus")

    def test_missing_column_error_lists_columns(self):
        table = repro.Table({"a": ["1"]})
        with pytest.raises(KeyError, match="available"):
            table.column("b")
