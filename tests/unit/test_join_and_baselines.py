"""Unit tests for the joiner, the pipeline, and the baseline methods."""

from __future__ import annotations

import pytest

from repro.baselines.autojoin import AutoJoin, AutoJoinConfig
from repro.baselines.fuzzyjoin import AutoFuzzyJoin, FuzzyJoinConfig
from repro.baselines.naive import NaiveConfig, NaiveDiscovery
from repro.core.coverage import CoverageResult
from repro.core.transformation import Transformation
from repro.core.units import Literal, Split, SplitSubstr, Substr
from repro.join.joiner import TransformationJoiner
from repro.join.pipeline import JoinPipeline
from repro.table.table import Table


@pytest.fixture
def paper_transformation():
    return Transformation([SplitSubstr(" ", 2, 0, 1), Literal(" "), Split(",", 1)])


class TestTransformationJoiner:
    def test_joins_on_transformed_values(self, paper_transformation):
        joiner = TransformationJoiner([paper_transformation])
        result = joiner.join_values(
            ["Rafiei, Davood", "Bowling, Michael"],
            ["M Bowling", "D Rafiei", "Z Nobody"],
        )
        assert result.as_set() == {(0, 1), (1, 0)}
        assert result.matched_by[(0, 1)] == paper_transformation

    def test_join_tables(self, staff_tables, paper_transformation):
        source, target = staff_tables
        joiner = TransformationJoiner([paper_transformation])
        result = joiner.join(
            source, target, source_column="Name", target_column="Name"
        )
        assert result.as_set() == {(i, i) for i in range(source.num_rows)}

    def test_materialize_produces_joined_table(self, staff_tables, paper_transformation):
        source, target = staff_tables
        joiner = TransformationJoiner([paper_transformation])
        joined = joiner.materialize(
            source, target, source_column="Name", target_column="Name"
        )
        assert joined.num_rows == source.num_rows
        assert "Name_source" in joined and "Phone_target" in joined

    def test_first_matching_transformation_wins(self):
        first = Transformation([Substr(0, 1)])
        second = Transformation([Split("-", 1)])
        joiner = TransformationJoiner([first, second])
        result = joiner.join_values(["a-b"], ["a"])
        assert result.matched_by[(0, 0)] == first

    def test_support_filter_removes_low_support_transformations(self):
        good = Transformation([Split("-", 1)])
        niche = Transformation([Literal("only one")])
        coverage = [
            CoverageResult(good, frozenset({0, 1, 2, 3})),
            CoverageResult(niche, frozenset({0})),
        ]
        joiner = TransformationJoiner(
            [good, niche],
            min_support=0.5,
            coverage_results=coverage,
            num_candidate_pairs=4,
        )
        assert joiner.transformations == [good]

    def test_support_filter_never_empties_the_set(self):
        rare = Transformation([Split("-", 1)])
        coverage = [CoverageResult(rare, frozenset({0}))]
        joiner = TransformationJoiner(
            [rare], min_support=0.9, coverage_results=coverage, num_candidate_pairs=100
        )
        assert joiner.transformations == [rare]

    def test_constant_transformations_are_never_applied(self):
        constant = Transformation([Literal("P Richardson")])
        real = Transformation([Split(",", 1)])
        joiner = TransformationJoiner([constant, real])
        assert joiner.transformations == [real]
        result = joiner.join_values(["Kowalski, Chen"], ["P Richardson"])
        assert result.pairs == []

    def test_invalid_support_configuration(self):
        with pytest.raises(ValueError):
            TransformationJoiner([], min_support=1.5)
        with pytest.raises(ValueError):
            TransformationJoiner([], min_support=0.5)

    def test_support_filter_requires_real_pair_count(self):
        # Guessing the pair count from the covered rows (max row + 1)
        # undercounts when trailing rows are uncovered and silently loosens
        # the threshold — the joiner must refuse instead.
        rare = Transformation([Split("-", 1)])
        coverage = [CoverageResult(rare, frozenset({0}))]
        with pytest.raises(ValueError, match="num_candidate_pairs"):
            TransformationJoiner(
                [rare], min_support=0.5, coverage_results=coverage
            )


class TestJoinPipeline:
    def test_end_to_end_on_staff_tables(self, staff_tables):
        source, target = staff_tables
        pipeline = JoinPipeline(min_support=0.0)
        outcome = pipeline.run(
            source, target, source_column="Name", target_column="Name"
        )
        expected = {(i, i) for i in range(source.num_rows)}
        assert expected <= outcome.joined_pairs
        assert outcome.discovery.cover_coverage > 0.0
        assert outcome.candidate_pairs >= source.num_rows

    def test_materialization_option(self, staff_tables):
        source, target = staff_tables
        pipeline = JoinPipeline(min_support=0.0, materialize=True)
        outcome = pipeline.run(
            source, target, source_column="Name", target_column="Name"
        )
        assert outcome.joined_table is not None
        assert outcome.joined_table.num_rows == len(outcome.join.pairs)

    def test_materialization_joins_exactly_once(self, staff_tables, monkeypatch):
        # The materialized table is built from the already-computed pairs;
        # the apply stage must not run a second time for it.
        from repro.join import joiner as joiner_module

        calls = []
        original = joiner_module.TransformationJoiner.join_values

        def counting_join_values(self, source_values, target_values):
            calls.append(1)
            return original(self, source_values, target_values)

        monkeypatch.setattr(
            joiner_module.TransformationJoiner, "join_values", counting_join_values
        )
        source, target = staff_tables
        outcome = JoinPipeline(min_support=0.0, materialize=True).run(
            source, target, source_column="Name", target_column="Name"
        )
        assert outcome.joined_table is not None
        assert len(calls) == 1


class TestNaiveBaseline:
    def test_finds_simple_transformation_on_tiny_input(self):
        naive = NaiveDiscovery(NaiveConfig(max_units=1, max_length=6))
        result = naive.discover_from_strings([("ab-cd", "ab"), ("xy-zw", "xy")])
        assert result.best is not None
        assert result.best.coverage == 2
        best = result.best.transformation
        assert best.apply("qq-rr") == "qq"

    def test_enumeration_counts_reported(self):
        naive = NaiveDiscovery(NaiveConfig(max_units=1, max_length=4))
        result = naive.discover_from_strings([("abcd", "ab")])
        assert result.enumerated > 0
        assert not result.timed_out

    def test_transformation_cap_triggers_timeout_flag(self):
        naive = NaiveDiscovery(
            NaiveConfig(max_units=2, max_length=6, max_transformations=50)
        )
        result = naive.discover_from_strings([("abc-def", "abc")])
        assert result.timed_out
        assert result.enumerated == 50

    def test_empty_input(self):
        result = NaiveDiscovery().discover([])
        assert result.best is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NaiveConfig(max_units=0)
        with pytest.raises(ValueError):
            NaiveConfig(max_length=0)


class TestAutoJoinBaseline:
    def test_finds_single_rule_transformation(self):
        pairs = [
            ("Rafiei, Davood", "D Rafiei"),
            ("Bowling, Michael", "M Bowling"),
            ("Gosgnach, Simon", "S Gosgnach"),
            ("Nascimento, Mario", "M Nascimento"),
        ]
        autojoin = AutoJoin(AutoJoinConfig(num_subsets=4, subset_size=2, seed=1))
        result = autojoin.discover_from_strings(pairs)
        assert result.num_transformations >= 1
        assert result.top_coverage == 1.0

    def test_struggles_with_multiple_rules(self):
        """With subsets drawn across two incompatible rules, some subsets fail."""
        pairs = [
            ("Rafiei, Davood", "D Rafiei"),
            ("Bowling, Michael", "M Bowling"),
            ("alpha-beta", "beta/alpha"),
            ("gamma-delta", "delta/gamma"),
        ]
        autojoin = AutoJoin(AutoJoinConfig(num_subsets=6, subset_size=2, seed=3))
        result = autojoin.discover_from_strings(pairs)
        assert result.subsets_tried == 6
        assert result.subsets_succeeded <= result.subsets_tried

    def test_empty_input(self):
        result = AutoJoin().discover([])
        assert result.transformations == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoJoinConfig(num_subsets=0)
        with pytest.raises(ValueError):
            AutoJoinConfig(subset_size=0)
        with pytest.raises(ValueError):
            AutoJoinConfig(max_depth=0)

    def test_transformations_actually_cover_reported_rows(self):
        pairs = [
            ("(780) 432-3636", "780-432-3636"),
            ("(780) 433-6545", "780-433-6545"),
            ("(780) 428-2108", "780-428-2108"),
        ]
        autojoin = AutoJoin(AutoJoinConfig(num_subsets=3, subset_size=2, seed=0))
        result = autojoin.discover_from_strings(pairs)
        for coverage in result.coverage_results:
            for row in coverage.covered_rows:
                source, target = pairs[row]
                assert coverage.transformation.apply(source) == target


class TestAutoFuzzyJoinBaseline:
    def test_joins_similar_strings(self):
        fuzzy = AutoFuzzyJoin()
        result = fuzzy.join_values(
            ["Rafiei, Davood", "Bowling, Michael"],
            ["Davood Rafiei", "Michael Bowling", "Unrelated Person"],
        )
        assert (0, 0) in result.as_set()
        assert (1, 1) in result.as_set()

    def test_returns_no_pairs_for_dissimilar_columns(self):
        fuzzy = AutoFuzzyJoin(FuzzyJoinConfig(thresholds=(0.6,)))
        result = fuzzy.join_values(["aaaa", "bbbb"], ["cccc", "dddd"])
        assert result.pairs == []

    def test_join_tables(self, staff_tables):
        source, target = staff_tables
        result = AutoFuzzyJoin().join(
            source, target, source_column="Name", target_column="Name"
        )
        assert len(result.pairs) > 0

    def test_reports_chosen_configuration(self):
        result = AutoFuzzyJoin().join_values(
            ["alpha beta", "gamma delta"], ["alpha beta", "gamma delta"]
        )
        assert result.similarity in ("token_jaccard", "ngram_jaccard", "containment")
        assert 0.0 <= result.threshold <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FuzzyJoinConfig(ngram_size=0)
        with pytest.raises(ValueError):
            FuzzyJoinConfig(thresholds=())
        with pytest.raises(ValueError):
            FuzzyJoinConfig(thresholds=(1.5,))
        with pytest.raises(ValueError):
            FuzzyJoinConfig(similarities=("bogus",))
