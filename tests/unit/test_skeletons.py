"""Unit tests for skeleton construction (repro.core.skeletons)."""

from __future__ import annotations

import pytest

from repro.core.config import DiscoveryConfig
from repro.core.skeletons import Skeleton, SkeletonBuilder, SkeletonPiece


def placeholder_texts(skeleton: Skeleton) -> list[str]:
    return [p.text for p in skeleton.pieces if p.is_placeholder]


class TestSkeletonPiece:
    def test_placeholder_piece_requires_placeholder(self):
        with pytest.raises(ValueError):
            SkeletonPiece(text="abc", is_placeholder=True)

    def test_literal_piece_must_not_carry_placeholder(self):
        from repro.core.placeholders import Placeholder

        placeholder = Placeholder(
            text="abc", target_start=0, target_end=3, source_matches=(0,)
        )
        with pytest.raises(ValueError):
            SkeletonPiece(text="abc", is_placeholder=False, placeholder=placeholder)

    def test_empty_piece_rejected(self):
        with pytest.raises(ValueError):
            SkeletonPiece(text="", is_placeholder=False)


class TestSkeleton:
    def test_target_text_reconstruction(self):
        builder = SkeletonBuilder()
        skeletons = builder.build("bowling, michael", "michael.bowling@ualberta.ca")
        for skeleton in skeletons:
            assert skeleton.target_text == "michael.bowling@ualberta.ca"

    def test_describe_uses_paper_notation(self):
        builder = SkeletonBuilder()
        skeletons = builder.build("abc def", "abc-def")
        rendered = skeletons[0].describe()
        assert rendered.startswith("<(")
        assert "P:" in rendered or "L:" in rendered

    def test_empty_skeleton_rejected(self):
        with pytest.raises(ValueError):
            Skeleton(())


class TestSkeletonBuilder:
    def test_paper_victor_kasumba_example(self):
        """The three skeleton kinds of the Section 4.1.3 example are produced."""
        builder = SkeletonBuilder()
        skeletons = builder.build("Victor Robbie Kasumba", "Victor R. Kasumba")
        # Maximal skeleton: the long 'Victor R' placeholder is present.
        assert any("Victor R" in placeholder_texts(s) for s in skeletons)
        # Split skeleton: 'Victor' and 'R' appear as separate placeholders.
        assert any(
            "Victor" in placeholder_texts(s) and "R" in placeholder_texts(s)
            for s in skeletons
        )
        # Literal-only skeleton.
        assert any(s.num_placeholders == 0 for s in skeletons)

    def test_every_skeleton_spells_the_target(self):
        builder = SkeletonBuilder()
        cases = [
            ("Rafiei, Davood", "D Rafiei"),
            ("(780) 432-3636", "1-780-432-3636"),
            ("abc", "xyz"),
        ]
        for source, target in cases:
            for skeleton in builder.build(source, target):
                assert skeleton.target_text == target

    def test_empty_target_produces_no_skeletons(self):
        builder = SkeletonBuilder()
        assert builder.build("abc", "") == []

    def test_literal_only_skeleton_can_be_disabled(self):
        config = DiscoveryConfig(include_literal_only_skeleton=False)
        builder = SkeletonBuilder(config)
        skeletons = builder.build("abc", "xyz")
        assert skeletons == []

    def test_placeholder_budget_demotes_rather_than_drops(self):
        """Chance single-character matches do not discard the skeleton."""
        config = DiscoveryConfig(max_placeholders=2)
        builder = SkeletonBuilder(config)
        source = "bowling, michael"
        target = "michael.bowling@ualberta.ca"
        skeletons = builder.build(source, target)
        with_placeholders = [s for s in skeletons if s.num_placeholders > 0]
        assert with_placeholders, "expected at least one non-literal skeleton"
        for skeleton in with_placeholders:
            assert skeleton.num_placeholders <= 2
        # The informative placeholders survive the demotion.
        best = max(with_placeholders, key=lambda s: s.num_placeholders)
        texts = placeholder_texts(best)
        assert "michael" in texts and "bowling" in texts

    def test_no_duplicate_skeletons(self):
        builder = SkeletonBuilder()
        skeletons = builder.build("abcdef", "abcdef")
        signatures = [
            tuple((p.text, p.is_placeholder) for p in s.pieces) for s in skeletons
        ]
        assert len(signatures) == len(set(signatures))

    def test_separator_splitting_can_be_disabled(self):
        config = DiscoveryConfig(split_placeholders_on_separators=False)
        builder = SkeletonBuilder(config)
        skeletons = builder.build("Victor Robbie Kasumba", "Victor R. Kasumba")
        assert not any(
            placeholder_texts(s) == ["Victor", "R", "Kasumba"] for s in skeletons
        )
