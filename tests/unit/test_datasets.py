"""Unit tests for the dataset generators (repro.datasets)."""

from __future__ import annotations

import pytest

from repro.core.pairs import pairs_from_strings
from repro.datasets.base import BenchmarkDataset, TablePair, dataset_statistics
from repro.datasets.open_data import generate_open_data
from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.spreadsheet import (
    FAMILIES,
    generate_spreadsheet_dataset,
    generate_task_pair,
)
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_length_sweep_pair,
    generate_synthetic_dataset,
    generate_table_pair,
)
from repro.datasets.web_tables import TOPICS, generate_pair, generate_web_tables_dataset
from repro.table.table import Table


class TestTablePair:
    def make_pair(self) -> TablePair:
        return TablePair(
            name="toy",
            source=Table({"j": ["a, b", "c, d"], "extra": ["1", "2"]}),
            target=Table({"j": ["b a", "d c"]}),
            source_column="j",
            target_column="j",
            golden_pairs=[(0, 0), (1, 1)],
        )

    def test_basic_properties(self):
        pair = self.make_pair()
        assert pair.num_source_rows == 2
        assert pair.num_target_rows == 2
        assert pair.average_join_length > 0

    def test_golden_string_pairs(self):
        pair = self.make_pair()
        assert pair.golden_string_pairs() == [("a, b", "b a"), ("c, d", "d c")]

    def test_save_and_load_round_trip(self, tmp_path):
        pair = self.make_pair()
        pair.save(tmp_path)
        loaded = TablePair.load(
            tmp_path, "toy", source_column="j", target_column="j"
        )
        assert loaded.source == pair.source
        assert loaded.target == pair.target
        assert loaded.golden_pairs == pair.golden_pairs

    def test_dataset_statistics(self):
        dataset = BenchmarkDataset(name="toy", pairs=[self.make_pair()])
        stats = dataset_statistics(dataset)
        assert stats["num_tables"] == 1
        assert stats["avg_rows"] == 2
        assert stats["avg_golden_pairs"] == 2

    def test_dataset_subset(self):
        dataset = BenchmarkDataset(
            name="toy", pairs=[self.make_pair(), self.make_pair()]
        )
        assert len(dataset.subset(1)) == 1
        assert len(list(iter(dataset))) == 2
        assert dataset[0].name == "toy"


class TestSyntheticGenerator:
    def test_reproducible_with_same_seed(self):
        pair_a, rules_a = generate_table_pair(SyntheticConfig(num_rows=20, seed=5))
        pair_b, rules_b = generate_table_pair(SyntheticConfig(num_rows=20, seed=5))
        assert pair_a.source == pair_b.source
        assert pair_a.target == pair_b.target
        assert rules_a == rules_b

    def test_different_seeds_differ(self):
        pair_a, _ = generate_table_pair(SyntheticConfig(num_rows=20, seed=1))
        pair_b, _ = generate_table_pair(SyntheticConfig(num_rows=20, seed=2))
        assert pair_a.source != pair_b.source

    def test_row_lengths_respect_range(self):
        config = SyntheticConfig(num_rows=30, min_length=20, max_length=35, seed=3)
        pair, _ = generate_table_pair(config)
        for value in pair.source["value"]:
            assert 20 <= len(value) <= 35

    def test_synth_nl_uses_long_rows(self):
        config = SyntheticConfig.synth(10, long_rows=True, seed=0)
        assert (config.min_length, config.max_length) == (40, 70)

    def test_targets_produced_by_ground_truth_rules(self):
        config = SyntheticConfig(num_rows=25, seed=11)
        pair, rules = generate_table_pair(config)
        for source, target in pair.golden_string_pairs():
            assert any(rule.apply(source) == target for rule in rules)

    def test_ground_truth_rules_have_expected_shape(self):
        config = SyntheticConfig(num_rows=5, seed=2)
        _, rules = generate_table_pair(config)
        assert len(rules) == config.num_transformations
        for rule in rules:
            assert rule.num_placeholders == config.placeholders_per_transformation

    def test_dataset_of_multiple_tables(self):
        dataset = generate_synthetic_dataset(10, num_tables=4, seed=9)
        assert len(dataset) == 4
        assert dataset.name == "Synth-10"
        long_dataset = generate_synthetic_dataset(10, long_rows=True, num_tables=1)
        assert long_dataset.name == "Synth-10L"

    def test_length_sweep_pair_has_fixed_length(self):
        pair, _ = generate_length_sweep_pair(num_rows=10, row_length=40, seed=1)
        assert all(len(v) == 40 for v in pair.source["value"])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_rows=0)
        with pytest.raises(ValueError):
            SyntheticConfig(min_length=1)
        with pytest.raises(ValueError):
            SyntheticConfig(min_length=30, max_length=20)


class TestWebTablesGenerator:
    def test_seventeen_topics(self):
        assert len(TOPICS) == 17

    def test_default_dataset_shape(self):
        dataset = generate_web_tables_dataset(num_pairs=5, num_rows=20, seed=1)
        assert len(dataset) == 5
        for pair in dataset:
            assert pair.num_source_rows == 20
            # Unmatched extra rows only on the target side.
            assert pair.num_target_rows >= 20
            assert len(pair.golden_pairs) == 20

    def test_golden_pairs_are_joinable_by_some_string_relationship(self):
        from repro.utils.text import common_substrings

        pair = generate_pair(TOPICS[0], num_rows=15, noise_rate=0.0, seed=2)
        for source_text, target_text in pair.golden_string_pairs():
            # Some non-trivial block of text is copied from source to target.
            shared = common_substrings(source_text, target_text, min_length=3)
            assert shared, (source_text, target_text)

    def test_noise_rate_zero_removes_annotations(self):
        clean = generate_pair(TOPICS[0], num_rows=30, noise_rate=0.0, seed=3)
        assert not any("(" in v and ")" in v and "retired" in v for v in clean.target["join"])

    def test_reproducibility(self):
        a = generate_web_tables_dataset(num_pairs=3, num_rows=10, seed=7)
        b = generate_web_tables_dataset(num_pairs=3, num_rows=10, seed=7)
        for pair_a, pair_b in zip(a, b):
            assert pair_a.source == pair_b.source
            assert pair_a.target == pair_b.target

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_web_tables_dataset(num_pairs=0)
        with pytest.raises(ValueError):
            generate_pair(TOPICS[0], noise_rate=2.0)


class TestSpreadsheetGenerator:
    def test_families_cover_canonical_flashfill_tasks(self):
        names = {family.name for family in FAMILIES}
        assert {"first-name", "initials", "email-domain", "file-extension"} <= names

    def test_dataset_shape(self):
        dataset = generate_spreadsheet_dataset(num_pairs=10, num_rows=12, seed=0)
        assert len(dataset) == 10
        for pair in dataset:
            assert pair.num_source_rows == 12
            assert len(pair.golden_pairs) == 12

    def test_single_transformation_per_family_is_learnable(self):
        """Each family is syntactic: discovery covers it with few rules."""
        from repro.core.discovery import TransformationDiscovery

        engine = TransformationDiscovery()
        for family in FAMILIES[:6]:
            pair = generate_task_pair(family, num_rows=10, seed=4)
            result = engine.discover_from_strings(pair.golden_string_pairs())
            assert result.cover_coverage == pytest.approx(1.0), family.name

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_spreadsheet_dataset(num_pairs=0)


class TestOpenDataGenerator:
    def test_shape_and_golden_pairs(self):
        pair = generate_open_data(
            num_source_rows=50, num_target_rows=120, match_rate=0.8, seed=0
        )
        assert pair.num_source_rows == 50
        assert pair.num_target_rows == 120
        assert 0 < len(pair.golden_pairs) <= 50

    def test_match_rate_zero_gives_no_golden_pairs(self):
        pair = generate_open_data(
            num_source_rows=30, num_target_rows=60, match_rate=0.0, seed=0
        )
        assert pair.golden_pairs == []

    def test_addresses_share_low_information_ngrams(self):
        """Different target rows share long n-grams (the precision killer)."""
        pair = generate_open_data(num_source_rows=30, num_target_rows=80, seed=1)
        values = list(pair.target["address"])
        shared = [v for v in values if " Street NW" in v or " Avenue NW" in v]
        assert len(shared) > 2

    def test_golden_pairs_are_transformable(self):
        """A transformation learned on golden pairs maps listings to assessments."""
        from repro.core.discovery import TransformationDiscovery

        pair = generate_open_data(
            num_source_rows=60, num_target_rows=100, match_rate=1.0, seed=2
        )
        engine = TransformationDiscovery()
        result = engine.discover(
            pairs_from_strings(pair.golden_string_pairs()[:40])
        )
        assert result.cover_coverage > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_open_data(num_source_rows=0)
        with pytest.raises(ValueError):
            generate_open_data(match_rate=1.5)


class TestRegistry:
    def test_available_datasets(self):
        names = available_datasets()
        assert {"web", "spreadsheet", "open", "synth-50", "synth-500L"} <= set(names)

    def test_load_scaled_down_datasets(self):
        web = load_dataset("web", scale=0.1, seed=0)
        assert len(web) >= 1
        synth = load_dataset("synth-50", scale=0.2, seed=0)
        assert len(synth) >= 1

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("web", scale=0.0)
