"""Unit tests for the set-similarity matching engine and its join family."""

from __future__ import annotations

from array import array

import pytest

from repro.baselines.setsimjoin import (
    cosine_join,
    jaccard_join,
    overlap_join,
    set_similarity_join_values,
)
from repro.kernels.setsim import (
    FILTER_EPS,
    filter_token_postings,
    intersect_count,
    required_overlap,
)
from repro.matching.row_matcher import (
    MATCHER_ENGINES,
    MatchingConfig,
    NGramRowMatcher,
    create_row_matcher,
)
from repro.matching.setsim import (
    SetSimRowMatcher,
    SetSimStats,
    build_token_order,
    ordered_token_ids,
    prefix_length,
    similarity_score,
    size_bounds,
)
from repro.matching.tokenize import (
    qgram_tokens,
    tokenizer_for,
    whitespace_tokens,
)
from repro.table.table import Table


class TestTokenizers:
    def test_whitespace_dedups_preserving_order(self):
        assert whitespace_tokens("b a b  c a") == ["b", "a", "c"]

    def test_whitespace_lowercases_by_default(self):
        assert whitespace_tokens("Apple apple") == ["apple"]
        assert whitespace_tokens("Apple apple", lowercase=False) == [
            "Apple",
            "apple",
        ]

    def test_whitespace_empty(self):
        assert whitespace_tokens("") == []
        assert whitespace_tokens("   ") == []

    def test_qgram_sliding_window(self):
        assert qgram_tokens("abcde", 4) == ["abcd", "bcde"]

    def test_qgram_short_strings_are_their_own_token(self):
        assert qgram_tokens("ab", 4) == ["ab"]
        assert qgram_tokens("abcd", 4) == ["abcd"]
        assert qgram_tokens("", 4) == []

    def test_qgram_dedups(self):
        assert qgram_tokens("aaaaa", 2) == ["aa"]

    def test_qgram_rejects_bad_size(self):
        with pytest.raises(ValueError):
            qgram_tokens("abc", 0)

    def test_tokenizer_for(self):
        assert tokenizer_for("whitespace")("a b") == ["a", "b"]
        assert tokenizer_for("qgram", qgram_size=2)("abc") == ["ab", "bc"]
        with pytest.raises(ValueError):
            tokenizer_for("nope")


class TestTokenOrder:
    def test_rare_tokens_rank_first(self):
        order = build_token_order([["a", "b"], ["b", "c"], ["b"]])
        # df: a=1, c=1, b=3; ties (a, c) break by the token string.
        assert order == {"a": 0, "c": 1, "b": 2}

    def test_ordered_token_ids_sorted(self):
        order = {"x": 2, "y": 0, "z": 1}
        ids = ordered_token_ids(["x", "y", "z"], order)
        assert isinstance(ids, array)
        assert list(ids) == [0, 1, 2]


class TestFilterMath:
    def test_prefix_length_jaccard(self):
        # |x|=4, t=0.5: keep >= 2 tokens, prefix = 4 - 2 + 1 = 3.
        assert prefix_length(4, "jaccard", 0.5) == 3
        assert prefix_length(4, "jaccard", 1.0) == 1
        assert prefix_length(0, "jaccard", 0.5) == 0

    def test_prefix_length_overlap_can_disqualify(self):
        # A 2-token row can never reach overlap 3.
        assert prefix_length(2, "overlap", 3) == 0
        assert prefix_length(3, "overlap", 3) == 1

    def test_size_bounds_jaccard(self):
        low, high = size_bounds(4, "jaccard", 0.5)
        assert (low, high) == (2, 8)

    def test_size_bounds_overlap_unbounded_above(self):
        low, high = size_bounds(4, "overlap", 2)
        assert low == 2
        assert high >= 10**9

    def test_required_overlap(self):
        assert required_overlap(4, 4, "jaccard", 0.5) == pytest.approx(8 / 3)
        assert required_overlap(4, 9, "cosine", 0.5) == pytest.approx(3.0)
        assert required_overlap(4, 9, "overlap", 2) == 2.0

    def test_similarity_score_exact_expressions(self):
        assert similarity_score(2, 3, 3, "jaccard") == 2 / 4
        assert similarity_score(2, 4, 4, "cosine") == 0.5
        assert similarity_score(2, 5, 9, "overlap") == 2.0
        assert similarity_score(0, 3, 3, "jaccard") == 0.0

    def test_filter_eps_is_conservative(self):
        # 3 * (1/3) is 1.0 exactly in binary floats here; the epsilon must
        # keep the size-1 neighbour admitted, not rounded out.
        low, _ = size_bounds(3, "jaccard", 1.0 / 3.0)
        assert low == 1
        assert FILTER_EPS < 1e-6


class TestKernelDispatchers:
    def test_filter_token_postings_small_input_python_path(self):
        rows = array("i", [0, 1, 2])
        positions = array("i", [0, 0, 1])
        sizes = array("i", [2, 4, 9])
        admitted = filter_token_postings(
            rows,
            positions,
            sizes,
            probe_size=3,
            probe_position=0,
            similarity="jaccard",
            threshold=0.5,
            size_low=2,
            size_high=6,
        )
        # Row 2 fails the size filter; rows 0 and 1 can still reach the
        # required overlap from position 0.
        assert admitted == [0, 1]

    def test_intersect_count(self):
        assert intersect_count(array("i", [1, 3, 5]), array("i", [2, 3, 5])) == 2
        assert intersect_count(array("i", []), array("i", [1])) == 0


class TestMatchingConfigValidation:
    def test_engine_validated(self):
        assert "setsim" in MATCHER_ENGINES
        with pytest.raises(ValueError):
            MatchingConfig(engine="bogus")

    def test_similarity_validated(self):
        with pytest.raises(ValueError):
            MatchingConfig(engine="setsim", setsim_similarity="dice")

    def test_jaccard_threshold_range(self):
        with pytest.raises(ValueError):
            MatchingConfig(engine="setsim", setsim_threshold=0.0)
        with pytest.raises(ValueError):
            MatchingConfig(engine="setsim", setsim_threshold=1.5)

    def test_overlap_threshold_is_a_count(self):
        with pytest.raises(ValueError):
            MatchingConfig(
                engine="setsim",
                setsim_similarity="overlap",
                setsim_threshold=0.5,
            )
        config = MatchingConfig(
            engine="setsim", setsim_similarity="overlap", setsim_threshold=3
        )
        assert config.setsim_threshold == 3

    def test_tokenizer_and_qgram_validated(self):
        with pytest.raises(ValueError):
            MatchingConfig(engine="setsim", setsim_tokenizer="words")
        with pytest.raises(ValueError):
            MatchingConfig(engine="setsim", setsim_qgram=0)


class TestCreateRowMatcher:
    def test_default_engine_is_ngram(self):
        assert isinstance(create_row_matcher(), NGramRowMatcher)

    def test_setsim_engine(self):
        matcher = create_row_matcher(MatchingConfig(engine="setsim"))
        assert isinstance(matcher, SetSimRowMatcher)

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MATCHER", "setsim")
        assert isinstance(create_row_matcher(), SetSimRowMatcher)
        monkeypatch.setenv("REPRO_MATCHER", "ngram")
        assert isinstance(create_row_matcher(), NGramRowMatcher)

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MATCHER", "setsim")
        matcher = create_row_matcher(MatchingConfig(engine="ngram"))
        assert isinstance(matcher, NGramRowMatcher)


class TestSetSimRowMatcher:
    def matcher(self, **overrides):
        defaults = dict(engine="setsim", setsim_threshold=0.5, num_workers=1)
        defaults.update(overrides)
        return SetSimRowMatcher(MatchingConfig(**defaults))

    def test_matches_tables(self):
        source = Table({"Name": ["davood rafiei", "michael bowling", "x y z"]})
        target = Table({"Name": ["rafiei davood", "bowling m", "unrelated"]})
        pairs = self.matcher().match(
            source, target, source_column="Name", target_column="Name"
        )
        produced = {(p.source_row, p.target_row) for p in pairs}
        assert (0, 0) in produced  # same token set, reordered
        assert (2, 2) not in produced
        for pair in pairs:
            assert pair.source == source["Name"][pair.source_row]
            assert pair.target == target["Name"][pair.target_row]

    def test_stats_counts(self):
        pairs, stats = self.matcher().match_values_with_stats(
            ["a b", "c d"], ["a b", "e f"]
        )
        assert isinstance(stats, SetSimStats)
        assert stats.all_pairs == 4
        assert stats.matches == len(pairs) == 1
        assert stats.matches <= stats.candidates <= stats.all_pairs
        assert 0.0 < stats.pruning_ratio <= 1.0

    def test_empty_inputs(self):
        pairs, stats = self.matcher().match_values_with_stats([], [])
        assert pairs == []
        assert stats.all_pairs == 0
        assert stats.pruning_ratio == 0.0
        assert self.matcher().match_values(["a"], []) == []
        assert self.matcher().match_values([], ["a"]) == []

    def test_qgram_tokenizer_matches_separator_free_keys(self):
        matcher = self.matcher(
            setsim_tokenizer="qgram", setsim_qgram=3, setsim_threshold=0.5
        )
        pairs = matcher.match_values(["abcdef"], ["abcdef", "zzzzzz"])
        assert {(p.source_row, p.target_row) for p in pairs} == {(0, 0)}

    def test_default_config_engine_field(self):
        matcher = SetSimRowMatcher()
        assert matcher.config.engine == "setsim"


class TestSetSimJoinBaselines:
    SOURCE = Table({"Name": ["davood rafiei", "michael bowling", "solo"]})
    TARGET = Table({"Name": ["rafiei davood", "bowling michael holte", "other"]})

    def test_jaccard_join(self):
        result = jaccard_join(
            self.SOURCE,
            self.TARGET,
            source_column="Name",
            target_column="Name",
            threshold=0.5,
        )
        assert result.as_set() == {(0, 0), (1, 1)}
        assert result.similarity == "jaccard"
        by_pair = dict(zip(result.pairs, result.scores))
        assert by_pair[(0, 0)] == 1.0
        assert by_pair[(1, 1)] == pytest.approx(2 / 3)
        assert result.stats is not None and result.stats.all_pairs == 9

    def test_cosine_join(self):
        result = cosine_join(
            self.SOURCE,
            self.TARGET,
            source_column="Name",
            target_column="Name",
            threshold=0.8,
        )
        assert result.as_set() == {(0, 0), (1, 1)}
        by_pair = dict(zip(result.pairs, result.scores))
        assert by_pair[(1, 1)] == pytest.approx(2 / 6**0.5)

    def test_overlap_join_threshold_is_a_count(self):
        result = overlap_join(
            self.SOURCE,
            self.TARGET,
            source_column="Name",
            target_column="Name",
            threshold=2,
        )
        assert result.as_set() == {(0, 0), (1, 1)}
        assert all(score >= 2 for score in result.scores)

    def test_join_values_exactness_vs_brute_force(self):
        source = ["a b c", "a", "x y"]
        target = ["a b", "c b a", "y x z"]
        result = set_similarity_join_values(
            source, target, similarity="jaccard", threshold=1.0 / 3.0
        )
        expected = set()
        for i, left in enumerate(frozenset(v.split()) for v in source):
            for j, right in enumerate(frozenset(v.split()) for v in target):
                if left and right:
                    score = len(left & right) / len(left | right)
                    if score >= 1.0 / 3.0:
                        expected.add((i, j))
        assert result.as_set() == expected


class TestPerfHarnessSetsim:
    def test_matcher_for_setsim(self):
        from repro.perf.runner import BenchmarkRunner

        runner = BenchmarkRunner(ladder=(10,))
        matcher = runner.matcher_for("setsim", num_workers=2)
        assert isinstance(matcher, SetSimRowMatcher)
        assert matcher.config.num_workers == 2

    def test_discovery_for_setsim_rejected(self):
        from repro.perf.runner import BenchmarkRunner

        runner = BenchmarkRunner(ladder=(10,))
        with pytest.raises(ValueError, match="matching only"):
            runner.discovery_for("setsim")

    def test_matching_rung_records_pruning(self):
        from repro.perf.runner import BenchmarkRunner, validate_payload

        runner = BenchmarkRunner(ladder=(60,), seed=0)
        payload = runner.run_matching(engines=("packed", "setsim"))
        assert validate_payload(payload) == []
        record = payload["rungs"][0]["engines"]["setsim"]
        assert record["all_pairs"] == 60 * 60
        assert 0 < record["candidates_post_filter"] <= record["all_pairs"]
        assert 0.0 < record["pruning_ratio"] <= 1.0
        assert payload["rungs"][0]["identical"] is True
        assert payload["config"]["setsim"]["tokenizer"] == "qgram"

    def test_validate_payload_flags_broken_setsim_record(self):
        from repro.perf.runner import BenchmarkRunner, validate_payload

        runner = BenchmarkRunner(ladder=(60,), seed=0)
        payload = runner.run_matching(engines=("setsim",))
        record = payload["rungs"][0]["engines"]["setsim"]
        record["candidates_post_filter"] = record["all_pairs"] + 1
        del record["pruning_ratio"]
        problems = validate_payload(payload)
        assert any("candidate count" in p for p in problems)
        assert any("pruning_ratio" in p for p in problems)

    def test_families_not_compared_across_regimes(self):
        from repro.perf.runner import _engine_family

        assert _engine_family("seed") == "ngram"
        assert _engine_family("packed-w4") == "ngram"
        assert _engine_family("setsim") == "setsim"
        assert _engine_family("setsim-w8") == "setsim"


class TestCliIntegration:
    def test_matcher_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "discover",
                "a.csv",
                "b.csv",
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--matcher",
                "setsim",
                "--setsim-similarity",
                "cosine",
                "--setsim-threshold",
                "0.6",
                "--setsim-tokenizer",
                "qgram",
                "--setsim-qgram",
                "3",
            ]
        )
        assert args.matcher == "setsim"
        assert args.setsim_similarity == "cosine"
        assert args.setsim_threshold == 0.6
        assert args.setsim_qgram == 3

    def test_matcher_flag_builds_setsim(self):
        from repro.cli import _matcher, build_parser

        args = build_parser().parse_args(
            [
                "discover",
                "a.csv",
                "b.csv",
                "--source-column",
                "Name",
                "--target-column",
                "Name",
                "--matcher",
                "setsim",
            ]
        )
        matcher = _matcher(args)
        assert isinstance(matcher, SetSimRowMatcher)

    def test_env_var_selects_engine(self, monkeypatch):
        from repro.cli import _matcher, build_parser

        monkeypatch.setenv("REPRO_MATCHER", "setsim")
        args = build_parser().parse_args(
            [
                "discover",
                "a.csv",
                "b.csv",
                "--source-column",
                "Name",
                "--target-column",
                "Name",
            ]
        )
        assert isinstance(_matcher(args), SetSimRowMatcher)

    def test_rejects_unknown_matcher(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "discover",
                    "a.csv",
                    "b.csv",
                    "--source-column",
                    "Name",
                    "--target-column",
                    "Name",
                    "--matcher",
                    "levenshtein",
                ]
            )
