"""Shared fixtures: the paper's running examples and small benchmark instances."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.table.table import Table

# CI re-runs the whole suite with REPRO_NUM_WORKERS=2, which makes every
# default-configured engine fork a small process pool.  Pool start-up is
# milliseconds but easily exceeds hypothesis's 200ms per-example deadline, so
# deadlines are disabled for those runs (example counts are unchanged).
settings.register_profile("sharded-workers", deadline=None)
if os.environ.get("REPRO_NUM_WORKERS", "").strip() not in ("", "1"):
    settings.load_profile("sharded-workers")


@pytest.fixture
def name_initial_pairs() -> list[tuple[str, str]]:
    """Rows 4-6 style example from Figure 1: 'Last, First' -> 'F Last'."""
    return [
        ("Rafiei, Davood", "D Rafiei"),
        ("Bowling, Michael", "M Bowling"),
        ("Gosgnach, Simon", "S Gosgnach"),
        ("Nascimento, Mario", "M Nascimento"),
        ("Gingrich, Douglas", "D Gingrich"),
    ]


@pytest.fixture
def name_email_pairs() -> list[tuple[str, str]]:
    """Figure 2 example: 'last, first' -> 'first.last@ualberta.ca'."""
    return [
        ("bowling, michael", "michael.bowling@ualberta.ca"),
        ("rafiei, davood", "davood.rafiei@ualberta.ca"),
        ("gosgnach, simon", "simon.gosgnach@ualberta.ca"),
        ("nascimento, mario", "mario.nascimento@ualberta.ca"),
    ]


@pytest.fixture
def phone_pairs() -> list[tuple[str, str]]:
    """Phone formatting example from the introduction."""
    return [
        ("(780) 432-3636", "1-780-432-3636"),
        ("(403) 433-6545", "1-403-433-6545"),
        ("(587) 428-2108", "1-587-428-2108"),
        ("(825) 406-4565", "1-825-406-4565"),
    ]


@pytest.fixture
def mixed_rule_pairs() -> list[tuple[str, str]]:
    """Input that needs two transformations to be fully covered."""
    return [
        ("Rafiei, Davood", "D Rafiei"),
        ("Bowling, Michael", "M Bowling"),
        ("Gosgnach, Simon", "S Gosgnach"),
        ("alpha-beta", "beta/alpha"),
        ("gamma-delta", "delta/gamma"),
        ("epsilon-zeta", "zeta/epsilon"),
    ]


@pytest.fixture
def engine() -> TransformationDiscovery:
    """A discovery engine with the paper's default configuration."""
    return TransformationDiscovery(DiscoveryConfig.paper_default())


@pytest.fixture
def staff_tables() -> tuple[Table, Table]:
    """Two small tables in the style of Figure 1 (right-hand pair)."""
    source = Table(
        {
            "Name": [
                "Rafiei, Davood",
                "Nascimento, Mario",
                "Gingrich, Douglas",
                "Bowling, Michael",
                "Gosgnach, Simon",
            ],
            "Department": ["CS", "CS", "Physics", "CS", "Physiology"],
        },
        name="staff_directory",
    )
    target = Table(
        {
            "Name": [
                "D Rafiei",
                "M Nascimento",
                "D Gingrich",
                "M Bowling",
                "S Gosgnach",
            ],
            "Phone": [
                "(780) 433-6545",
                "(780) 428-2108",
                "(780) 406-4565",
                "(780) 471-0427",
                "(780) 432-4814",
            ],
        },
        name="white_pages",
    )
    return source, target
