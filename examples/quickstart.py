#!/usr/bin/env python3
"""Quickstart: learn a transformation and join two differently-formatted tables.

This walks through the four levels of the public API:

1. learn transformations from plain (source, target) string pairs,
2. run the full pipeline (row matching + discovery + join) on two tables,
3. fit once, save the model artifact, reload it, and apply it to new rows
   (the train-once / apply-many workflow of the artifact layer),
4. inspect the discovered transformations and the statistics of the run.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import JoinPipeline, Table, TransformationDiscovery, TransformationModel


def learn_from_string_pairs() -> None:
    """Level 1: discovery from explicit examples (like Figure 1 of the paper)."""
    print("=" * 72)
    print("1. Learning a transformation from (source, target) examples")
    print("=" * 72)

    examples = [
        ("Rafiei, Davood", "D Rafiei"),
        ("Nascimento, Mario", "M Nascimento"),
        ("Gingrich, Douglas", "D Gingrich"),
        ("Bowling, Michael", "M Bowling"),
        ("Gosgnach, Simon", "S Gosgnach"),
    ]
    engine = TransformationDiscovery()
    result = engine.discover_from_strings(examples)

    best = result.best.transformation
    print(f"examples:                {len(examples)}")
    print(f"best transformation:     {best}")
    print(f"coverage of best:        {result.top_coverage:.2f}")
    print(f"covering set size:       {result.num_transformations}")
    print(f"generated candidates:    {result.stats.generated_transformations}")
    print(f"after duplicate removal: {result.stats.unique_transformations}")
    print(f"cache hit ratio:         {result.stats.cache_hit_ratio:.2%}")
    print()
    print("applying the learned transformation to unseen rows:")
    for name in ["Prus-Czarnecki, Andrzej", "Kasumba, Victor"]:
        print(f"  {name!r:32} -> {best.apply(name)!r}")
    print()


def join_two_tables() -> None:
    """Level 2: the end-to-end pipeline on two tables (no examples given)."""
    print("=" * 72)
    print("2. End-to-end join of two differently formatted tables")
    print("=" * 72)

    staff_directory = Table(
        {
            "Name": [
                "Rafiei, Davood",
                "Nascimento, Mario A",
                "Gingrich, Douglas M",
                "Prus-Czarnecki, Andrzej",
                "Bowling, Michael",
                "Gosgnach, Simon",
            ],
            "Department": [
                "CS (2000)",
                "CS (1999)",
                "Physics (1993)",
                "Physics (2000)",
                "CS (2003)",
                "Physiology (2006)",
            ],
        },
        name="staff_directory",
    )
    white_pages = Table(
        {
            "Name": [
                "D Rafiei",
                "M A Nascimento",
                "D Gingrich",
                "A Prus-Czarnecki",
                "M Bowling",
                "S Gosgnach",
            ],
            "Phone": [
                "(780) 433-6545",
                "(780) 428-2108",
                "(780) 406-4565",
                "(780) 433-8303",
                "(780) 471-0427",
                "(780) 432-4814",
            ],
        },
        name="white_pages",
    )

    pipeline = JoinPipeline(min_support=0.0, materialize=True)
    outcome = pipeline.run(
        staff_directory, white_pages, source_column="Name", target_column="Name"
    )

    print(f"candidate row pairs from the matcher: {outcome.candidate_pairs}")
    print(f"transformations in the covering set:  {outcome.discovery.num_transformations}")
    for coverage in outcome.discovery.cover:
        print(f"  {coverage.transformation}  (covers {coverage.coverage} pairs)")
    print()
    print("joined rows:")
    joined = outcome.joined_table
    assert joined is not None
    for row in joined.rows():
        print(
            f"  {row['Name_source']:28} | {row['Department_source']:18} "
            f"| {row['Phone_target']}"
        )
    print()


def fit_save_and_apply() -> None:
    """Level 3: fit once, persist the model, apply it to unseen rows."""
    print("=" * 72)
    print("3. Fit / save / load / apply (the artifact layer)")
    print("=" * 72)

    train_source = Table(
        {"Name": ["Rafiei, Davood", "Bowling, Michael", "Gosgnach, Simon"]},
        name="train_source",
    )
    train_target = Table(
        {"Name": ["D Rafiei", "M Bowling", "S Gosgnach"]},
        name="train_target",
    )
    # New rows the model never saw during fitting.
    fresh_source = Table(
        {"Name": ["Nascimento, Mario", "Gingrich, Douglas", "Kasumba, Victor"]},
        name="fresh_source",
    )
    fresh_target = Table(
        {"Name": ["V Kasumba", "M Nascimento", "D Gingrich"]},
        name="fresh_target",
    )

    pipeline = JoinPipeline(min_support=0.0)
    model = pipeline.fit(
        train_source, train_target, source_column="Name", target_column="Name"
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = model.save(Path(tmp) / "model.json")
        print(f"fitted and saved: {path.name} "
              f"({path.stat().st_size} bytes of versioned JSON)")
        # A later process (no matcher, no discovery engine) picks it up:
        loaded = TransformationModel.load(path)
    print(f"loaded model: {loaded.num_transformations} transformation(s), "
          f"schema v{loaded.schema_version}")
    outcome = pipeline.apply(
        loaded, fresh_source, fresh_target, source_column="Name", target_column="Name"
    )
    print("applied to unseen rows (no re-discovery):")
    for source_row, target_row in sorted(outcome.join.pairs):
        print(f"  {fresh_source['Name'][source_row]:24} -> "
              f"{fresh_target['Name'][target_row]}")
    print()


def inspect_statistics() -> None:
    """Level 4: the per-stage statistics used by the paper's experiments."""
    print("=" * 72)
    print("4. Discovery statistics (the raw material of Tables 2 and 4)")
    print("=" * 72)

    pairs = [
        (f"{last}, {first}", f"{first[0]} {last}")
        for first, last in [
            ("Davood", "Rafiei"),
            ("Mario", "Nascimento"),
            ("Douglas", "Gingrich"),
            ("Michael", "Bowling"),
            ("Simon", "Gosgnach"),
            ("Andrzej", "Czarnecki"),
        ]
    ]
    result = TransformationDiscovery().discover_from_strings(pairs)
    for key, value in result.stats.as_dict().items():
        if isinstance(value, float):
            print(f"  {key:32} {value:.4f}")
        else:
            print(f"  {key:32} {value}")
    print()


if __name__ == "__main__":
    learn_from_string_pairs()
    join_two_tables()
    fit_save_and_apply()
    inspect_statistics()
