#!/usr/bin/env python3
"""Joining phone-number columns with mismatched formats (introduction example).

A phone number may appear as ``(780) 432-3636``, ``+1 780 432 3636`` or
``1-780-432-3636`` depending on the source.  This example builds two contact
tables with different phone formats, learns the transformation between them,
and compares the transformation join against a plain equi-join and the
Auto-FuzzyJoin similarity baseline.

Run with::

    python examples/phone_join.py
"""

from __future__ import annotations

import random

from repro import JoinPipeline, Table
from repro.baselines import AutoFuzzyJoin
from repro.evaluation import evaluate_join
from repro.table.ops import equi_join


def build_tables(num_rows: int = 40, seed: int = 7) -> tuple[Table, Table, list[tuple[int, int]]]:
    """Two contact lists sharing phone numbers but not their formatting."""
    rng = random.Random(seed)
    crm_phones = []
    billing_phones = []
    accounts = []
    for index in range(num_rows):
        area = rng.choice(["780", "403", "587", "825"])
        prefix = rng.randint(200, 999)
        line = rng.randint(1000, 9999)
        crm_phones.append(f"({area}) {prefix}-{line}")
        billing_phones.append(f"1-{area}-{prefix}-{line}")
        accounts.append(f"ACCT-{index:04d}")
    crm = Table(
        {"phone": crm_phones, "account": accounts},
        name="crm_contacts",
    )
    billing = Table(
        {"phone": billing_phones, "balance": [str(rng.randint(0, 900)) for _ in range(num_rows)]},
        name="billing_contacts",
    )
    return crm, billing, [(i, i) for i in range(num_rows)]


def main() -> None:
    crm, billing, golden = build_tables()

    print("A plain equi-join finds nothing (the formats never match exactly):")
    plain = equi_join(crm, billing, left_on="phone", right_on="phone")
    print(f"  equi-join pairs: {len(plain)}")
    print()

    print("The transformation join learns the reformatting and joins everything:")
    pipeline = JoinPipeline(min_support=0.05)
    outcome = pipeline.run(crm, billing, source_column="phone", target_column="phone")
    ours = evaluate_join(outcome.joined_pairs, golden)
    print(f"  candidate pairs:     {outcome.candidate_pairs}")
    print(f"  best transformation: {outcome.discovery.best.transformation}")
    print(
        f"  join quality:        precision={ours.precision:.2f} "
        f"recall={ours.recall:.2f} f1={ours.f1:.2f}"
    )
    print()

    print("Auto-FuzzyJoin (similarity only, no transformations) for comparison:")
    fuzzy = AutoFuzzyJoin().join(
        crm, billing, source_column="phone", target_column="phone"
    )
    theirs = evaluate_join(fuzzy.as_set(), golden)
    print(
        f"  chosen similarity:   {fuzzy.similarity} at threshold {fuzzy.threshold}"
    )
    print(
        f"  join quality:        precision={theirs.precision:.2f} "
        f"recall={theirs.recall:.2f} f1={theirs.f1:.2f}"
    )
    print()
    print(
        "Interpretable output: the learned transformation is a program you can "
        "read, audit, and re-apply to new rows as the tables grow."
    )


if __name__ == "__main__":
    main()
