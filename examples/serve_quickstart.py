#!/usr/bin/env python3
"""Serving quickstart: fit a model, serve it over HTTP, query it.

The train-once / apply-many workflow of the artifact layer, taken one step
further: the fitted model is dropped into a registry directory and served by
a long-lived :class:`repro.serve.JoinServer`, so any HTTP client can join
its rows against a reference column without a Python dependency.

1. fit a :class:`~repro.model.artifact.TransformationModel` and save it,
2. start the server in the background (`repro serve <dir>` does the same
   from the command line),
3. POST a join request and read the pairs back,
4. show the warm path: the second request skips the model load, the trie
   compile, and the target-index build,
5. peek at ``/stats`` — cache counters and per-model latency.

Run with::

    python examples/serve_quickstart.py
"""

from __future__ import annotations

import json
import tempfile
from http.client import HTTPConnection
from pathlib import Path

from repro import JoinPipeline, Table
from repro.serve import JoinServer


def fit_and_save(model_dir: Path) -> None:
    """Fit the Figure-1-style example and drop it into the registry dir."""
    train_source = Table(
        {"Name": ["Rafiei, Davood", "Bowling, Michael", "Gosgnach, Simon"]},
        name="train_source",
    )
    train_target = Table(
        {"Name": ["D Rafiei", "M Bowling", "S Gosgnach"]},
        name="train_target",
    )
    model = JoinPipeline(min_support=0.0).fit(
        train_source, train_target, source_column="Name", target_column="Name"
    )
    path = model.save(model_dir / "names.json")
    print(f"fitted and saved {path.name}: {model.num_transformations} "
          "transformation(s); it now serves as POST /join/names")


def post_join(address: tuple[str, int], body: dict) -> dict:
    connection = HTTPConnection(*address, timeout=30)
    try:
        connection.request(
            "POST",
            "/join/names",
            json.dumps(body).encode("utf-8"),
            {"Content-Type": "application/json"},
        )
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def main() -> None:
    # Rows the model never saw during fitting.
    request = {
        "source": ["Nascimento, Mario", "Gingrich, Douglas", "Kasumba, Victor"],
        "target": ["V Kasumba", "M Nascimento", "D Gingrich"],
    }
    with tempfile.TemporaryDirectory() as tmp:
        model_dir = Path(tmp)
        fit_and_save(model_dir)
        with JoinServer(model_dir, port=0) as server:
            server.start_background()
            print(f"serving on {server.url}")

            payload = post_join(server.address, request)
            print(f"\nfirst request  (warm={payload['warm']}):")
            for (source_row, target_row), rule in zip(
                payload["pairs"], payload["matched_by"]
            ):
                print(f"  {request['source'][source_row]:24} -> "
                      f"{request['target'][target_row]:16} via {rule}")

            payload = post_join(server.address, request)
            print(f"\nsecond request (warm={payload['warm']}): "
                  "model, compiled trie, and target index all came from cache")

            connection = HTTPConnection(*server.address, timeout=30)
            connection.request("GET", "/stats")
            stats = json.loads(connection.getresponse().read())
            connection.close()
            registry = stats["engine"]["registry"]
            print(f"\n/stats: {stats['requests']} requests, "
                  f"joiner cache {registry['joiner_cache']['hits']} hit(s), "
                  f"index cache {registry['target_index_cache']['hits']} hit(s)")


if __name__ == "__main__":
    main()
