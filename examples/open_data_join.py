#!/usr/bin/env python3
"""Joining open government data with third-party listings on noisy addresses.

This reproduces the workflow of the paper's open-data benchmark at laptop
scale — and runs it the way a production deployment would, through the
artifact layer: *fit* on one batch of listings (matching + discovery, the
expensive part), save the resulting :class:`TransformationModel` to disk,
then *load and apply* it to a held-out batch of fresh addresses without any
re-discovery.  The n-gram matcher produces many false candidate pairs
(addresses share low-information n-grams such as "Street NW"), so discovery
runs on a sample and the model records a support threshold that keeps only
transformations with real evidence behind them.

Run with::

    python examples/open_data_join.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DiscoveryConfig, JoinPipeline, NGramRowMatcher, TransformationModel
from repro.datasets import generate_open_data
from repro.evaluation import evaluate_join


def fit_and_save(model_path: Path) -> None:
    """Train once: fit a model on one batch and persist it."""
    train = generate_open_data(num_source_rows=250, num_target_rows=700, seed=11)
    print("--- fit (training batch) ---")
    print(f"source (white pages listings):   {train.num_source_rows} rows")
    print(f"target (property assessments):   {train.num_target_rows} rows")
    print(f"true joinable pairs:             {len(train.golden_pairs)}")

    # The open-data recipe: candidate generation on a small sample of the
    # candidate pairs (Section 5.3), coverage still evaluated on every pair,
    # a 1% relative discovery support, and a 2% join-time support threshold
    # as in the paper's Table 3 run.  The relative thresholds need the real
    # candidate count, so size the config with one matcher pass up front
    # (fit() runs the same matcher; at this scale the repeat is free).
    matcher = NGramRowMatcher()
    num_candidates = len(
        matcher.match(
            train.source,
            train.target,
            source_column=train.source_column,
            target_column=train.target_column,
        )
    )
    config = DiscoveryConfig.open_data(num_pairs=num_candidates).replace(
        sample_size=min(200, num_candidates)
    )
    pipeline = JoinPipeline(
        matcher=matcher, discovery_config=config, min_support=0.02
    )
    model = pipeline.fit(
        train.source,
        train.target,
        source_column=train.source_column,
        target_column=train.target_column,
    )
    print(f"candidate pairs from the matcher: {model.num_candidate_pairs}")
    print(f"covering set ({model.num_transformations} transformations):")
    for transformation, count in zip(model.transformations, model.coverage_counts):
        print(f"  covers {count:4d} candidate pairs: {transformation}")
    model.save(model_path)
    print(f"saved {model_path.name} "
          f"({model_path.stat().st_size} bytes of versioned JSON)")
    print()


def load_and_apply(model_path: Path) -> None:
    """Serve many times: join a held-out batch with the persisted model."""
    # A different seed draws fresh addresses; the *formatting rules* of the
    # open-data corpus are fixed, which is exactly the situation a persisted
    # model exists for: new rows, same transformation structure.
    held_out = generate_open_data(num_source_rows=250, num_target_rows=700, seed=47)
    print("--- apply (held-out batch, no re-discovery) ---")
    print(f"held-out source rows:            {held_out.num_source_rows}")
    print(f"held-out target rows:            {held_out.num_target_rows}")

    model = TransformationModel.load(model_path)
    pipeline = JoinPipeline()  # apply uses only the model, nothing is re-fit
    outcome = pipeline.apply(
        model,
        held_out.source,
        held_out.target,
        source_column=held_out.source_column,
        target_column=held_out.target_column,
    )
    quality = evaluate_join(outcome.joined_pairs, held_out.golden_pairs)
    print(f"joined pairs: {outcome.join.num_pairs}")
    print(
        f"join quality: precision={quality.precision:.3f} "
        f"recall={quality.recall:.3f} f1={quality.f1:.3f}"
    )
    print()
    print("sample of joined rows:")
    source_column = held_out.source_column
    target_column = held_out.target_column
    for source_row, target_row in sorted(outcome.join.pairs)[:8]:
        print(
            f"  {held_out.source[source_column][source_row]:48} -> "
            f"{held_out.target[target_column][target_row]}"
        )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "open_data_model.json"
        fit_and_save(model_path)
        load_and_apply(model_path)


if __name__ == "__main__":
    main()
