#!/usr/bin/env python3
"""Joining open government data with third-party listings on noisy addresses.

This reproduces the workflow of the paper's open-data benchmark at laptop
scale: a white-pages-style listing table joins a property-assessment table on
the address column.  The n-gram matcher produces many false candidate pairs
(addresses share low-information n-grams such as "Street NW"), so discovery
runs on a sample and a support threshold keeps only transformations with real
evidence behind them.

Run with::

    python examples/open_data_join.py
"""

from __future__ import annotations

from repro import DiscoveryConfig, TransformationDiscovery, TransformationJoiner
from repro.datasets import generate_open_data
from repro.evaluation import evaluate_join, evaluate_matching
from repro.matching import NGramRowMatcher


def main() -> None:
    # A scaled-down instance of the open-data benchmark (the full benchmark
    # uses 3,808 listings; pass larger numbers to stress the pipeline).
    pair = generate_open_data(num_source_rows=250, num_target_rows=700, seed=11)
    print(f"source (white pages listings):   {pair.num_source_rows} rows")
    print(f"target (property assessments):   {pair.num_target_rows} rows")
    print(f"true joinable pairs:             {len(pair.golden_pairs)}")
    print()

    # 1. Candidate pairs from the n-gram matcher: recall is high, precision low.
    matcher = NGramRowMatcher()
    candidates = matcher.match(
        pair.source,
        pair.target,
        source_column=pair.source_column,
        target_column=pair.target_column,
    )
    matching_quality = evaluate_matching(candidates, pair.golden_pairs)
    print(f"candidate pairs from the matcher: {len(candidates)}")
    print(
        f"matching quality: precision={matching_quality.precision:.3f} "
        f"recall={matching_quality.recall:.3f}"
    )
    print()

    # 2. Discovery with sampling + support threshold (the open-data recipe).
    # Candidate generation runs on a small sample of the candidate pairs
    # (Section 5.3: a couple hundred pairs is enough to discover any
    # transformation with non-trivial coverage); coverage is still evaluated
    # on every candidate pair.
    config = DiscoveryConfig.open_data(num_pairs=len(candidates)).replace(
        sample_size=min(200, len(candidates))
    )
    engine = TransformationDiscovery(config)
    discovery = engine.discover(candidates)
    print(
        f"discovery on a sample of {min(config.sample_size, len(candidates))} pairs, "
        f"support threshold {config.min_support} pairs"
    )
    print(f"covering set ({discovery.num_transformations} transformations):")
    for coverage in discovery.cover:
        print(f"  covers {coverage.coverage:4d} candidate pairs: {coverage.transformation}")
    print()

    # 3. Join with a 2% support threshold, as in the paper's Table 3 run.
    joiner = TransformationJoiner(
        discovery.transformations,
        min_support=0.02,
        coverage_results=discovery.cover,
        num_candidate_pairs=len(candidates),
    )
    result = joiner.join(
        pair.source,
        pair.target,
        source_column=pair.source_column,
        target_column=pair.target_column,
    )
    quality = evaluate_join(result.as_set(), pair.golden_pairs)
    print(f"joined pairs: {result.num_pairs}")
    print(
        f"join quality: precision={quality.precision:.3f} "
        f"recall={quality.recall:.3f} f1={quality.f1:.3f}"
    )
    print()
    print("sample of joined rows:")
    for source_row, target_row in sorted(result.pairs)[:8]:
        print(
            f"  {pair.source['address'][source_row]:48} -> "
            f"{pair.target['address'][target_row]}"
        )


if __name__ == "__main__":
    main()
