#!/usr/bin/env python3
"""Mapping person names to e-mail addresses (Figure 1, left pair).

The course-contact table lists e-mail addresses while the staff table lists
"Last, First" names.  No single rule maps every name to its address (some
addresses are "first.last@", some are initials, some drop middle names), so
this is the *minimal covering set* variant of the problem: the engine returns
several transformations that together cover the input, and a support
threshold keeps one-off noise rules out of the join.

Run with::

    python examples/name_to_email.py
"""

from __future__ import annotations

from repro import DiscoveryConfig, Table, TransformationDiscovery, TransformationJoiner
from repro.evaluation import evaluate_join
from repro.matching import NGramRowMatcher


def build_tables() -> tuple[Table, Table, list[tuple[int, int]]]:
    """The staff table, the course-contact table, and the true matching."""
    staff = Table(
        {
            "Name": [
                "rafiei, davood",
                "nascimento, mario",
                "gingrich, douglas",
                "czarnecki, andrzej",
                "bowling, michael",
                "gosgnach, simon",
                "stewart, grace",
                "keller, fatima",
                "watson, henry",
                "novak, priya",
            ],
            "Department": [
                "CS", "CS", "Physics", "Physics", "CS",
                "Physiology", "Chemistry", "Biology", "History", "Statistics",
            ],
        },
        name="staff",
    )
    contacts = Table(
        {
            "Course": [
                "CMPUT 291", "CMPUT 391", "PHYS 524", "PHYS 512", "INTD 350",
                "N344", "CHEM 101", "BIOL 207", "HIST 260", "STAT 151",
            ],
            "Email": [
                "davood.rafiei@ualberta.ca",
                "mario.nascimento@ualberta.ca",
                "gingrich@ualberta.ca",
                "andrzej.czarnecki@ualberta.ca",
                "michael.bowling@ualberta.ca",
                "gosgnach@ualberta.ca",
                "grace.stewart@ualberta.ca",
                "keller@ualberta.ca",
                "henry.watson@ualberta.ca",
                "priya.novak@ualberta.ca",
            ],
        },
        name="course_contacts",
    )
    golden = [(i, i) for i in range(staff.num_rows)]
    return staff, contacts, golden


def main() -> None:
    staff, contacts, golden = build_tables()

    # 1. Find candidate joinable rows with the n-gram matcher (no labels).
    matcher = NGramRowMatcher()
    candidates = matcher.match(
        staff, contacts, source_column="Name", target_column="Email"
    )
    print(f"candidate pairs found by the n-gram matcher: {len(candidates)}")

    # 2. Learn a covering set of transformations from the candidates.
    engine = TransformationDiscovery(DiscoveryConfig.paper_default())
    discovery = engine.discover(candidates)
    print(f"coverage of the best single transformation: {discovery.top_coverage:.2f}")
    print(f"coverage of the covering set:               {discovery.cover_coverage:.2f}")
    print("covering set:")
    for coverage in discovery.cover:
        print(f"  covers {coverage.coverage:2d} pairs: {coverage.transformation}")

    # 3. Join: apply the supported transformations and equi-join on the result.
    joiner = TransformationJoiner(
        discovery.transformations,
        min_support=0.1,
        coverage_results=discovery.cover,
        num_candidate_pairs=len(candidates),
    )
    result = joiner.join(staff, contacts, source_column="Name", target_column="Email")
    metrics = evaluate_join(result.as_set(), golden)
    print()
    print("join output:")
    for source_row, target_row in sorted(result.pairs):
        print(
            f"  {staff['Name'][source_row]:24} -> "
            f"{contacts['Email'][target_row]:34} "
            f"({contacts['Course'][target_row]})"
        )
    print()
    print(
        f"join quality vs ground truth: precision={metrics.precision:.2f} "
        f"recall={metrics.recall:.2f} f1={metrics.f1:.2f}"
    )


if __name__ == "__main__":
    main()
