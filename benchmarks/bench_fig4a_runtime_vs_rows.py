"""Figure 4a — Runtime breakdown as the number of rows grows (vertical growth).

The paper fixes the row length at 28 characters and sweeps the number of rows
up to 2000, reporting the wall-clock time of each pipeline module (unit
extraction, placeholder generation, duplicate removal, applying the
transformations).

Expected shape: applying transformations dominates and grows the fastest with
the number of rows; the pruning keeps the total curve closer to linear than
the quadratic worst case.
"""

from __future__ import annotations

from conftest import bench_scale, write_report

from repro.core.discovery import TransformationDiscovery
from repro.datasets.synthetic import SyntheticConfig, generate_table_pair
from repro.evaluation.report import format_table

#: Row counts swept (the paper goes to 2000; trimmed proportionally to scale).
FULL_ROW_COUNTS = [50, 100, 200, 400, 800, 1600]

#: Fixed row length for this sweep, as in the paper.
ROW_LENGTH = 28


def sweep_rows(scale: float) -> list[int]:
    """The subset of FULL_ROW_COUNTS used at the given scale."""
    count = max(3, int(round(len(FULL_ROW_COUNTS) * min(1.0, scale * 4))))
    return FULL_ROW_COUNTS[:count]


def run_row_point(num_rows: int) -> dict[str, float]:
    """One point of the Figure 4a sweep."""
    config = SyntheticConfig(
        num_rows=num_rows, min_length=ROW_LENGTH, max_length=ROW_LENGTH, seed=num_rows
    )
    pair, _ = generate_table_pair(config)
    engine = TransformationDiscovery()
    result = engine.discover_from_strings(pair.golden_string_pairs())
    stages = result.stats.stage_seconds
    return {
        "rows": num_rows,
        "unit_extraction_s": stages.get("unit_extraction", 0.0),
        "placeholder_gen_s": stages.get("placeholder_generation", 0.0),
        "duplicate_removal_s": stages.get("duplicate_removal", 0.0),
        "applying_trans_s": stages.get("applying_transformations", 0.0),
        "total_s": result.stats.total_seconds,
    }


def test_fig4a_runtime_vs_rows(benchmark):
    """Regenerate Figure 4a (runtime breakdown vs number of rows)."""
    scale = bench_scale()
    row_counts = sweep_rows(scale)
    rows = [run_row_point(count) for count in row_counts]

    benchmark(run_row_point, row_counts[0])

    report = format_table(
        rows,
        columns=[
            "rows",
            "unit_extraction_s",
            "placeholder_gen_s",
            "duplicate_removal_s",
            "applying_trans_s",
            "total_s",
        ],
        title=f"Figure 4a: runtime vs number of rows (length={ROW_LENGTH})",
        float_format="{:.4f}",
    )
    write_report("fig4a_runtime_vs_rows", report)

    # Shape: total time increases with the number of rows, and applying the
    # transformations is the dominant module at the largest size.
    assert rows[-1]["total_s"] > rows[0]["total_s"]
    largest = rows[-1]
    assert largest["applying_trans_s"] >= largest["placeholder_gen_s"]
