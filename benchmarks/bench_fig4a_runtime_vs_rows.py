"""Figure 4a — Runtime breakdown as the number of rows grows (vertical growth).

The paper fixes the row length at 28 characters and sweeps the number of rows,
reporting the wall-clock time of each pipeline module (unit extraction,
placeholder generation, duplicate removal, applying the transformations).
This reproduction sweeps the perf harness's synthetic size ladder and also
times row matching, so the numbers line up with the checked-in
``BENCH_discovery.json`` trajectory.

Expected shape: applying transformations dominates and grows the fastest with
the number of rows; the pruning (and the batched coverage engine) keeps the
total curve closer to linear than the quadratic worst case.

Results are emitted through :class:`repro.perf.BenchmarkRunner`'s JSON writer
to ``benchmarks/results/BENCH_fig4a_runtime_vs_rows.json``.
"""

from __future__ import annotations

from conftest import RESULTS_DIR, bench_scale

from repro.perf import BenchmarkRunner, validate_payload

#: Row counts swept at full scale (the perf harness ladder, trimmed by scale).
FULL_ROW_COUNTS = [250, 500, 1000, 5000, 10000]

#: Fixed row length for this sweep, as in the paper.
ROW_LENGTH = 28


def sweep_rows(scale: float) -> list[int]:
    """The subset of FULL_ROW_COUNTS used at the given scale."""
    count = max(3, int(round(len(FULL_ROW_COUNTS) * min(1.0, scale * 4))))
    return FULL_ROW_COUNTS[:count]


def run_row_point(runner: BenchmarkRunner, num_rows: int) -> dict:
    """One point of the Figure 4a sweep (packed engine, matching + discovery).

    The paper's Figure 4 reports matching + discovery runtime only, so the
    artifact layer's ``apply_only`` serving stage (which ``discovery_rung``
    also times) is stripped from the point — fig4 curves stay comparable
    across PRs.
    """
    record, _, _, _ = runner.discovery_rung(num_rows, "packed")
    record = dict(record)
    record["stages"] = {
        stage: seconds
        for stage, seconds in record["stages"].items()
        if stage != "apply_only"
    }
    # Drop the serving-path keys entirely so the record stays
    # self-consistent (total_s == matching_s + discovery_s, no orphan
    # apply_s for consumers to misattribute).
    record.pop("apply_s", None)
    record.pop("joined_pairs", None)
    record["total_s"] = record["matching_s"] + record["discovery_s"]
    return record


def test_fig4a_runtime_vs_rows(benchmark):
    """Regenerate Figure 4a (runtime breakdown vs number of rows)."""
    scale = bench_scale()
    row_counts = sweep_rows(scale)
    # The sweep drives discovery_rung() per row count below; the runner's
    # ladder is not consumed, so only the parameters that are get passed.
    runner = BenchmarkRunner(row_length=ROW_LENGTH, output_dir=RESULTS_DIR)
    rungs = []
    for count in row_counts:
        record = run_row_point(runner, count)
        rungs.append({"rows": count, "engines": {"packed": record}})

    benchmark(run_row_point, runner, row_counts[0])

    payload = {
        "benchmark": "fig4a_runtime_vs_rows",
        "harness": "repro.perf.BenchmarkRunner",
        "config": {"row_length": ROW_LENGTH, "ladder": row_counts, "scale": scale},
        "rungs": rungs,
    }
    path = runner.write("fig4a_runtime_vs_rows", payload)
    assert validate_payload(payload) == []
    assert path.exists()

    # Shape: total time increases with the number of rows, and applying the
    # transformations is the dominant discovery module at the largest size.
    totals = [rung["engines"]["packed"]["total_s"] for rung in rungs]
    assert totals[-1] > totals[0]
    largest = rungs[-1]["engines"]["packed"]["stages"]
    assert largest["applying_transformations"] >= largest["placeholder_generation"]
