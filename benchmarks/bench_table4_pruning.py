"""Table 4 — Effectiveness of the pruning strategies.

For every dataset, under both n-gram and golden row matching, the paper
reports the number of generated transformations, the number left to try after
duplicate removal, the fraction of duplicates, and the hit ratio of the
non-covering-unit cache.

Expected shape: a substantial fraction of generated transformations are
duplicates (growing with the input length), and the cache absorbs the
majority of (transformation, row) applications.
"""

from __future__ import annotations

from conftest import bench_scale, write_report

from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.datasets.registry import load_dataset
from repro.evaluation.report import format_table
from repro.matching.row_matcher import GoldenRowMatcher, NGramRowMatcher

DATASETS = ["web", "spreadsheet", "synth-50", "synth-50L"]


def run_pruning(dataset_name: str, matching: str, scale: float) -> dict[str, object]:
    """Aggregate pruning statistics over every pair of a dataset."""
    dataset = load_dataset(dataset_name, scale=scale, seed=0)
    config = (
        DiscoveryConfig.spreadsheet()
        if dataset_name == "spreadsheet"
        else DiscoveryConfig.paper_default()
    )
    # Pin the one-at-a-time coverage engine: the table reproduces the paper's
    # per-(transformation, row) cache hit ratio, which the batched engine
    # tallies differently (whole subtrees at once).
    config = config.replace(use_batched_coverage=False)
    engine = TransformationDiscovery(config)
    generated = unique = 0.0
    duplicate_ratio = cache_hit = 0.0
    for pair in dataset:
        matcher = (
            GoldenRowMatcher(pair.golden_pairs)
            if matching == "golden"
            else NGramRowMatcher()
        )
        candidates = matcher.match(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        result = engine.discover(candidates)
        generated += result.stats.generated_transformations
        unique += result.stats.unique_transformations
        duplicate_ratio += result.stats.duplicate_ratio
        cache_hit += result.stats.cache_hit_ratio
    count = len(dataset)
    return {
        "matching": matching,
        "dataset": dataset_name,
        "generated": generated / count,
        "to_try": unique / count,
        "duplicate_pct": 100.0 * duplicate_ratio / count,
        "cache_hit_pct": 100.0 * cache_hit / count,
    }


def test_table4_pruning(benchmark):
    """Regenerate Table 4 (pruning performance)."""
    scale = bench_scale()
    rows = []
    for matching in ("ngram", "golden"):
        for dataset_name in DATASETS:
            rows.append(run_pruning(dataset_name, matching, scale))

    synth = load_dataset("synth-50L", scale=scale, seed=0)[0]
    engine = TransformationDiscovery()
    benchmark(engine.discover_from_strings, synth.golden_string_pairs())

    report = format_table(
        rows,
        columns=[
            "matching",
            "dataset",
            "generated",
            "to_try",
            "duplicate_pct",
            "cache_hit_pct",
        ],
        title=f"Table 4: pruning performance (scale={scale})",
    )
    write_report("table4_pruning", report)

    for row in rows:
        assert row["generated"] >= row["to_try"]
        # The cache absorbs a substantial share of the work everywhere (the
        # spreadsheet dataset is the low end in the paper as well: 51 %).
        assert row["cache_hit_pct"] > 25.0
    mean_cache_hit = sum(row["cache_hit_pct"] for row in rows) / len(rows)
    assert mean_cache_hit > 50.0
    # Longer rows produce relatively more duplicates (Synth-50L vs Synth-50).
    by_key = {(r["matching"], r["dataset"]): r for r in rows}
    assert (
        by_key[("golden", "synth-50L")]["generated"]
        > by_key[("golden", "synth-50")]["generated"]
    )
