"""Shared helpers for the benchmark harness.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation (Section 6).  Benchmarks run at a reduced scale by default
so the whole harness finishes in minutes on a laptop; set the environment
variable ``REPRO_BENCH_SCALE`` (e.g. ``1.0`` for paper scale, ``0.05`` for a
smoke run) to change it.

Each benchmark prints the rows of the table/figure it reproduces (the same
columns the paper reports) and also appends them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference concrete
numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Directory where benchmark reports are written.
RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale(default: float = 0.15) -> float:
    """The dataset scale factor for benchmarks (1.0 = paper scale)."""
    value = os.environ.get("REPRO_BENCH_SCALE", "")
    if not value:
        return default
    scale = float(value)
    if scale <= 0:
        raise ValueError(f"REPRO_BENCH_SCALE must be positive, got {scale}")
    return scale


def write_report(name: str, text: str) -> Path:
    """Write a benchmark report to ``benchmarks/results/<name>.txt`` and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
    return path


@pytest.fixture(scope="session")
def scale() -> float:
    """Session-wide dataset scale factor."""
    return bench_scale()
