"""Table 2 — Transformation coverage and runtime, ours vs Auto-Join.

For every dataset, under both the n-gram row matching and the golden
matching, the paper reports: the coverage of the best single transformation
("Top Cov."), the coverage of the covering set ("Coverage"), the number of
transformations in the covering set ("#Trans.") and the running time, for our
approach and for Auto-Join.

Expected shape: our approach reaches (near-)full coverage with a handful of
transformations and runs orders of magnitude faster; Auto-Join's covering set
stays well below full coverage because each subset must be covered by a
single transformation.
"""

from __future__ import annotations

import time

from conftest import bench_scale, write_report

from repro.baselines.autojoin import AutoJoin, AutoJoinConfig
from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.core.pairs import RowPair
from repro.datasets.registry import load_dataset
from repro.evaluation.report import format_table
from repro.matching.row_matcher import GoldenRowMatcher, NGramRowMatcher

#: Datasets included in this benchmark run (a representative subset; add
#: "synth-500"/"synth-500L" for the full sweep at higher scales).
DATASETS = ["web", "spreadsheet", "synth-50", "synth-50L"]

#: Wall-clock budget per Auto-Join invocation, mirroring (at benchmark scale)
#: the one-week timeout the paper had to impose.
AUTOJOIN_TIME_LIMIT = 10.0


def _candidate_pairs(pair, matching: str) -> list[RowPair]:
    if matching == "golden":
        matcher = GoldenRowMatcher(pair.golden_pairs)
    else:
        matcher = NGramRowMatcher()
    return matcher.match(
        pair.source,
        pair.target,
        source_column=pair.source_column,
        target_column=pair.target_column,
    )


def _discovery_config(dataset_name: str) -> DiscoveryConfig:
    if dataset_name == "spreadsheet":
        return DiscoveryConfig.spreadsheet()
    return DiscoveryConfig.paper_default()


def run_comparison(dataset_name: str, matching: str, scale: float) -> dict[str, object]:
    """Run our discovery and Auto-Join on every pair of a dataset."""
    dataset = load_dataset(dataset_name, scale=scale, seed=0)
    engine = TransformationDiscovery(_discovery_config(dataset_name))
    ours = {"top": 0.0, "cover": 0.0, "ntrans": 0.0, "time": 0.0}
    theirs = {"top": 0.0, "cover": 0.0, "ntrans": 0.0, "time": 0.0}
    for pair in dataset:
        candidates = _candidate_pairs(pair, matching)

        started = time.perf_counter()
        result = engine.discover(candidates)
        ours["time"] += time.perf_counter() - started
        ours["top"] += result.top_coverage
        ours["cover"] += result.cover_coverage
        ours["ntrans"] += result.num_transformations

        autojoin = AutoJoin(
            AutoJoinConfig(
                num_subsets=6,
                subset_size=2,
                time_limit_seconds=AUTOJOIN_TIME_LIMIT,
                seed=0,
            )
        )
        started = time.perf_counter()
        aj_result = autojoin.discover(candidates)
        theirs["time"] += time.perf_counter() - started
        theirs["top"] += aj_result.top_coverage
        theirs["cover"] += aj_result.cover_coverage
        theirs["ntrans"] += aj_result.num_transformations

    count = len(dataset)
    return {
        "matching": matching,
        "dataset": dataset_name,
        "top_cov": ours["top"] / count,
        "aj_top_cov": theirs["top"] / count,
        "coverage": ours["cover"] / count,
        "aj_coverage": theirs["cover"] / count,
        "ntrans": ours["ntrans"] / count,
        "aj_ntrans": theirs["ntrans"] / count,
        "time_s": ours["time"] / count,
        "aj_time_s": theirs["time"] / count,
    }


def test_table2_coverage_and_runtime(benchmark):
    """Regenerate Table 2 (coverage and runtime, ours vs Auto-Join)."""
    scale = bench_scale()
    rows = []
    for matching in ("ngram", "golden"):
        for dataset_name in DATASETS:
            rows.append(run_comparison(dataset_name, matching, scale))

    # Benchmark our discovery on the golden synth-50 workload.
    synth = load_dataset("synth-50", scale=scale, seed=0)[0]
    engine = TransformationDiscovery()
    pairs = _candidate_pairs(synth, "golden")
    benchmark(engine.discover, pairs)

    report = format_table(
        rows,
        columns=[
            "matching",
            "dataset",
            "top_cov",
            "aj_top_cov",
            "coverage",
            "aj_coverage",
            "ntrans",
            "aj_ntrans",
            "time_s",
            "aj_time_s",
        ],
        title=(
            "Table 2: transformation coverage and runtime — ours vs Auto-Join "
            f"(scale={scale}, Auto-Join budget {AUTOJOIN_TIME_LIMIT}s/table)"
        ),
    )
    write_report("table2_coverage_runtime", report)

    golden_rows = [r for r in rows if r["matching"] == "golden"]
    for row in golden_rows:
        # Our covering set covers at least as much as Auto-Join's everywhere,
        # and reaches (near-)full coverage under golden matching.
        assert row["coverage"] >= row["aj_coverage"] - 1e-9
        assert row["coverage"] > 0.9
        # Orders-of-magnitude runtime gap in the paper; at benchmark scale we
        # conservatively require ours to be at least as fast.
        assert row["time_s"] <= row["aj_time_s"] * 1.5
