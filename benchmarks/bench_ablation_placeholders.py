"""Ablation — placeholder handling choices (Section 4.1.3 / Lemma 4).

DESIGN.md calls out two design choices around maximal-length placeholders:

* splitting maximal placeholders on common separators (recovers the coverage
  lost when a separator falls inside a maximal placeholder — Lemma 4 case 1),
* including the literal-only skeleton (lets constants that happen to occur in
  the source still be treated as literals).

This ablation measures the coverage and the size of the search space with
each choice disabled, on the web-tables and spreadsheet benchmarks.
"""

from __future__ import annotations

from conftest import bench_scale, write_report

from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.datasets.registry import load_dataset
from repro.evaluation.report import format_table

CONFIGURATIONS = {
    "paper default": DiscoveryConfig(),
    "no separator splitting": DiscoveryConfig(split_placeholders_on_separators=False),
    "no literal-only skeleton": DiscoveryConfig(include_literal_only_skeleton=False),
    "2 placeholders max": DiscoveryConfig(max_placeholders=2),
    "4 placeholders max": DiscoveryConfig(max_placeholders=4),
}

DATASETS = ["web", "spreadsheet"]


def run_configuration(
    name: str, config: DiscoveryConfig, dataset_name: str, scale: float
) -> dict[str, object]:
    """Average coverage/search-space statistics of one configuration."""
    dataset = load_dataset(dataset_name, scale=scale, seed=0)
    engine = TransformationDiscovery(config)
    top = cover = generated = ntrans = 0.0
    for pair in dataset:
        result = engine.discover_from_strings(pair.golden_string_pairs())
        top += result.top_coverage
        cover += result.cover_coverage
        generated += result.stats.generated_transformations
        ntrans += result.num_transformations
    count = len(dataset)
    return {
        "dataset": dataset_name,
        "configuration": name,
        "top_cov": top / count,
        "coverage": cover / count,
        "generated": generated / count,
        "ntrans": ntrans / count,
    }


def test_ablation_placeholder_handling(benchmark):
    """Compare placeholder-handling configurations on coverage and search size."""
    scale = bench_scale()
    rows = []
    for dataset_name in DATASETS:
        for name, config in CONFIGURATIONS.items():
            rows.append(run_configuration(name, config, dataset_name, scale))

    web = load_dataset("web", scale=scale, seed=0)[0]
    benchmark(
        TransformationDiscovery().discover_from_strings, web.golden_string_pairs()
    )

    report = format_table(
        rows,
        columns=["dataset", "configuration", "top_cov", "coverage", "generated", "ntrans"],
        title=f"Ablation: placeholder handling (scale={scale})",
    )
    write_report("ablation_placeholders", report)

    by_key = {(r["dataset"], r["configuration"]): r for r in rows}
    for dataset_name in DATASETS:
        default = by_key[(dataset_name, "paper default")]
        no_split = by_key[(dataset_name, "no separator splitting")]
        # Separator splitting never hurts coverage and typically helps.
        assert default["coverage"] >= no_split["coverage"] - 1e-9
        # A larger placeholder budget can only enlarge the search space.
        assert (
            by_key[(dataset_name, "4 placeholders max")]["generated"]
            >= by_key[(dataset_name, "2 placeholders max")]["generated"]
        )
