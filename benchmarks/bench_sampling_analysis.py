"""Section 5.3 — Performance under sampling (analytic curves + empirical check).

The paper argues that a small random sample is enough for our approach to
discover any transformation with non-trivial coverage (it needs only two
covered rows in the sample), while Auto-Join needs every row of a subset to
be covered and therefore many more subsets.  This benchmark prints the
analytic discovery probabilities for a grid of coverages and sample sizes and
verifies them empirically with the discovery engine.
"""

from __future__ import annotations

import random

from conftest import bench_scale, write_report

from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.core.sampling import (
    probability_discovered,
    required_subsets_for_autojoin,
)
from repro.evaluation.report import format_table

COVERAGES = [0.05, 0.1, 0.25, 0.5]
SAMPLE_SIZES = [10, 50, 100, 200]


def analytic_rows() -> list[dict[str, float]]:
    """The analytic discovery-probability grid plus Auto-Join subset counts."""
    rows = []
    for coverage in COVERAGES:
        row: dict[str, float] = {"coverage": coverage}
        for size in SAMPLE_SIZES:
            row[f"P_disc_s{size}"] = probability_discovered(coverage, size)
        row["autojoin_subsets_s2"] = required_subsets_for_autojoin(coverage, 2)
        rows.append(row)
    return rows


def empirical_discovery_rate(
    coverage: float, sample_size: int, trials: int, num_pairs: int = 400
) -> float:
    """Fraction of trials in which a q-coverage rule is found from a sample.

    The corpus mixes one dominant formatting rule ('last, first' -> 'first
    last') applied to a *coverage* fraction of rows with per-row noise on the
    rest; a trial succeeds when discovery on a random sample of the pairs
    still reports a transformation covering at least two sampled rows.
    """
    rng = random.Random(42)
    successes = 0
    for trial in range(trials):
        pairs = []
        for index in range(num_pairs):
            last = f"last{index:04d}"
            first = f"first{index:04d}"
            if rng.random() < coverage:
                pairs.append((f"{last}, {first}", f"{first} {last}"))
            else:
                pairs.append((f"{last}, {first}", f"row-{trial}-{index}-noise"))
        config = DiscoveryConfig(sample_size=sample_size, sample_seed=trial)
        result = TransformationDiscovery(config).discover_from_strings(pairs)
        best = result.best
        if best is not None and best.coverage >= 2 and not best.transformation.is_constant:
            successes += 1
    return successes / trials


def test_sampling_analysis(benchmark):
    """Regenerate the Section 5.3 sampling analysis."""
    scale = bench_scale()
    rows = analytic_rows()
    report = format_table(
        rows,
        title="Section 5.3: probability a q-coverage transformation is discovered",
    )

    trials = max(5, int(round(20 * scale)))
    empirical = []
    for coverage in (0.1, 0.5):
        observed = empirical_discovery_rate(coverage, sample_size=100, trials=trials)
        predicted = probability_discovered(coverage, 100)
        empirical.append(
            {
                "coverage": coverage,
                "sample_size": 100,
                "predicted": predicted,
                "observed": observed,
                "trials": trials,
            }
        )
    report += "\n\n" + format_table(
        empirical,
        title="Empirical check (discovery from a 100-pair sample)",
    )
    write_report("sampling_analysis", report)

    benchmark(probability_discovered, 0.05, 100)

    # Shape assertions: the paper's two worked examples and the empirical
    # agreement with the analytic prediction.
    grid = {row["coverage"]: row for row in rows}
    assert grid[0.05]["P_disc_s100"] > 0.95
    assert grid[0.05]["autojoin_subsets_s2"] == 400
    for row in empirical:
        assert row["observed"] >= row["predicted"] - 0.25
