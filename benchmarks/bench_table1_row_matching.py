"""Table 1 — Row matching performance.

For every dataset the paper reports: number of rows, average join-entry
length, number of candidate pairs produced by the n-gram matcher, and the
precision / recall / F1 of those candidates against the golden matching.

Expected shape (paper): P/R above 0.8 on web, spreadsheet, and synthetic
data; open data keeps high recall but collapses in precision because of
low-information address n-grams.
"""

from __future__ import annotations

from conftest import bench_scale, write_report

from repro.datasets.registry import load_dataset
from repro.evaluation.matching_metrics import evaluate_matching
from repro.evaluation.report import format_table
from repro.matching.row_matcher import NGramRowMatcher

DATASETS = ["web", "spreadsheet", "open", "synth-50", "synth-50L", "synth-500"]


def run_row_matching(dataset_name: str, scale: float) -> dict[str, float]:
    """Match every pair of the dataset and aggregate Table-1 style metrics."""
    dataset = load_dataset(dataset_name, scale=scale, seed=0)
    matcher = NGramRowMatcher()
    rows = 0.0
    length = 0.0
    num_pairs = 0.0
    precision = recall = f1 = 0.0
    for pair in dataset:
        candidates = matcher.match(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        metrics = evaluate_matching(candidates, pair.golden_pairs)
        rows += pair.num_source_rows
        length += pair.average_join_length
        num_pairs += len(candidates)
        precision += metrics.precision
        recall += metrics.recall
        f1 += metrics.f1
    count = len(dataset)
    return {
        "dataset": dataset_name,
        "rows": rows / count,
        "avg_len": length / count,
        "pairs": num_pairs / count,
        "P": precision / count,
        "R": recall / count,
        "F1": f1 / count,
    }


def test_table1_row_matching(benchmark):
    """Regenerate Table 1 (row matching performance)."""
    scale = bench_scale()
    rows = [run_row_matching(name, scale) for name in DATASETS[:-1]]
    # Benchmark the matcher itself on the synthetic dataset (stable workload).
    synth = load_dataset("synth-50", scale=scale, seed=0)[0]
    matcher = NGramRowMatcher()
    benchmark(
        matcher.match,
        synth.source,
        synth.target,
        source_column=synth.source_column,
        target_column=synth.target_column,
    )
    report = format_table(
        rows,
        columns=["dataset", "rows", "avg_len", "pairs", "P", "R", "F1"],
        title=f"Table 1: row matching performance (scale={scale})",
    )
    write_report("table1_row_matching", report)
    by_name = {row["dataset"]: row for row in rows}
    # Shape assertions from the paper.
    assert by_name["spreadsheet"]["F1"] > 0.7
    assert by_name["web"]["F1"] > 0.5
    assert by_name["synth-50"]["P"] > 0.8
    assert by_name["open"]["R"] > 0.6
    assert by_name["open"]["P"] < by_name["spreadsheet"]["P"]
