"""Figure 4b — Runtime breakdown as the input length grows (horizontal growth).

The paper fixes the number of rows at 100 and sweeps the row length from 20
to 280 characters.  With no pruning the running time would grow cubically in
the length (l^p with p=3); the pruning strategies keep it far below that, and
beyond a certain length the duplicate-removal / placeholder-generation stages
take longer than applying the surviving transformations.
"""

from __future__ import annotations

from conftest import bench_scale, write_report

from repro.core.discovery import TransformationDiscovery
from repro.datasets.synthetic import generate_length_sweep_pair
from repro.evaluation.report import format_table

FULL_LENGTHS = [20, 60, 100, 140, 180, 220, 260]


def sweep_lengths(scale: float) -> list[int]:
    """The subset of FULL_LENGTHS used at the given scale."""
    count = max(3, int(round(len(FULL_LENGTHS) * min(1.0, scale * 4))))
    return FULL_LENGTHS[:count]


def run_length_point(row_length: int, num_rows: int) -> dict[str, float]:
    """One point of the Figure 4b sweep."""
    pair, _ = generate_length_sweep_pair(
        num_rows=num_rows, row_length=row_length, seed=1000 + row_length
    )
    engine = TransformationDiscovery()
    result = engine.discover_from_strings(pair.golden_string_pairs())
    stages = result.stats.stage_seconds
    return {
        "length": row_length,
        "unit_extraction_s": stages.get("unit_extraction", 0.0),
        "placeholder_gen_s": stages.get("placeholder_generation", 0.0),
        "duplicate_removal_s": stages.get("duplicate_removal", 0.0),
        "applying_trans_s": stages.get("applying_transformations", 0.0),
        "total_s": result.stats.total_seconds,
    }


def test_fig4b_runtime_vs_length(benchmark):
    """Regenerate Figure 4b (runtime breakdown vs input length)."""
    scale = bench_scale()
    num_rows = max(20, int(round(100 * scale)))
    lengths = sweep_lengths(scale)
    rows = [run_length_point(length, num_rows) for length in lengths]

    benchmark(run_length_point, lengths[0], num_rows)

    report = format_table(
        rows,
        columns=[
            "length",
            "unit_extraction_s",
            "placeholder_gen_s",
            "duplicate_removal_s",
            "applying_trans_s",
            "total_s",
        ],
        title=f"Figure 4b: runtime vs input length (rows={num_rows})",
        float_format="{:.4f}",
    )
    write_report("fig4b_runtime_vs_length", report)

    # Shape: total time grows with the input length but far slower than the
    # un-pruned cubic bound (doubling the length should not increase the total
    # time by the 8x a cubic growth would imply — allow generous slack).
    assert rows[-1]["total_s"] > rows[0]["total_s"]
    length_ratio = rows[-1]["length"] / rows[0]["length"]
    time_ratio = rows[-1]["total_s"] / max(rows[0]["total_s"], 1e-9)
    assert time_ratio < length_ratio**3
