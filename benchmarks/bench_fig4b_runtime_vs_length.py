"""Figure 4b — Runtime breakdown as the input length grows (horizontal growth).

The paper fixes the number of rows at 100 and sweeps the row length from 20
to 280 characters.  With no pruning the running time would grow cubically in
the length (l^p with p=3); the pruning strategies keep it far below that, and
beyond a certain length the duplicate-removal / placeholder-generation stages
take longer than applying the surviving transformations.

Results are emitted through :class:`repro.perf.BenchmarkRunner`'s JSON writer
to ``benchmarks/results/BENCH_fig4b_runtime_vs_length.json``.
"""

from __future__ import annotations

from conftest import RESULTS_DIR, bench_scale

from repro.perf import BenchmarkRunner, validate_payload

FULL_LENGTHS = [20, 60, 100, 140, 180, 220, 260]


def sweep_lengths(scale: float) -> list[int]:
    """The subset of FULL_LENGTHS used at the given scale."""
    count = max(3, int(round(len(FULL_LENGTHS) * min(1.0, scale * 4))))
    return FULL_LENGTHS[:count]


def run_length_point(runner: BenchmarkRunner, row_length: int, num_rows: int) -> dict:
    """One point of the Figure 4b sweep (packed engine, matching + discovery).

    As in fig4a, the ``apply_only`` serving stage is stripped: the paper's
    figure reports matching + discovery runtime only.
    """
    record, _, _, _ = runner.discovery_rung(
        num_rows, "packed", row_length=row_length
    )
    record = dict(record)
    record["stages"] = {
        stage: seconds
        for stage, seconds in record["stages"].items()
        if stage != "apply_only"
    }
    # As in fig4a: no orphan serving-path keys in the stripped record.
    record.pop("apply_s", None)
    record.pop("joined_pairs", None)
    record["total_s"] = record["matching_s"] + record["discovery_s"]
    return record


def test_fig4b_runtime_vs_length(benchmark):
    """Regenerate Figure 4b (runtime breakdown vs input length)."""
    scale = bench_scale()
    num_rows = max(20, int(round(100 * scale)))
    lengths = sweep_lengths(scale)
    # The sweep drives discovery_rung() per length below; the runner's ladder
    # is not consumed, so only the parameters that are get passed.
    runner = BenchmarkRunner(seed=1000, output_dir=RESULTS_DIR)
    rungs = []
    for length in lengths:
        record = run_length_point(runner, length, num_rows)
        rungs.append(
            {"rows": num_rows, "row_length": length, "engines": {"packed": record}}
        )

    benchmark(run_length_point, runner, lengths[0], num_rows)

    payload = {
        "benchmark": "fig4b_runtime_vs_length",
        "harness": "repro.perf.BenchmarkRunner",
        "config": {"num_rows": num_rows, "lengths": lengths, "scale": scale},
        "rungs": rungs,
    }
    path = runner.write("fig4b_runtime_vs_length", payload)
    assert validate_payload(payload) == []
    assert path.exists()

    # Shape: total time grows with the input length but far slower than the
    # un-pruned cubic bound (doubling the length should not increase the total
    # time by the 8x a cubic growth would imply — allow generous slack).
    totals = [rung["engines"]["packed"]["total_s"] for rung in rungs]
    assert totals[-1] > totals[0]
    length_ratio = lengths[-1] / lengths[0]
    time_ratio = totals[-1] / max(totals[0], 1e-9)
    assert time_ratio < length_ratio**3
