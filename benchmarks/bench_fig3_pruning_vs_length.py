"""Figure 3 — Effect of pruning as the input length grows.

The paper fixes the number of rows at 100 and sweeps the row length from 20
to 280 characters, reporting the percentage of generated transformations that
are duplicates and the cache hit ratio.

Expected shape: both percentages stay high and the duplicate percentage grows
with the input length (longer rows mean more chance matches, which different
rows generate redundantly).
"""

from __future__ import annotations

from conftest import bench_scale, write_report

from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.datasets.synthetic import generate_length_sweep_pair
from repro.evaluation.report import format_table

#: Row lengths swept (the paper goes to 280; trimmed proportionally to scale).
FULL_LENGTHS = [20, 60, 100, 140, 180, 220, 260]


def sweep_lengths(scale: float) -> list[int]:
    """The subset of FULL_LENGTHS used at the given scale."""
    count = max(3, int(round(len(FULL_LENGTHS) * min(1.0, scale * 4))))
    return FULL_LENGTHS[:count]


def run_length_point(row_length: int, num_rows: int) -> dict[str, float]:
    """One point of the Figure 3 sweep."""
    pair, _ = generate_length_sweep_pair(
        num_rows=num_rows, row_length=row_length, seed=row_length
    )
    # Pin the one-at-a-time coverage engine: the figure reproduces the
    # paper's per-(transformation, row) cache hit ratio, which the batched
    # engine tallies differently (whole subtrees at once).
    engine = TransformationDiscovery(DiscoveryConfig(use_batched_coverage=False))
    result = engine.discover_from_strings(pair.golden_string_pairs())
    return {
        "length": row_length,
        "generated": result.stats.generated_transformations,
        "to_try": result.stats.unique_transformations,
        "duplicate_pct": 100.0 * result.stats.duplicate_ratio,
        "cache_hit_pct": 100.0 * result.stats.cache_hit_ratio,
    }


def test_fig3_pruning_vs_input_length(benchmark):
    """Regenerate Figure 3 (pruning percentage vs input length)."""
    scale = bench_scale()
    num_rows = max(20, int(round(100 * scale)))
    lengths = sweep_lengths(scale)
    rows = [run_length_point(length, num_rows) for length in lengths]

    benchmark(run_length_point, lengths[0], num_rows)

    report = format_table(
        rows,
        columns=["length", "generated", "to_try", "duplicate_pct", "cache_hit_pct"],
        title=(
            "Figure 3: pruning vs input length "
            f"(rows={num_rows}, lengths={lengths})"
        ),
    )
    write_report("fig3_pruning_vs_length", report)

    # Shape: the cache stays effective at every length, and duplicates become
    # (weakly) more prevalent as rows get longer.
    for row in rows:
        assert row["cache_hit_pct"] > 40.0
    assert rows[-1]["duplicate_pct"] >= rows[0]["duplicate_pct"] - 5.0
    assert rows[-1]["generated"] > rows[0]["generated"]
