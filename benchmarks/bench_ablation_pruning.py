"""Ablation — runtime impact of the two pruning strategies (Section 6.6).

The paper reports (for the web-tables dataset) that cache-based pruning cuts
the runtime to ~61 % of the no-cache runtime.  This ablation disables the
non-covering-unit cache and duplicate removal one at a time and compares
wall-clock time and the number of full transformation applications.
"""

from __future__ import annotations

import time

from conftest import bench_scale, write_report

from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.datasets.synthetic import SyntheticConfig, generate_table_pair
from repro.evaluation.report import format_table

# Every configuration pins the one-transformation-at-a-time coverage engine
# (use_batched_coverage=False) so the ablation isolates the paper's pruning
# strategies themselves; the trie-batched engine would otherwise only run in
# the cache-enabled rows and its subtree skipping would be conflated with the
# cache effect being measured.
CONFIGURATIONS = {
    "full pruning": DiscoveryConfig(use_batched_coverage=False),
    "no unit cache": DiscoveryConfig(
        use_unit_cache=False, use_batched_coverage=False
    ),
    "no duplicate removal": DiscoveryConfig(
        use_duplicate_removal=False, use_batched_coverage=False
    ),
    "no pruning at all": DiscoveryConfig(
        use_unit_cache=False,
        use_duplicate_removal=False,
        use_batched_coverage=False,
    ),
}


def run_configuration(name: str, config: DiscoveryConfig, pairs) -> dict[str, object]:
    """Run discovery once under *config* and record time and work counters."""
    engine = TransformationDiscovery(config)
    started = time.perf_counter()
    result = engine.discover_from_strings(pairs)
    elapsed = time.perf_counter() - started
    return {
        "configuration": name,
        "time_s": elapsed,
        "applications": result.stats.applications,
        "transformations_tried": result.stats.unique_transformations,
        "cover_coverage": result.cover_coverage,
    }


def test_ablation_pruning_strategies(benchmark):
    """Compare discovery with and without each pruning strategy."""
    scale = bench_scale()
    num_rows = max(20, int(round(60 * scale * 4)))
    config = SyntheticConfig(num_rows=num_rows, min_length=30, max_length=45, seed=7)
    pair, _ = generate_table_pair(config)
    pairs = pair.golden_string_pairs()

    rows = [run_configuration(name, cfg, pairs) for name, cfg in CONFIGURATIONS.items()]

    benchmark(TransformationDiscovery(DiscoveryConfig()).discover_from_strings, pairs)

    report = format_table(
        rows,
        columns=[
            "configuration",
            "time_s",
            "applications",
            "transformations_tried",
            "cover_coverage",
        ],
        title=f"Ablation: pruning strategies (rows={num_rows})",
        float_format="{:.4f}",
    )
    write_report("ablation_pruning", report)

    by_name = {row["configuration"]: row for row in rows}
    # Pruning never changes the outcome, only the work.
    coverages = {row["cover_coverage"] for row in rows}
    assert max(coverages) - min(coverages) < 1e-9
    # The cache strictly reduces the number of full applications.
    assert (
        by_name["full pruning"]["applications"]
        < by_name["no unit cache"]["applications"]
    )
    # Duplicate removal strictly reduces the number of transformations tried.
    assert (
        by_name["full pruning"]["transformations_tried"]
        <= by_name["no duplicate removal"]["transformations_tried"]
    )
