"""Stop-gram cap calibration — the recall/runtime trade-off of pruning.

``MatchingConfig.stop_gram_cap`` drops the posting arrays of n-grams that
occur in more than ``cap`` target rows.  Such n-grams behave like stop words:
their Rscore is so low that they are rarely representatives, but their
posting lists are the longest in the index, so capping them bounds both
memory and the worst-case candidate scan.  The open ROADMAP item asks what a
reasonable default is; this sweep answers it with numbers.

For every rung of the synthetic ladder and every cap the sweep reports:

* ``pruned``    — n-grams whose postings were dropped,
* ``pairs``     — candidate pairs emitted (pruning can only remove pairs),
* ``cand_rec``  — candidate recall against the exact (cap = 0) matcher,
* ``gold_rec``  — recall of the golden matching among the candidates (the
  number that matters for the end-to-end join),
* ``time_s`` / ``speedup`` — matching wall clock vs. the exact matcher.

Observed result (synthetic ladder, row length 28, see
``benchmarks/results/stop_gram_cap.txt``): even a cap of 4 prunes only a few
hundred n-grams, candidate and golden recall hold at exactly 1.0 for *every*
cap, and the wall clock is flat (±7 %) — representatives are by construction
the *rarest* n-grams, so the pruned stop-grams are never scanned on this
workload, and matching time is dominated by representative scoring, not
posting scans.  The default therefore stays **0 (off, exact Algorithm 1)**:
there is nothing to win on well-behaved data, and exactness keeps the
matcher byte-comparable to the reference spec.  For memory-bound or
adversarial deployments (columns dominated by shared boilerplate n-grams)
``cap = 64`` is the documented setting — on this ladder it is lossless while
still bounding every posting array.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_stop_gram_cap.py -s``.
"""

from __future__ import annotations

import json
import time

from conftest import RESULTS_DIR, bench_scale, write_report

from repro.datasets.synthetic import SyntheticConfig, generate_table_pair
from repro.evaluation.report import format_table
from repro.matching.index import InvertedIndex
from repro.matching.row_matcher import MatchingConfig, emit_candidate_pairs

#: Row-frequency caps swept (0 = pruning off, the exact matcher).
CAPS = (0, 4, 16, 64, 256)

#: Synthetic ladder rungs (scaled by REPRO_BENCH_SCALE).
RUNGS = (2000, 5000)


def sweep_rung(num_rows: int, seed: int = 0) -> list[dict]:
    """Sweep every cap at one ladder rung; returns one report row per cap."""
    pair, _ = generate_table_pair(
        SyntheticConfig(num_rows=num_rows, min_length=28, max_length=28, seed=seed),
        name=f"stop-gram-{num_rows}",
    )
    source_values = list(pair.source["value"])
    target_values = list(pair.target["value"])
    golden = set(pair.golden_pairs)

    baseline_pairs: set[tuple[int, int]] | None = None
    baseline_seconds = 0.0
    rows: list[dict] = []
    for cap in CAPS:
        config = MatchingConfig(stop_gram_cap=cap)
        # The exact composition of NGramRowMatcher.match_values, inlined so
        # one index build serves both the timing and the pruned-gram count.
        started = time.perf_counter()
        index = InvertedIndex.build(
            target_values,
            min_size=config.min_ngram,
            max_size=config.max_ngram,
            lowercase=config.lowercase,
            stop_gram_cap=cap,
        )
        representatives = index.representatives(source_values)
        candidates = emit_candidate_pairs(
            source_values,
            target_values,
            index,
            representatives,
            config.max_candidates_per_row,
        )
        elapsed = time.perf_counter() - started

        candidate_set = {(p.source_row, p.target_row) for p in candidates}
        if cap == 0:
            baseline_pairs = candidate_set
            baseline_seconds = elapsed
        assert baseline_pairs is not None
        # Pruning can only drop candidates, never invent them.
        assert candidate_set <= baseline_pairs
        rows.append(
            {
                "rows": num_rows,
                "cap": cap,
                "pruned": index.num_pruned_ngrams,
                "pairs": len(candidate_set),
                "cand_rec": (
                    len(candidate_set & baseline_pairs) / len(baseline_pairs)
                    if baseline_pairs
                    else 1.0
                ),
                "gold_rec": (
                    len(candidate_set & golden) / len(golden) if golden else 1.0
                ),
                "time_s": elapsed,
                "speedup": baseline_seconds / elapsed if elapsed > 0 else 0.0,
            }
        )
    return rows


def test_stop_gram_cap_calibration():
    """Regenerate the stop-gram cap calibration report."""
    scale = bench_scale(default=1.0)
    rows: list[dict] = []
    for rung in RUNGS:
        rows.extend(sweep_rung(max(50, int(rung * scale))))

    write_report(
        "stop_gram_cap",
        format_table(rows, title="stop-gram cap calibration (synthetic ladder)"),
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "stop_gram_cap.json").write_text(
        json.dumps({"caps": list(CAPS), "rows": rows}, indent=2) + "\n",
        encoding="utf-8",
    )

    # The calibration contract behind the documented default: pruning must
    # never invent pairs (asserted per cap above), and the golden matching
    # must survive the documented memory-bound setting (cap = 64).
    for row in rows:
        if row["cap"] >= 64:
            assert row["gold_rec"] >= 0.99, row
