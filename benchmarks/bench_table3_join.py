"""Table 3 — End-to-end join performance: ours vs Auto-FuzzyJoin vs Auto-Join.

For every dataset the paper reports the precision / recall / F1 of the final
join.  Our approach applies the covering set of transformations (with a
minimum support of 5 %, 2 % for open data); Auto-FuzzyJoin joins by textual
similarity; Auto-Join joins using the transformations it finds on its
subsets.

Expected shape: our approach has the best F1 on every dataset; Auto-Join is
precise but misses rows (lower recall); Auto-FuzzyJoin trails on datasets
where the join columns are not textually similar after formatting changes.
"""

from __future__ import annotations

from conftest import bench_scale, write_report

from repro.baselines.autojoin import AutoJoin, AutoJoinConfig
from repro.baselines.fuzzyjoin import AutoFuzzyJoin
from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.datasets.registry import load_dataset
from repro.evaluation.join_metrics import evaluate_join
from repro.evaluation.report import format_table
from repro.join.joiner import TransformationJoiner
from repro.matching.row_matcher import NGramRowMatcher

DATASETS = ["web", "spreadsheet", "synth-50", "synth-50L"]


def _min_support(dataset_name: str) -> float:
    return 0.02 if dataset_name == "open" else 0.05


def run_joins(dataset_name: str, scale: float) -> dict[str, object]:
    """Join every pair of a dataset with all three systems and average P/R/F."""
    dataset = load_dataset(dataset_name, scale=scale, seed=0)
    matcher = NGramRowMatcher()
    config = (
        DiscoveryConfig.spreadsheet()
        if dataset_name == "spreadsheet"
        else DiscoveryConfig.paper_default()
    )
    engine = TransformationDiscovery(config)

    totals = {
        "ours": [0.0, 0.0, 0.0],
        "afj": [0.0, 0.0, 0.0],
        "autojoin": [0.0, 0.0, 0.0],
    }
    for pair in dataset:
        candidates = matcher.match(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )

        # Ours: discovery + supported transformation join.
        discovery = engine.discover(candidates)
        joiner = TransformationJoiner(
            discovery.transformations,
            min_support=_min_support(dataset_name),
            coverage_results=discovery.cover,
            num_candidate_pairs=len(candidates),
        )
        ours = joiner.join(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        metrics = evaluate_join(ours.as_set(), pair.golden_pairs)
        for index, value in enumerate((metrics.precision, metrics.recall, metrics.f1)):
            totals["ours"][index] += value

        # Auto-FuzzyJoin: similarity join, no transformations.
        afj = AutoFuzzyJoin().join(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        metrics = evaluate_join(afj.as_set(), pair.golden_pairs)
        for index, value in enumerate((metrics.precision, metrics.recall, metrics.f1)):
            totals["afj"][index] += value

        # Auto-Join: its transformations, then the same join machinery.
        aj = AutoJoin(
            AutoJoinConfig(num_subsets=6, subset_size=2, time_limit_seconds=10.0)
        ).discover(candidates)
        aj_joiner = TransformationJoiner(aj.transformations)
        aj_join = aj_joiner.join(
            pair.source,
            pair.target,
            source_column=pair.source_column,
            target_column=pair.target_column,
        )
        metrics = evaluate_join(aj_join.as_set(), pair.golden_pairs)
        for index, value in enumerate((metrics.precision, metrics.recall, metrics.f1)):
            totals["autojoin"][index] += value

    count = len(dataset)
    row: dict[str, object] = {"dataset": dataset_name}
    for system, (precision, recall, f1) in totals.items():
        row[f"{system}_P"] = precision / count
        row[f"{system}_R"] = recall / count
        row[f"{system}_F"] = f1 / count
    return row


def test_table3_join_performance(benchmark):
    """Regenerate Table 3 (end-to-end join performance)."""
    scale = bench_scale()
    rows = [run_joins(name, scale) for name in DATASETS]

    # Benchmark the transformation join itself on a representative pair.
    pair = load_dataset("synth-50", scale=scale, seed=0)[0]
    engine = TransformationDiscovery()
    discovery = engine.discover_from_strings(pair.golden_string_pairs())
    joiner = TransformationJoiner(discovery.transformations)
    benchmark(
        joiner.join,
        pair.source,
        pair.target,
        source_column=pair.source_column,
        target_column=pair.target_column,
    )

    report = format_table(
        rows,
        columns=[
            "dataset",
            "ours_P",
            "ours_R",
            "ours_F",
            "afj_P",
            "afj_R",
            "afj_F",
            "autojoin_P",
            "autojoin_R",
            "autojoin_F",
        ],
        title=f"Table 3: end-to-end join performance (scale={scale})",
    )
    write_report("table3_join", report)

    for row in rows:
        # Paper shape: our F1 beats Auto-Join everywhere and at least matches
        # Auto-FuzzyJoin (the paper's margins over AFJ on web tables are a few
        # points; at reduced benchmark scale the small, clean tables make the
        # similarity baseline artificially easy, so allow a small tolerance).
        assert row["ours_F"] >= row["autojoin_F"] - 1e-9
        assert row["ours_F"] >= row["afj_F"] - 0.15
        assert row["ours_F"] > 0.5
    mean_ours = sum(row["ours_F"] for row in rows) / len(rows)
    mean_afj = sum(row["afj_F"] for row in rows) / len(rows)
    mean_autojoin = sum(row["autojoin_F"] for row in rows) / len(rows)
    # At reduced scale the tables are tiny and clean, which flatters the
    # similarity baseline (see EXPERIMENTS.md); at larger scales the gap turns
    # in our favour as in the paper.
    assert mean_ours >= mean_afj - 0.10
    assert mean_ours > mean_autojoin
