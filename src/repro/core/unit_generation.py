"""Candidate unit generation per placeholder (Section 4.1.4 of the paper).

Given a placeholder (its text and where it matches in the source), the
generator produces every transformation unit that can emit that text from the
source:

1. ``Substr(s, e)`` for every recorded match position,
2. ``Split(c, i)`` where *c* is the character immediately before or after a
   match in the source, *c* does not occur in the placeholder text, and the
   *i*-th split piece equals the text,
3. ``SplitSubstr(c, i, s, e)`` where *c* is any source character not occurring
   in the text and the text appears inside the *i*-th split piece,
4. ``TwoCharSplitSubstr(c1, c2, i, s, e)`` analogously for two delimiters
   (disabled by default, matching the paper's experimental setup),
5. ``Literal(text)`` — useful when a constant of the target happens to occur
   in the source by chance.

Because the expected output and its source positions are known, the parameter
search is narrow — this is exactly what makes the approach fast compared to
Auto-Join's blind enumeration.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.config import DiscoveryConfig
from repro.core.placeholders import Placeholder
from repro.core.units import (
    Literal,
    Split,
    SplitSubstr,
    Substr,
    TransformationUnit,
    TwoCharSplitSubstr,
)


class UnitGenerator:
    """Generate the candidate units that replace a placeholder."""

    def __init__(self, config: DiscoveryConfig | None = None) -> None:
        self._config = config or DiscoveryConfig()
        self._enabled = frozenset(self._config.enabled_units)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def candidates(
        self, source: str, placeholder: Placeholder
    ) -> list[TransformationUnit]:
        """All candidate units that map *source* to the placeholder text."""
        text = placeholder.text
        units: list[TransformationUnit] = []
        seen: set[TransformationUnit] = set()

        def add(unit: TransformationUnit) -> None:
            if unit not in seen and unit.apply(source) == text:
                seen.add(unit)
                units.append(unit)

        if "Literal" in self._enabled:
            literal = Literal(text)
            if literal not in seen:
                seen.add(literal)
                units.append(literal)

        matches = placeholder.source_matches[
            : self._config.max_matches_per_placeholder
        ]
        for start in matches:
            end = start + len(text)
            if "Substr" in self._enabled:
                add(Substr(start, end))
            if "Split" in self._enabled:
                for unit in self._split_candidates(source, text, start, end):
                    add(unit)
            if "SplitSubstr" in self._enabled:
                for unit in self._split_substr_candidates(source, text, start, end):
                    add(unit)
            if "TwoCharSplitSubstr" in self._enabled:
                for unit in self._two_char_candidates(source, text, start, end):
                    add(unit)
        return units

    def literal_unit(self, text: str) -> Literal:
        """The literal unit for a skeleton's literal gap."""
        return Literal(text)

    # ------------------------------------------------------------------ #
    # Split(c, i)
    # ------------------------------------------------------------------ #
    def _split_candidates(
        self, source: str, text: str, start: int, end: int
    ) -> list[Split]:
        """Split units whose delimiter is adjacent to the match in the source."""
        candidates: list[Split] = []
        adjacent: list[str] = []
        if start > 0:
            adjacent.append(source[start - 1])
        if end < len(source):
            adjacent.append(source[end])
        for delimiter in dict.fromkeys(adjacent):
            if delimiter in text:
                continue
            pieces = source.split(delimiter)
            for index, piece in enumerate(pieces, start=1):
                if piece == text:
                    candidates.append(Split(delimiter, index))
        return candidates

    # ------------------------------------------------------------------ #
    # SplitSubstr(c, i, s, e)
    # ------------------------------------------------------------------ #
    def _split_substr_candidates(
        self, source: str, text: str, start: int, end: int
    ) -> list[SplitSubstr]:
        """SplitSubstr units for promising source delimiters.

        Only the split piece that contains the match at [start, end) is
        considered, which keeps the candidate count per delimiter at one while
        still producing a unit that generalizes across rows with the same
        layout.  Delimiters are restricted to separator characters plus the
        characters adjacent to the match: those are the ones likely to be
        common across rows, and this keeps the per-placeholder parameter
        space O(1) (Section 5.1's observation).
        """
        candidates: list[SplitSubstr] = []
        for delimiter in self._split_delimiters(source, text, start, end):
            piece_index, piece_start = self._piece_containing(
                source, delimiter, start
            )
            if piece_index is None or piece_start is None:
                continue
            piece = source.split(delimiter)[piece_index - 1]
            offset = start - piece_start
            if offset < 0 or offset + len(text) > len(piece):
                continue
            if piece[offset : offset + len(text)] != text:
                continue
            candidates.append(
                SplitSubstr(delimiter, piece_index, offset, offset + len(text))
            )
        return candidates

    def _delimiters(self, source: str, text: str) -> list[str]:
        """Distinct source characters usable as delimiters for *text*."""
        return [c for c in dict.fromkeys(source) if c not in text]

    def _split_delimiters(
        self, source: str, text: str, start: int, end: int
    ) -> list[str]:
        """Delimiters worth trying for SplitSubstr around a specific match.

        Separator characters (whitespace/punctuation) anywhere in the source,
        plus whatever characters immediately precede and follow the match.
        """
        from repro.utils.text import is_separator

        promising: list[str] = [c for c in dict.fromkeys(source) if is_separator(c)]
        if start > 0:
            promising.append(source[start - 1])
        if end < len(source):
            promising.append(source[end])
        return [c for c in dict.fromkeys(promising) if c not in text]

    @staticmethod
    def _piece_containing(
        source: str, delimiter: str, position: int
    ) -> tuple[int | None, int | None]:
        """Locate the split piece containing source *position*.

        Returns (1-based piece index, start offset of the piece in *source*),
        or (None, None) when *position* falls on a delimiter character.
        """
        piece_start = 0
        index = 1
        for offset, char in enumerate(source):
            if char == delimiter:
                if piece_start <= position < offset:
                    return index, piece_start
                if position == offset:
                    return None, None
                piece_start = offset + 1
                index += 1
        if piece_start <= position <= len(source):
            return index, piece_start
        return None, None

    # ------------------------------------------------------------------ #
    # TwoCharSplitSubstr(c1, c2, i, s, e)
    # ------------------------------------------------------------------ #
    def _two_char_candidates(
        self, source: str, text: str, start: int, end: int
    ) -> list[TwoCharSplitSubstr]:
        """TwoCharSplitSubstr units over pairs of delimiters.

        The pair search is bounded to the separator-like characters adjacent
        to or surrounding the match so the candidate count stays small.
        """
        candidates: list[TwoCharSplitSubstr] = []
        delimiters = self._delimiters(source, text)
        # Bound the pair enumeration: prefer characters close to the match.
        nearby = [c for c in delimiters if c in source[max(0, start - 3) : end + 3]]
        pool = nearby if len(nearby) >= 2 else delimiters[:6]
        for delim1, delim2 in combinations(dict.fromkeys(pool), 2):
            unit = self._two_char_for(source, text, start, delim1, delim2)
            if unit is not None:
                candidates.append(unit)
        return candidates

    @staticmethod
    def _two_char_for(
        source: str, text: str, start: int, delim1: str, delim2: str
    ) -> TwoCharSplitSubstr | None:
        pieces: list[str] = []
        piece_starts: list[int] = [0]
        current: list[str] = []
        for offset, char in enumerate(source):
            if char == delim1 or char == delim2:
                pieces.append("".join(current))
                piece_starts.append(offset + 1)
                current = []
            else:
                current.append(char)
        pieces.append("".join(current))
        for index, (piece, piece_start) in enumerate(
            zip(pieces, piece_starts), start=1
        ):
            offset = start - piece_start
            if 0 <= offset and offset + len(text) <= len(piece):
                if piece[offset : offset + len(text)] == text:
                    return TwoCharSplitSubstr(
                        delim1, delim2, index, offset, offset + len(text)
                    )
        return None
