"""Transformation skeletons (Section 4.1.3 of the paper).

A *skeleton* is a sequence of placeholders and literals whose concatenation
reproduces the target text of a row.  Each skeleton is later expanded into
concrete transformations by replacing every placeholder with candidate
transformation units (:mod:`repro.core.unit_generation`).

For the pair ("Victor Robbie Kasumba", "Victor R. Kasumba") the paper's
example skeleton set is::

    {<(P: 'Victor R'), (L: '. '), (P: 'Kasumba')>,
     <(P: 'Victor'), (L: ' '), (P: 'R'), (L: '. '), (P: 'Kasumba')>,
     <(L: 'Victor R. Kasumba')>}

i.e. the maximal-placeholder skeleton, its separator-split refinement, and
the all-literal skeleton.  :class:`SkeletonBuilder` reproduces exactly that
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DiscoveryConfig
from repro.core.placeholders import Placeholder, PlaceholderExtractor


@dataclass(frozen=True, slots=True)
class SkeletonPiece:
    """One element of a skeleton: either a placeholder or a literal gap."""

    text: str
    is_placeholder: bool
    placeholder: Placeholder | None = None

    def __post_init__(self) -> None:
        if self.is_placeholder and self.placeholder is None:
            raise ValueError("placeholder pieces must carry their Placeholder")
        if not self.is_placeholder and self.placeholder is not None:
            raise ValueError("literal pieces must not carry a Placeholder")
        if not self.text:
            raise ValueError("skeleton pieces must not be empty")


@dataclass(frozen=True, slots=True)
class Skeleton:
    """A sequence of placeholders and literals that spells out the target."""

    pieces: tuple[SkeletonPiece, ...]

    def __post_init__(self) -> None:
        if not self.pieces:
            raise ValueError("a skeleton must contain at least one piece")

    @property
    def num_placeholders(self) -> int:
        """Number of placeholder pieces."""
        return sum(1 for piece in self.pieces if piece.is_placeholder)

    @property
    def target_text(self) -> str:
        """The concatenation of all pieces (== the row's target text)."""
        return "".join(piece.text for piece in self.pieces)

    def describe(self) -> str:
        """Render the skeleton as in the paper, e.g. ``<(P: 'a'), (L: 'b')>``."""
        rendered = ", ".join(
            f"({'P' if piece.is_placeholder else 'L'}: {piece.text!r})"
            for piece in self.pieces
        )
        return f"<{rendered}>"


class SkeletonBuilder:
    """Build the skeleton set of a (source, target) row pair."""

    def __init__(self, config: DiscoveryConfig | None = None) -> None:
        self._config = config or DiscoveryConfig()
        self._extractor = PlaceholderExtractor(
            min_length=self._config.min_placeholder_length,
            max_matches=self._config.max_matches_per_placeholder,
            split_on_separators=self._config.split_placeholders_on_separators,
        )

    @property
    def extractor(self) -> PlaceholderExtractor:
        """The underlying placeholder extractor."""
        return self._extractor

    def build(self, source: str, target: str) -> list[Skeleton]:
        """Return the skeletons of the pair, most-specific first.

        The result contains (subject to the ``max_placeholders`` bound):

        1. the maximal-placeholder skeleton,
        2. the separator-split refinement (when it differs),
        3. the all-literal skeleton (when enabled).

        Rows whose target is empty produce no skeletons.
        """
        if not target:
            return []
        skeletons: list[Skeleton] = []
        seen: set[tuple[tuple[str, bool], ...]] = set()
        placeholder_sets = self._extractor.extract(source, target)

        for key in ("maximal", "split"):
            placeholders = placeholder_sets.get(key)
            if placeholders is None:
                continue
            skeleton = self._assemble(target, placeholders)
            if skeleton is None:
                continue
            skeleton = self._demote_excess_placeholders(skeleton)
            if skeleton is None:
                continue
            signature = tuple((p.text, p.is_placeholder) for p in skeleton.pieces)
            if signature not in seen:
                seen.add(signature)
                skeletons.append(skeleton)

        if self._config.include_literal_only_skeleton:
            literal_only = Skeleton(
                (SkeletonPiece(text=target, is_placeholder=False),)
            )
            signature = ((target, False),)
            if signature not in seen:
                skeletons.append(literal_only)

        return skeletons

    def _demote_excess_placeholders(self, skeleton: Skeleton) -> Skeleton | None:
        """Keep the longest ``max_placeholders`` placeholders, demote the rest.

        A target often contains short blocks that occur in the source purely
        by chance (single letters of a constant e-mail domain, for example).
        Such blocks are placeholders by Definition 4, but a transformation
        with one unit per chance match would be long and overly specific.
        Rather than discarding a skeleton that exceeds the placeholder budget,
        the longest placeholders are kept — they carry the real copying
        evidence — and the remaining blocks become literals (which the paper
        explicitly allows: a literal may match the source by chance).
        """
        budget = self._config.max_placeholders
        if skeleton.num_placeholders <= budget:
            return skeleton
        placeholder_pieces = [p for p in skeleton.pieces if p.is_placeholder]
        keep = set(
            sorted(
                range(len(placeholder_pieces)),
                key=lambda i: (-len(placeholder_pieces[i].text), i),
            )[:budget]
        )
        pieces: list[SkeletonPiece] = []
        placeholder_index = 0
        for piece in skeleton.pieces:
            if piece.is_placeholder:
                if placeholder_index in keep:
                    pieces.append(piece)
                else:
                    pieces.append(SkeletonPiece(text=piece.text, is_placeholder=False))
                placeholder_index += 1
            else:
                pieces.append(piece)
        demoted = Skeleton(tuple(pieces))
        if demoted.num_placeholders == 0:
            return None
        return demoted

    def _assemble(
        self, target: str, placeholders: list[Placeholder]
    ) -> Skeleton | None:
        """Interleave *placeholders* with the literal gaps of *target*."""
        pieces: list[SkeletonPiece] = []
        cursor = 0
        for placeholder in placeholders:
            if placeholder.target_start > cursor:
                pieces.append(
                    SkeletonPiece(
                        text=target[cursor : placeholder.target_start],
                        is_placeholder=False,
                    )
                )
            pieces.append(
                SkeletonPiece(
                    text=placeholder.text,
                    is_placeholder=True,
                    placeholder=placeholder,
                )
            )
            cursor = placeholder.target_end
        if cursor < len(target):
            pieces.append(SkeletonPiece(text=target[cursor:], is_placeholder=False))
        if not pieces:
            return None
        skeleton = Skeleton(tuple(pieces))
        if skeleton.num_placeholders == 0:
            # Degenerates to the literal-only skeleton; let the caller decide
            # whether to include that.
            return None
        return skeleton
