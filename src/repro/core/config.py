"""Configuration of the transformation-discovery engine.

The defaults follow the experimental setup of Section 6.2 of the paper:

* at most 3 placeholders per transformation (4 for the spreadsheet dataset),
* ``TwoCharSplitSubstr`` disabled (the paper excludes it "to better manage the
  runtime ... this did not have much impact on our results"),
* no minimum support unless the dataset is noisy (the open-data experiments
  use 1 % for discovery and 2 % for the end-to-end join),
* maximal-length placeholders split on whitespace/punctuation separators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.units import UNIT_NAMES
from repro.parallel.executor import env_default_workers


@dataclass(frozen=True)
class DiscoveryConfig:
    """Tunable parameters of :class:`~repro.core.discovery.TransformationDiscovery`.

    Parameters
    ----------
    max_placeholders:
        Maximum number of placeholders per transformation skeleton.  Skeletons
        with more placeholders are discarded; this bounds both transformation
        length and the size of the Cartesian product of candidate units.
    min_placeholder_length:
        Minimum length (characters) of a block of target text considered a
        placeholder.  Shorter common blocks are treated as literals.
    enabled_units:
        Names of the transformation-unit classes the generator may emit.
    split_placeholders_on_separators:
        When True (the paper's approach), every maximal-length placeholder is
        additionally split on whitespace/punctuation and the resulting
        sub-placeholders generate an extra skeleton, which recovers coverage
        lost to over-long placeholders (Lemma 4, case 1).
    include_literal_only_skeleton:
        When True, the all-literal skeleton ``<Literal(target)>`` is generated
        for every row.  It guarantees a (useless but valid) cover exists and
        matches the paper's skeleton example.
    max_matches_per_placeholder:
        Cap on how many distinct source occurrences of a placeholder text are
        expanded into candidate units.
    min_support:
        Minimum number of covered rows for a transformation to be kept in the
        final cover (1 disables support filtering).  The open-data experiments
        use a relative threshold; use :meth:`with_relative_support`.
    sample_size:
        When positive and the input has more pairs than this, discovery runs
        on a deterministic random sample of this many pairs (Section 5.3) and
        coverage is then evaluated on the full input.
    sample_seed:
        Seed of the sampling RNG, for reproducibility.
    use_duplicate_removal / use_unit_cache:
        Toggles for the two pruning strategies of Section 6.6, exposed so the
        ablation benchmarks can disable them.
    use_batched_coverage:
        When True (default) and the unit cache is enabled, coverage is
        computed by the trie-walking batch engine of
        :meth:`~repro.core.coverage.CoverageComputer.coverage_of_all`, which
        consults the non-covering-unit cache once per (unit, row) instead of
        once per (transformation, row).  Covered rows are identical; disable
        to time the seed's one-transformation-at-a-time path.
    num_workers:
        Worker processes for the coverage stage (1 = serial, 0 = all cores;
        the default honours the ``REPRO_NUM_WORKERS`` environment variable).
        Rows are sharded across a process pool sharing the frozen unit trie
        (:mod:`repro.parallel`); results are byte-identical to the serial
        engine.  Only the batched path shards — with batching (or the unit
        cache) disabled the knob has no effect.
    min_rows_per_worker:
        Small-input fast path for the sharded coverage stage: when the rows
        per worker fall below this threshold (or the host has a single
        core), the pool is skipped and the serial batched engine runs —
        identical results, none of the fork cost.  ``None`` (default) reads
        ``REPRO_MIN_ROWS_PER_WORKER``; 0 disables the tuning so pools fork
        for any input size.
    time_budget_s:
        Wall-clock budget in seconds for one discovery run (0 = unbounded).
        The budget is enforced cooperatively: skeleton generation checks it
        between rows and the batched coverage walk between row blocks, so
        an exhausted budget degrades the run to a best-so-far cover of the
        work finished in time instead of aborting.  The degradation is
        recorded — ``DiscoveryStats.budget_exhausted`` (and therefore the
        serialized model's provenance) is set, along with which stage hit
        the budget and how many rows were fully processed.
    task_timeout_s:
        Wall-clock bound in seconds on each sharded map of the coverage
        stage (0 = unbounded), enforced by the executor's submission-time
        deadline.  With ``serial_fallback`` enabled a timed-out shard is
        recomputed inline; otherwise it raises
        :class:`~repro.parallel.errors.ShardTimeoutError`.
    shard_retries:
        Pool retries per failed shard (crash or worker exception) before
        the executor falls back or raises.
    serial_fallback:
        Whether shards the pool cannot produce are recomputed serially
        inline (True, the default — a flaky pool degrades to slower, never
        to failed) or surface as typed
        :class:`~repro.parallel.errors.ShardError`\\ s.
    top_k:
        How many of the highest-coverage transformations to report.
    case_insensitive:
        When True, source and target texts are lower-cased before discovery
        (the paper's worked examples "ignore the capitalization in text").
        Transformations learned this way must be applied to lower-cased
        inputs; :class:`~repro.join.joiner.TransformationJoiner` accepts a
        matching ``case_insensitive`` flag.
    """

    max_placeholders: int = 3
    min_placeholder_length: int = 1
    enabled_units: tuple[str, ...] = (
        "Literal",
        "Substr",
        "Split",
        "SplitSubstr",
    )
    split_placeholders_on_separators: bool = True
    include_literal_only_skeleton: bool = True
    max_matches_per_placeholder: int = 3
    min_support: int = 1
    sample_size: int = 0
    sample_seed: int = 0
    use_duplicate_removal: bool = True
    use_unit_cache: bool = True
    use_batched_coverage: bool = True
    num_workers: int = field(default_factory=env_default_workers)
    min_rows_per_worker: int | None = None
    time_budget_s: float = 0.0
    task_timeout_s: float = 0.0
    shard_retries: int = 2
    serial_fallback: bool = True
    top_k: int = 5
    case_insensitive: bool = False
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.max_placeholders < 1:
            raise ValueError(
                f"max_placeholders must be >= 1, got {self.max_placeholders}"
            )
        if self.min_placeholder_length < 1:
            raise ValueError(
                "min_placeholder_length must be >= 1, got "
                f"{self.min_placeholder_length}"
            )
        if self.min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {self.min_support}")
        if self.sample_size < 0:
            raise ValueError(f"sample_size must be >= 0, got {self.sample_size}")
        if self.num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {self.num_workers}")
        if self.time_budget_s < 0:
            raise ValueError(
                f"time_budget_s must be >= 0, got {self.time_budget_s}"
            )
        if self.task_timeout_s < 0:
            raise ValueError(
                f"task_timeout_s must be >= 0, got {self.task_timeout_s}"
            )
        if self.shard_retries < 0:
            raise ValueError(
                f"shard_retries must be >= 0, got {self.shard_retries}"
            )
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        unknown = [name for name in self.enabled_units if name not in UNIT_NAMES]
        if unknown:
            raise ValueError(
                f"unknown transformation units {unknown}; valid names: {UNIT_NAMES}"
            )
        if "Literal" not in self.enabled_units:
            raise ValueError("the Literal unit cannot be disabled")

    # ------------------------------------------------------------------ #
    # Convenience constructors matching the paper's experimental setups
    # ------------------------------------------------------------------ #
    @classmethod
    def paper_default(cls) -> "DiscoveryConfig":
        """Configuration used for web tables, open data and synthetic data."""
        return cls(max_placeholders=3)

    @classmethod
    def spreadsheet(cls) -> "DiscoveryConfig":
        """Configuration used for the spreadsheet dataset (4 placeholders)."""
        return cls(max_placeholders=4)

    @classmethod
    def open_data(cls, num_pairs: int) -> "DiscoveryConfig":
        """Configuration used for the open-data dataset.

        Sampling down to 3,000 pairs and a 1 % relative support threshold, as
        in Section 6.4.
        """
        sample = min(3000, num_pairs)
        support = max(2, int(0.01 * min(sample, num_pairs)))
        return cls(max_placeholders=3, sample_size=sample, min_support=support)

    def with_relative_support(self, fraction: float, num_pairs: int) -> "DiscoveryConfig":
        """Return a copy whose ``min_support`` is ``fraction`` of *num_pairs*."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"support fraction must be in [0, 1], got {fraction}")
        support = max(1, int(round(fraction * num_pairs)))
        return self.replace(min_support=support)

    def replace(self, **changes) -> "DiscoveryConfig":
        """Return a copy with the given fields replaced."""
        import dataclasses

        return dataclasses.replace(self, **changes)
