"""Sampling analysis (Section 5.3 of the paper).

Discovery scales to large inputs by generating candidates from a random
sample.  The paper analyses the probability that a transformation with
coverage fraction *q* is discovered from a sample of size *s*:

* our approach needs **at least two** covered rows in the sample (a single
  covered row only supports a literal-like transformation), so
  ``P(discovered) = 1 - P0 - P1`` with ``P0 = (1-q)^s`` and
  ``P1 = s * q * (1-q)^(s-1)``;
* Auto-Join needs **every** row of a subset to be covered, so a subset of
  size *s* is useful with probability ``q^s`` and the expected number of
  useful subsets among *k* subsets is ``k * q^s``.

These closed forms are used by ``benchmarks/bench_sampling_analysis.py`` and
validated empirically in the tests.
"""

from __future__ import annotations

import math


def probability_not_covered(coverage: float, sample_size: int) -> float:
    """P0: probability that no row of the sample is covered."""
    _validate(coverage, sample_size)
    return (1.0 - coverage) ** sample_size


def probability_covered_once(coverage: float, sample_size: int) -> float:
    """P1: probability that exactly one row of the sample is covered."""
    _validate(coverage, sample_size)
    if sample_size == 0:
        return 0.0
    return sample_size * coverage * (1.0 - coverage) ** (sample_size - 1)


def probability_discovered(coverage: float, sample_size: int) -> float:
    """Probability that at least two sampled rows are covered (our approach).

    This is the probability that the transformation is discoverable from the
    sample: ``1 - P0 - P1``.
    """
    _validate(coverage, sample_size)
    return max(
        0.0,
        1.0
        - probability_not_covered(coverage, sample_size)
        - probability_covered_once(coverage, sample_size),
    )


def autojoin_subset_success_probability(coverage: float, subset_size: int) -> float:
    """Probability that every row of an Auto-Join subset is covered: ``q^s``."""
    _validate(coverage, subset_size)
    return coverage**subset_size


def autojoin_expected_covered_subsets(
    coverage: float, subset_size: int, num_subsets: int
) -> float:
    """Expected number of Auto-Join subsets fully covered: ``k * q^s``."""
    if num_subsets < 0:
        raise ValueError(f"num_subsets must be >= 0, got {num_subsets}")
    return num_subsets * autojoin_subset_success_probability(coverage, subset_size)


def required_subsets_for_autojoin(coverage: float, subset_size: int) -> int:
    """Subsets Auto-Join needs for an expectation of one covered subset.

    ``ceil(1 / q^s)``; for example with q=0.5 and s=5 this is 32, and with
    q=0.05 and s=2 it is 400, matching the paper's examples.
    """
    probability = autojoin_subset_success_probability(coverage, subset_size)
    if probability <= 0.0:
        raise ValueError("coverage must be positive to cover any subset")
    return math.ceil(1.0 / probability)


def minimum_sample_size(coverage: float, confidence: float) -> int:
    """Smallest sample size whose discovery probability reaches *confidence*."""
    _validate(coverage, 1)
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if coverage == 0.0:
        raise ValueError("a transformation with zero coverage is never discovered")
    size = 2
    while probability_discovered(coverage, size) < confidence:
        size += 1
        if size > 10_000_000:  # pragma: no cover - guard against bad inputs
            raise RuntimeError("sample size search did not converge")
    return size


def _validate(coverage: float, sample_size: int) -> None:
    if not 0.0 <= coverage <= 1.0:
        raise ValueError(f"coverage must be in [0, 1], got {coverage}")
    if sample_size < 0:
        raise ValueError(f"sample_size must be >= 0, got {sample_size}")
