"""Core contribution: efficient discovery of joinability transformations.

This package implements the paper's primary contribution — learning string
transformations that make two differently-formatted columns equi-joinable —
following the pipeline of Section 4:

1. :mod:`repro.core.units` — the basic transformation units
   (``Substr``, ``Split``, ``SplitSubstr``, ``TwoCharSplitSubstr``,
   ``Literal``),
2. :mod:`repro.core.transformation` — transformations as unit sequences,
3. :mod:`repro.core.placeholders` — placeholder detection (textual evidence
   of copying between source and target),
4. :mod:`repro.core.skeletons` — transformation skeletons built from
   placeholders and literals,
5. :mod:`repro.core.unit_generation` — candidate units per placeholder,
6. :mod:`repro.core.coverage` — coverage computation with duplicate removal
   and the non-covering-unit cache,
7. :mod:`repro.core.cover` — maximum-coverage and greedy minimal-cover
   selection,
8. :mod:`repro.core.discovery` — the end-to-end discovery engine,
9. :mod:`repro.core.sampling` — the sampling analysis of Section 5.3.
"""

from repro.core.config import DiscoveryConfig
from repro.core.cover import greedy_minimal_cover, top_k_by_coverage
from repro.core.coverage import CoverageComputer, CoverageResult
from repro.core.discovery import DiscoveryResult, TransformationDiscovery
from repro.core.pairs import RowPair
from repro.core.placeholders import Placeholder, PlaceholderExtractor
from repro.core.sampling import (
    autojoin_expected_covered_subsets,
    probability_discovered,
    required_subsets_for_autojoin,
)
from repro.core.skeletons import Skeleton, SkeletonBuilder, SkeletonPiece
from repro.core.stats import DiscoveryStats
from repro.core.transfer import TransferResult, TransformationTransfer
from repro.core.transformation import Transformation
from repro.core.unit_generation import UnitGenerator
from repro.core.units import (
    Literal,
    Split,
    SplitSubstr,
    Substr,
    TransformationUnit,
    TwoCharSplitSubstr,
)

__all__ = [
    "CoverageComputer",
    "CoverageResult",
    "DiscoveryConfig",
    "DiscoveryResult",
    "DiscoveryStats",
    "Literal",
    "Placeholder",
    "PlaceholderExtractor",
    "RowPair",
    "Skeleton",
    "SkeletonBuilder",
    "SkeletonPiece",
    "Split",
    "SplitSubstr",
    "Substr",
    "TransferResult",
    "Transformation",
    "TransformationDiscovery",
    "TransformationTransfer",
    "TransformationUnit",
    "TwoCharSplitSubstr",
    "UnitGenerator",
    "autojoin_expected_covered_subsets",
    "greedy_minimal_cover",
    "probability_discovered",
    "required_subsets_for_autojoin",
    "top_k_by_coverage",
]
