"""Expanding skeletons into candidate transformations (Section 4.1.4).

Every placeholder of a skeleton is replaced by its candidate units, every
literal gap by a ``Literal`` unit, and the Cartesian product of the candidate
sets yields the skeleton's transformations.  The product is enumerated lazily
and capped so a pathological row cannot blow up memory.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import product

from repro.core.config import DiscoveryConfig
from repro.core.skeletons import Skeleton
from repro.core.transformation import Transformation
from repro.core.unit_generation import UnitGenerator
from repro.core.units import Literal, TransformationUnit

#: Safety cap on the number of transformations generated from one skeleton.
#: In practice the per-placeholder candidate sets are tiny (a handful of
#: units), so this cap is only reached for adversarial inputs.
MAX_TRANSFORMATIONS_PER_SKELETON = 50_000


class TransformationGenerator:
    """Generate candidate transformations from a row's skeletons."""

    def __init__(self, config: DiscoveryConfig | None = None) -> None:
        self._config = config or DiscoveryConfig()
        self._unit_generator = UnitGenerator(self._config)

    def from_skeleton(self, source: str, skeleton: Skeleton) -> Iterator[Transformation]:
        """Yield every transformation obtainable from *skeleton*.

        The per-piece candidate sets are:

        * for a literal gap: the single ``Literal`` unit,
        * for a placeholder: every unit produced by
          :class:`~repro.core.unit_generation.UnitGenerator`.

        The Cartesian product of these sets is yielded lazily; generation
        stops after :data:`MAX_TRANSFORMATIONS_PER_SKELETON` results.
        """
        candidate_sets: list[list[TransformationUnit]] = []
        for piece in skeleton.pieces:
            if piece.is_placeholder:
                assert piece.placeholder is not None
                candidates = self._unit_generator.candidates(source, piece.placeholder)
                if not candidates:
                    candidates = [Literal(piece.text)]
                candidate_sets.append(candidates)
            else:
                candidate_sets.append([Literal(piece.text)])

        emitted = 0
        for combination in product(*candidate_sets):
            yield Transformation(combination).simplified()
            emitted += 1
            if emitted >= MAX_TRANSFORMATIONS_PER_SKELETON:
                break

    def from_row(
        self, source: str, skeletons: list[Skeleton]
    ) -> Iterator[Transformation]:
        """Yield the transformations of every skeleton of a row, in order."""
        for skeleton in skeletons:
            yield from self.from_skeleton(source, skeleton)
