"""Transformations: sequences of units (Definition 2 of the paper).

Applying a transformation ``t = <t1, t2, ...>`` to a source string ``s``
produces the concatenation ``t1(s) + t2(s) + ...``.  A transformation *covers*
a (source, target) row pair when that concatenation equals the target.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.core.units import Literal, TransformationUnit


class Transformation:
    """An immutable, hashable sequence of transformation units."""

    __slots__ = ("_units", "_hash")

    def __init__(self, units: Iterable[TransformationUnit]) -> None:
        units = tuple(units)
        if not units:
            raise ValueError("a transformation must contain at least one unit")
        self._units: tuple[TransformationUnit, ...] = units
        self._hash = hash(units)

    # ------------------------------------------------------------------ #
    # Value semantics
    # ------------------------------------------------------------------ #
    @property
    def units(self) -> tuple[TransformationUnit, ...]:
        """The unit sequence."""
        return self._units

    def __len__(self) -> int:
        return len(self._units)

    def __iter__(self) -> Iterator[TransformationUnit]:
        return iter(self._units)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transformation):
            return NotImplemented
        return self._units == other._units

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(unit.describe() for unit in self._units)
        return f"<{inner}>"

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #
    def apply(self, source: str) -> str | None:
        """Apply the transformation to *source*.

        Returns the concatenated output of the units, or ``None`` when any
        unit is not applicable to *source*.
        """
        parts: list[str] = []
        for unit in self._units:
            output = unit.apply(source)
            if output is None:
                return None
            parts.append(output)
        return "".join(parts)

    def covers(self, source: str, target: str) -> bool:
        """True when ``apply(source) == target``."""
        return self.apply(source) == target

    # ------------------------------------------------------------------ #
    # Quality measures (Section 4.1.2)
    # ------------------------------------------------------------------ #
    @property
    def num_placeholders(self) -> int:
        """Number of non-constant units (the transformation length measure)."""
        return sum(1 for unit in self._units if not unit.is_constant)

    @property
    def num_literals(self) -> int:
        """Number of literal units."""
        return sum(1 for unit in self._units if unit.is_constant)

    @property
    def is_constant(self) -> bool:
        """True when every unit is a literal (output independent of input)."""
        return all(unit.is_constant for unit in self._units)

    def describe(self) -> str:
        """Human-readable rendering, e.g. ``<Split(',', 1), Literal(' ')>``."""
        return repr(self)

    def simplified(self) -> "Transformation":
        """Return an equivalent transformation with adjacent literals merged.

        Merging adjacent ``Literal`` units does not change the semantics but
        normalizes transformations generated from different skeletons so that
        duplicate removal catches more of them.
        """
        merged: list[TransformationUnit] = []
        for unit in self._units:
            if merged and isinstance(unit, Literal) and isinstance(merged[-1], Literal):
                merged[-1] = Literal(merged[-1].text + unit.text)
            else:
                merged.append(unit)
        if len(merged) == len(self._units):
            return self
        return Transformation(merged)


def apply_all(
    transformations: Sequence[Transformation],
    source: str,
) -> list[str | None]:
    """Apply every transformation in *transformations* to *source*."""
    return [transformation.apply(source) for transformation in transformations]
