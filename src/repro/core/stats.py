"""Statistics collected by the discovery pipeline.

Table 4 and Figure 3 of the paper report the effectiveness of the two pruning
strategies (duplicate removal and the non-covering-unit cache); Figure 4
reports the per-module runtime breakdown.  :class:`DiscoveryStats` gathers
everything those experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DiscoveryStats:
    """Counters and timings describing one discovery run.

    Attributes
    ----------
    num_pairs:
        Number of (source, target) row pairs the run operated on (after
        sampling, if sampling was enabled).
    num_skeletons:
        Total number of skeletons built across all rows.
    generated_transformations:
        Number of candidate transformations generated (before duplicate
        removal) — the paper's "Generated trans." column.
    unique_transformations:
        Number of distinct transformations kept — the paper's "Trans. to try".
    cache_hits / cache_misses:
        Outcomes of the non-covering-unit cache when applying transformations
        to rows: a hit means a (transformation, row) application was skipped
        because one of its units was already known not to cover the row.
        Every (transformation, row) application is classified exactly once;
        the batched coverage engine tallies whole skipped subtrees at once,
        so the exact split can differ from the one-at-a-time path even
        though both preserve this meaning.
    applications:
        Number of full transformation applications actually executed (in
        batched mode: transformations whose every unit applied, i.e. whose
        concatenated output was fully compared against the target).
    stage_seconds:
        Wall-clock seconds per pipeline stage (placeholder generation, unit
        extraction, duplicate removal, applying transformations, cover
        selection), for the Figure 4 breakdown.
    budget_exhausted:
        True when a ``time_budget_s``-capped run hit its deadline and
        degraded to a best-so-far result.  Part of the run's provenance —
        a serialized :class:`~repro.model.artifact.TransformationModel`
        carries it in its stats, so a degraded model is distinguishable
        from a fully converged one forever after.
    budget_stage:
        Which stage the budget ran out in (``"skeleton_generation"`` or
        ``"applying_transformations"``); ``None`` when it did not.
    rows_fully_processed:
        How many input rows the budget-hit stage finished before the cut;
        ``None`` when the budget was not exhausted.
    """

    num_pairs: int = 0
    num_skeletons: int = 0
    generated_transformations: int = 0
    unique_transformations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    applications: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    budget_exhausted: bool = False
    budget_stage: str | None = None
    rows_fully_processed: int | None = None

    # ------------------------------------------------------------------ #
    # Derived ratios reported in Table 4 / Figure 3
    # ------------------------------------------------------------------ #
    @property
    def duplicate_transformations(self) -> int:
        """Number of generated transformations discarded as duplicates."""
        return max(0, self.generated_transformations - self.unique_transformations)

    @property
    def duplicate_ratio(self) -> float:
        """Fraction of generated transformations that were duplicates."""
        if self.generated_transformations == 0:
            return 0.0
        return self.duplicate_transformations / self.generated_transformations

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of (transformation, row) applications skipped by the cache."""
        attempts = self.cache_hits + self.cache_misses
        if attempts == 0:
            return 0.0
        return self.cache_hits / attempts

    @property
    def total_seconds(self) -> float:
        """Total recorded wall-clock time across stages."""
        return sum(self.stage_seconds.values())

    def merge(self, other: "DiscoveryStats") -> "DiscoveryStats":
        """Combine counters from two runs (used when averaging over tables)."""
        merged_stages = dict(self.stage_seconds)
        for stage, seconds in other.stage_seconds.items():
            merged_stages[stage] = merged_stages.get(stage, 0.0) + seconds
        return DiscoveryStats(
            num_pairs=self.num_pairs + other.num_pairs,
            num_skeletons=self.num_skeletons + other.num_skeletons,
            generated_transformations=(
                self.generated_transformations + other.generated_transformations
            ),
            unique_transformations=(
                self.unique_transformations + other.unique_transformations
            ),
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            applications=self.applications + other.applications,
            stage_seconds=merged_stages,
            budget_exhausted=self.budget_exhausted or other.budget_exhausted,
            budget_stage=self.budget_stage or other.budget_stage,
            rows_fully_processed=(
                self.rows_fully_processed
                if self.rows_fully_processed is not None
                else other.rows_fully_processed
            ),
        )

    def as_dict(self) -> dict[str, float]:
        """Flatten the statistics to a plain dict (for reports and tests).

        ``budget_exhausted`` is always present (it is provenance: consumers
        of a serialized model must be able to rely on the key); the
        stage/row detail keys appear only when the budget actually ran out.
        """
        flat = {
            "num_pairs": self.num_pairs,
            "num_skeletons": self.num_skeletons,
            "generated_transformations": self.generated_transformations,
            "unique_transformations": self.unique_transformations,
            "duplicate_transformations": self.duplicate_transformations,
            "duplicate_ratio": self.duplicate_ratio,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": self.cache_hit_ratio,
            "applications": self.applications,
            "total_seconds": self.total_seconds,
            "budget_exhausted": self.budget_exhausted,
            **{f"seconds_{k}": v for k, v in self.stage_seconds.items()},
        }
        if self.budget_exhausted:
            flat["budget_stage"] = self.budget_stage
            flat["rows_fully_processed"] = self.rows_fully_processed
        return flat
