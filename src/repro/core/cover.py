"""Selecting the final transformation set (Section 4.1.6).

Two problem variants:

* **Maximum coverage** — report the single transformation (or top-k) covering
  the most input rows.
* **Minimal cover** — find a small set of transformations that together cover
  every coverable row.  Exact minimal cover is the NP-complete set-cover
  problem; the paper (and this module) uses the classic greedy algorithm with
  its ``H(n) <= ln(n) + 1`` approximation guarantee.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.coverage import CoverageResult


def top_k_by_coverage(
    results: Sequence[CoverageResult], k: int = 1
) -> list[CoverageResult]:
    """Return the *k* transformations with the largest coverage.

    Ties are broken in favour of shorter transformations (fewer placeholders,
    then fewer units overall) so the reported transformation is the most
    readable among equally-covering ones, per the paper's length criterion.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    ranked = sorted(
        results,
        key=lambda r: (
            -r.coverage,
            r.transformation.num_placeholders,
            len(r.transformation),
            repr(r.transformation),
        ),
    )
    return list(ranked[:k])


def greedy_minimal_cover(
    results: Sequence[CoverageResult],
    *,
    min_support: int = 1,
    max_transformations: int | None = None,
) -> list[CoverageResult]:
    """Greedy set cover over the transformations' covered-row sets.

    At each step the transformation covering the most *not yet covered* rows
    is selected; transformations whose marginal gain falls below *min_support*
    are never selected (this implements the support threshold used for noisy
    data such as the open-data benchmark).

    Returns the selected transformations in selection order.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")

    remaining = list(results)
    covered: set[int] = set()
    selected: list[CoverageResult] = []

    while remaining:
        if max_transformations is not None and len(selected) >= max_transformations:
            break
        best_index = -1
        best_gain = 0
        best_key: tuple = ()
        for index, result in enumerate(remaining):
            gain = len(result.covered_rows - covered)
            if gain < min_support:
                continue
            key = (
                -gain,
                result.transformation.num_placeholders,
                len(result.transformation),
                repr(result.transformation),
            )
            if best_index == -1 or key < best_key:
                best_index = index
                best_gain = gain
                best_key = key
        if best_index == -1 or best_gain == 0:
            break
        choice = remaining.pop(best_index)
        covered |= choice.covered_rows
        selected.append(choice)
    return selected


def covered_rows(results: Sequence[CoverageResult]) -> frozenset[int]:
    """Union of the covered-row sets of *results*."""
    union: set[int] = set()
    for result in results:
        union |= result.covered_rows
    return frozenset(union)


def cover_fraction(results: Sequence[CoverageResult], num_pairs: int) -> float:
    """Fraction of the input covered by the union of *results*."""
    if num_pairs == 0:
        return 0.0
    return len(covered_rows(results)) / num_pairs
