"""Selecting the final transformation set (Section 4.1.6).

Two problem variants:

* **Maximum coverage** — report the single transformation (or top-k) covering
  the most input rows.
* **Minimal cover** — find a small set of transformations that together cover
  every coverable row.  Exact minimal cover is the NP-complete set-cover
  problem; the paper (and this module) uses the classic greedy algorithm with
  its ``H(n) <= ln(n) + 1`` approximation guarantee.

Two coverage-v3 accelerations apply here:

* **Bitset row sets** — covered-row sets are packed integer bitmasks
  (:attr:`~repro.core.coverage.CoverageResult.covered_mask`), so the greedy
  marginal gain is one ``(mask & ~covered).bit_count()`` over machine words
  instead of a Python-level set difference, and unions are single ``|`` ops.
* **CELF lazy-greedy selection** — coverage gain is submodular (covering
  more rows first can never *increase* another transformation's marginal
  gain), so :func:`greedy_minimal_cover` keeps candidates in a max-heap of
  stale upper bounds and re-evaluates only those whose bound still wins,
  instead of rescoring every candidate every round (Leskovec et al.'s
  lazy-greedy / CELF).  Tie-breaking is byte-identical to the plain greedy
  scan: the heap key ends with the candidate's input index, which is exactly
  the order the scan's strict ``key < best_key`` comparison preserves.

The plain set-based scan survives as
:func:`greedy_minimal_cover_reference` — the executable spec the property
tests compare the CELF engine against, tie for tie.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.core.coverage import (
    CoverageResult,
    mask_from_rows,
    rows_from_mask,
)
from repro.kernels.bitset import popcounts, union_masks

__all__ = [
    "cover_fraction",
    "covered_mask",
    "covered_rows",
    "greedy_minimal_cover",
    "greedy_minimal_cover_reference",
    "top_k_by_coverage",
]


def top_k_by_coverage(
    results: Sequence[CoverageResult], k: int = 1
) -> list[CoverageResult]:
    """Return the *k* transformations with the largest coverage.

    Ties are broken in favour of shorter transformations (fewer placeholders,
    then fewer units overall) so the reported transformation is the most
    readable among equally-covering ones, per the paper's length criterion.
    ``coverage`` is a bitmask popcount, so ranking never materializes row
    sets.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    ranked = sorted(
        results,
        key=lambda r: (
            -r.coverage,
            r.transformation.num_placeholders,
            len(r.transformation),
            repr(r.transformation),
        ),
    )
    return list(ranked[:k])


def _selection_key(result: CoverageResult) -> tuple[int, int, str]:
    """The gain-independent part of the greedy tie-breaking key."""
    return (
        result.transformation.num_placeholders,
        len(result.transformation),
        repr(result.transformation),
    )


def greedy_minimal_cover(
    results: Sequence[CoverageResult],
    *,
    min_support: int = 1,
    max_transformations: int | None = None,
) -> list[CoverageResult]:
    """Greedy set cover over the transformations' covered-row bitmasks.

    At each step the transformation covering the most *not yet covered* rows
    is selected; transformations whose marginal gain falls below *min_support*
    are never selected (this implements the support threshold used for noisy
    data such as the open-data benchmark).

    This is the CELF lazy-greedy engine: a max-heap of stale gain upper
    bounds, re-evaluating only the candidates whose bound still tops the
    heap.  Selection order — including every tie — is identical to
    :func:`greedy_minimal_cover_reference`, which remains the executable
    spec.  Two facts make the laziness sound:

    * marginal gain is submodular, so a recomputed gain can only shrink —
      a stale bound is always an upper bound, and a candidate whose *fresh*
      gain tops the heap beats every other candidate's true gain;
    * once a candidate's fresh gain drops below ``min_support`` it can never
      recover, so it is dropped from the heap permanently (the reference
      scan keeps skipping it each round, with the same outcome).

    Returns the selected transformations in selection order.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")

    # Heap entries are (-gain, placeholders, length, repr, index, round, ...):
    # the index is unique per entry, so the trailing fields are never compared
    # and the pop order below the index exactly mirrors the reference scan's
    # first-wins tie-breaking.
    heap: list[tuple] = []
    masks = [result.covered_mask for result in results]
    # The round-0 upper bounds are plain popcounts over every candidate at
    # once — the batched kernel op (per-byte table lookups under the numpy
    # tier) replaces len(results) scattered bit_count calls.
    gains = popcounts(masks)
    for index, result in enumerate(results):
        gain = gains[index]
        if gain < min_support:
            continue
        placeholders, length, rendering = _selection_key(result)
        heap.append(
            (-gain, placeholders, length, rendering, index, 0, masks[index], result)
        )
    heapq.heapify(heap)

    covered = 0
    selection_round = 0
    selected: list[CoverageResult] = []
    while heap:
        if max_transformations is not None and len(selected) >= max_transformations:
            break
        entry = heapq.heappop(heap)
        if entry[5] != selection_round:
            # Stale upper bound: rescore against the current covered set and
            # push back (or drop when the support threshold is out of reach).
            mask = entry[6]
            gain = (mask & ~covered).bit_count()
            if gain < min_support:
                continue
            heapq.heappush(
                heap,
                (-gain, entry[1], entry[2], entry[3], entry[4], selection_round)
                + entry[6:],
            )
            continue
        # Fresh bound on top of the heap: every other candidate's true gain
        # is bounded by its (lazier) key, so this is the reference scan's
        # argmin — select it.
        choice: CoverageResult = entry[7]
        covered |= entry[6]
        selected.append(choice)
        selection_round += 1
    return selected


def greedy_minimal_cover_reference(
    results: Sequence[CoverageResult],
    *,
    min_support: int = 1,
    max_transformations: int | None = None,
) -> list[CoverageResult]:
    """The plain set-based greedy scan — the executable spec of
    :func:`greedy_minimal_cover`.

    Rescores every remaining candidate each round with Python-set
    arithmetic.  Kept verbatim from the pre-CELF engine so the equivalence
    property tests can assert the lazy engine reproduces it tie for tie.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")

    remaining = list(results)
    covered: set[int] = set()
    selected: list[CoverageResult] = []

    while remaining:
        if max_transformations is not None and len(selected) >= max_transformations:
            break
        best_index = -1
        best_gain = 0
        best_key: tuple = ()
        for index, result in enumerate(remaining):
            gain = len(result.covered_rows - covered)
            if gain < min_support:
                continue
            key = (
                -gain,
                result.transformation.num_placeholders,
                len(result.transformation),
                repr(result.transformation),
            )
            if best_index == -1 or key < best_key:
                best_index = index
                best_gain = gain
                best_key = key
        if best_index == -1 or best_gain == 0:
            break
        choice = remaining.pop(best_index)
        covered |= choice.covered_rows
        selected.append(choice)
    return selected


def covered_mask(results: Sequence[CoverageResult]) -> int:
    """Union of the covered-row bitmasks of *results*.

    Delegates to the kernel tier's batched union
    (:func:`repro.kernels.bitset.union_masks`): a byte-matrix ``bitwise_or``
    reduction under the numpy tier, the plain ``|`` fold otherwise.
    """
    return union_masks([result.covered_mask for result in results])


def covered_rows(results: Sequence[CoverageResult]) -> frozenset[int]:
    """Union of the covered-row sets of *results*."""
    return frozenset(rows_from_mask(covered_mask(results)))


def cover_fraction(results: Sequence[CoverageResult], num_pairs: int) -> float:
    """Fraction of the input covered by the union of *results*."""
    if num_pairs == 0:
        return 0.0
    return covered_mask(results).bit_count() / num_pairs


# Re-exported for callers that build masks by hand (tests, benchmarks).
__all__ += ["mask_from_rows", "rows_from_mask"]
