"""Transferring transformations between datasets (Section 8, future work).

The paper's conclusion suggests transfer learning: transformations learned on
one table pair are often valid on another pair drawn from the same domain
(e.g. two exports of the same upstream system, or this month's file versus
last month's).  This module implements that workflow:

1. re-evaluate a previously learned transformation set on the new dataset's
   candidate pairs,
2. keep the transformations whose coverage on the new data clears a support
   threshold,
3. optionally run a fresh (and therefore much cheaper) discovery on only the
   rows the transferred set does not cover, and merge the results.

Because re-evaluating a handful of known transformations is linear in the
number of pairs, transfer is dramatically cheaper than discovery from scratch
and works well exactly when the formatting relationship is stable.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.config import DiscoveryConfig
from repro.core.cover import greedy_minimal_cover, top_k_by_coverage
from repro.core.coverage import CoverageComputer, CoverageResult
from repro.core.discovery import DiscoveryResult, TransformationDiscovery
from repro.core.pairs import RowPair
from repro.core.transformation import Transformation


@dataclass
class TransferResult:
    """Outcome of transferring a transformation set to a new dataset."""

    pairs: list[RowPair]
    transferred: list[CoverageResult] = field(default_factory=list)
    discovered: list[CoverageResult] = field(default_factory=list)
    fresh_discovery: DiscoveryResult | None = None

    @property
    def cover(self) -> list[CoverageResult]:
        """The combined covering set (transferred first, then newly discovered)."""
        return list(self.transferred) + list(self.discovered)

    @property
    def transformations(self) -> list[Transformation]:
        """The transformations of the combined cover."""
        return [result.transformation for result in self.cover]

    @property
    def cover_coverage(self) -> float:
        """Fraction of the new dataset's pairs covered by the combined set."""
        if not self.pairs:
            return 0.0
        covered: set[int] = set()
        for result in self.cover:
            covered |= result.covered_rows
        return len(covered) / len(self.pairs)

    @property
    def transferred_coverage(self) -> float:
        """Fraction covered by the transferred transformations alone."""
        if not self.pairs:
            return 0.0
        covered: set[int] = set()
        for result in self.transferred:
            covered |= result.covered_rows
        return len(covered) / len(self.pairs)


class TransformationTransfer:
    """Re-use a learned transformation set on a new dataset."""

    def __init__(
        self,
        transformations: Sequence[Transformation],
        *,
        min_support: int = 2,
        config: DiscoveryConfig | None = None,
    ) -> None:
        """Create a transfer engine.

        Parameters
        ----------
        transformations:
            The previously learned transformations to carry over.
        min_support:
            Minimum number of new-dataset pairs a carried-over transformation
            must cover to be kept (2 by default: a transformation supported by
            a single row is indistinguishable from a coincidence).
        config:
            Configuration for the fall-back discovery on uncovered rows.
        """
        if min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {min_support}")
        self._transformations = list(transformations)
        self._min_support = min_support
        self._config = config or DiscoveryConfig()

    def transfer(
        self,
        pairs: Sequence[RowPair],
        *,
        discover_remaining: bool = True,
    ) -> TransferResult:
        """Apply the carried-over set to *pairs*, optionally filling the gaps.

        When ``discover_remaining`` is True, a fresh discovery runs on the
        pairs the transferred transformations do not cover and its covering
        set is appended to the result.
        """
        pairs = list(pairs)
        if not pairs:
            return TransferResult(pairs=[])

        computer = CoverageComputer(pairs, use_unit_cache=True)
        evaluated = [
            computer.coverage_of(transformation)
            for transformation in self._transformations
        ]
        supported = [r for r in evaluated if r.coverage >= self._min_support]
        transferred = greedy_minimal_cover(supported, min_support=self._min_support)
        transferred = top_k_by_coverage(transferred, max(1, len(transferred)))

        covered: set[int] = set()
        for result in transferred:
            covered |= result.covered_rows
        uncovered = [pair for index, pair in enumerate(pairs) if index not in covered]

        discovered: list[CoverageResult] = []
        fresh: DiscoveryResult | None = None
        if discover_remaining and uncovered:
            engine = TransformationDiscovery(self._config)
            fresh = engine.discover(uncovered)
            # Re-evaluate the newly found transformations on the full input so
            # their covered_rows use the same row indexing as the transferred
            # ones.
            full_computer = CoverageComputer(pairs, use_unit_cache=True)
            already = {result.transformation for result in transferred}
            for coverage in fresh.cover:
                if coverage.transformation in already:
                    continue
                reevaluated = full_computer.coverage_of(coverage.transformation)
                if reevaluated.coverage >= 1:
                    discovered.append(reevaluated)

        return TransferResult(
            pairs=pairs,
            transferred=transferred,
            discovered=discovered,
            fresh_discovery=fresh,
        )
