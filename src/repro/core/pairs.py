"""Row pairs: the input of the transformation-discovery algorithm.

A :class:`RowPair` is one (source, target) example — either provided as a
golden matching or produced by the row matcher of :mod:`repro.matching`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class RowPair:
    """A candidate joinable (source, target) cell pair.

    ``source_row`` / ``target_row`` are the originating row indices when the
    pair was produced from two tables (``-1`` when unknown), so end-to-end
    evaluation can compare discovered joins against ground truth.
    """

    source: str
    target: str
    source_row: int = -1
    target_row: int = -1

    def reversed(self) -> "RowPair":
        """Swap source and target (used when re-orienting the join direction)."""
        return RowPair(
            source=self.target,
            target=self.source,
            source_row=self.target_row,
            target_row=self.source_row,
        )


def pairs_from_strings(pairs: Iterable[tuple[str, str]]) -> list[RowPair]:
    """Build :class:`RowPair` objects from plain (source, target) tuples."""
    return [
        RowPair(source=source, target=target, source_row=index, target_row=index)
        for index, (source, target) in enumerate(pairs)
    ]


def average_source_length(pairs: Sequence[RowPair]) -> float:
    """Average length of the source strings (0.0 for an empty input)."""
    if not pairs:
        return 0.0
    return sum(len(pair.source) for pair in pairs) / len(pairs)


def average_target_length(pairs: Sequence[RowPair]) -> float:
    """Average length of the target strings (0.0 for an empty input)."""
    if not pairs:
        return 0.0
    return sum(len(pair.target) for pair in pairs) / len(pairs)
