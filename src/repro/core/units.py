"""Transformation units (Definition 1 of the paper).

A transformation unit is a function that, applied to an input string, copies
either part of the input or a constant literal to the output.  The paper's
unit set is:

* ``Substr(s, e)`` — the substring of the input from position *s* (inclusive)
  to *e* (exclusive), 0-based.
* ``Split(c, i)`` — split the input on delimiter *c* and return the *i*-th
  piece, 1-based (the paper's example ``Split(',', 1)`` selects the first
  piece).
* ``SplitSubstr(c, i, s, e)`` — ``Split(c, i)`` followed by ``Substr(s, e)``
  applied to the selected piece.
* ``TwoCharSplitSubstr(c1, c2, i, s, e)`` — split on both delimiters, take the
  *i*-th piece, then a substring of it.  Together with ``SplitSubstr`` this
  expresses everything Auto-Join's ``SplitSplitSubstr`` can (Lemma 1).
* ``Literal(text)`` — the constant *text*, irrespective of the input.

Every unit's :meth:`~TransformationUnit.apply` returns ``None`` when it is not
applicable to the given input (delimiter absent, index out of range, …); a
transformation whose unit returns ``None`` does not cover that row.

Units are immutable, hashable value objects so they can be deduplicated in
hash sets and used as cache keys for the non-covering-unit cache.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


class TransformationUnit(ABC):
    """Base class of all transformation units."""

    __slots__ = ()

    @abstractmethod
    def apply(self, source: str) -> str | None:
        """Apply the unit to *source*.

        Returns the produced output string, or ``None`` when the unit is not
        applicable to this input (e.g. the delimiter does not occur or an
        index is out of range).
        """

    @property
    def is_constant(self) -> bool:
        """True when the unit's output does not depend on the input."""
        return False

    @property
    def anchor_text(self) -> str | None:
        """The literal text this unit is guaranteed to emit, or ``None``.

        A transformation covers a row only if every unit's output is a
        substring of the row's target, so a non-empty anchor restricts the
        rows a transformation can possibly cover to those whose target
        contains the anchor.  The batched coverage engine indexes anchors in
        a per-run unit→row posting table and skips provably-uncovered rows
        (the literal-anchored candidate prefilter); units without an anchor
        (everything but :class:`Literal`) contribute nothing to the
        prefilter, which degrades to a no-op for transformations built
        entirely from such units.
        """
        return None

    @abstractmethod
    def describe(self) -> str:
        """Human-readable rendering, e.g. ``Substr(0, 7)``."""

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.describe()


@dataclass(frozen=True, slots=True)
class Literal(TransformationUnit):
    """A constant literal: returns ``text`` irrespective of the input."""

    text: str

    def apply(self, source: str) -> str | None:
        return self.text

    @property
    def is_constant(self) -> bool:
        return True

    @property
    def anchor_text(self) -> str | None:
        # The empty literal is a substring of every target: no anchor.
        return self.text or None

    def describe(self) -> str:
        return f"Literal({self.text!r})"


@dataclass(frozen=True, slots=True)
class Substr(TransformationUnit):
    """Copy the substring ``source[start:end]`` (0-based, end exclusive).

    The unit is not applicable when the requested range does not fully fit in
    the input or is empty.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < 0:
            raise ValueError(
                f"Substr positions must be non-negative, got ({self.start}, {self.end})"
            )
        if self.end <= self.start:
            raise ValueError(
                f"Substr end must be greater than start, got ({self.start}, {self.end})"
            )

    def apply(self, source: str) -> str | None:
        if self.end > len(source):
            return None
        return source[self.start : self.end]

    def describe(self) -> str:
        return f"Substr({self.start}, {self.end})"


@dataclass(frozen=True, slots=True)
class Split(TransformationUnit):
    """Split the input on ``delimiter`` and return the ``index``-th piece.

    ``index`` is 1-based, following the paper's examples.  The unit is not
    applicable when the delimiter does not occur in the input or the index is
    out of range.
    """

    delimiter: str
    index: int

    def __post_init__(self) -> None:
        if not self.delimiter:
            raise ValueError("Split delimiter must not be empty")
        if self.index < 1:
            raise ValueError(f"Split index is 1-based, got {self.index}")

    def apply(self, source: str) -> str | None:
        if self.delimiter not in source:
            return None
        pieces = source.split(self.delimiter)
        if self.index > len(pieces):
            return None
        return pieces[self.index - 1]

    def describe(self) -> str:
        return f"Split({self.delimiter!r}, {self.index})"


@dataclass(frozen=True, slots=True)
class SplitSubstr(TransformationUnit):
    """``Split(delimiter, index)`` followed by ``Substr(start, end)``.

    The substring positions are relative to the selected split piece.
    """

    delimiter: str
    index: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if not self.delimiter:
            raise ValueError("SplitSubstr delimiter must not be empty")
        if self.index < 1:
            raise ValueError(f"SplitSubstr index is 1-based, got {self.index}")
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                "SplitSubstr substring range must satisfy 0 <= start < end, "
                f"got ({self.start}, {self.end})"
            )

    def apply(self, source: str) -> str | None:
        if self.delimiter not in source:
            return None
        pieces = source.split(self.delimiter)
        if self.index > len(pieces):
            return None
        piece = pieces[self.index - 1]
        if self.end > len(piece):
            return None
        return piece[self.start : self.end]

    def describe(self) -> str:
        return (
            f"SplitSubstr({self.delimiter!r}, {self.index}, {self.start}, {self.end})"
        )


@dataclass(frozen=True, slots=True)
class TwoCharSplitSubstr(TransformationUnit):
    """Split on two delimiters, take the ``index``-th piece, then a substring.

    The input is split wherever either ``delimiter1`` or ``delimiter2``
    occurs.  Together with :class:`SplitSubstr` this covers every
    transformation expressible with Auto-Join's ``SplitSplitSubstr`` (Lemma 1
    of the paper).
    """

    delimiter1: str
    delimiter2: str
    index: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if not self.delimiter1 or not self.delimiter2:
            raise ValueError("TwoCharSplitSubstr delimiters must not be empty")
        if self.delimiter1 == self.delimiter2:
            raise ValueError("TwoCharSplitSubstr delimiters must differ")
        if self.index < 1:
            raise ValueError(f"TwoCharSplitSubstr index is 1-based, got {self.index}")
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                "TwoCharSplitSubstr substring range must satisfy 0 <= start < end, "
                f"got ({self.start}, {self.end})"
            )

    def _split(self, source: str) -> list[str]:
        pieces: list[str] = []
        current: list[str] = []
        for char in source:
            if char == self.delimiter1 or char == self.delimiter2:
                pieces.append("".join(current))
                current = []
            else:
                current.append(char)
        pieces.append("".join(current))
        return pieces

    def apply(self, source: str) -> str | None:
        if self.delimiter1 not in source and self.delimiter2 not in source:
            return None
        pieces = self._split(source)
        if self.index > len(pieces):
            return None
        piece = pieces[self.index - 1]
        if self.end > len(piece):
            return None
        return piece[self.start : self.end]

    def describe(self) -> str:
        return (
            f"TwoCharSplitSubstr({self.delimiter1!r}, {self.delimiter2!r}, "
            f"{self.index}, {self.start}, {self.end})"
        )


#: Names of all unit classes, used by configuration to enable/disable units.
UNIT_NAMES: tuple[str, ...] = (
    "Literal",
    "Substr",
    "Split",
    "SplitSubstr",
    "TwoCharSplitSubstr",
)

#: Mapping from unit name to class, for configuration parsing.
UNIT_CLASSES: dict[str, type[TransformationUnit]] = {
    "Literal": Literal,
    "Substr": Substr,
    "Split": Split,
    "SplitSubstr": SplitSubstr,
    "TwoCharSplitSubstr": TwoCharSplitSubstr,
}
