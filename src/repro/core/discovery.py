"""The end-to-end transformation-discovery engine (Section 4.1).

:class:`TransformationDiscovery` chains the pipeline stages —

1. (optional) sampling of the input pairs,
2. placeholder and skeleton construction per row,
3. candidate-unit extraction and transformation generation (with duplicate
   removal),
4. coverage computation over all input pairs (with the non-covering-unit
   cache),
5. maximum-coverage / greedy-minimal-cover selection —

and reports both the discovered transformations and the statistics (Table 4,
Figures 3–4) of the run.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field
from time import monotonic

from repro.core.config import DiscoveryConfig
from repro.core.cover import (
    cover_fraction,
    covered_mask,
    greedy_minimal_cover,
    top_k_by_coverage,
)
from repro.core.coverage import CoverageComputer, CoverageResult, rows_from_mask
from repro.core.generation import TransformationGenerator
from repro.core.pairs import RowPair, pairs_from_strings
from repro.core.skeletons import SkeletonBuilder
from repro.core.stats import DiscoveryStats
from repro.core.transformation import Transformation
from repro.utils.timing import StageTimer


@dataclass
class DiscoveryResult:
    """Everything a discovery run produced.

    Attributes
    ----------
    pairs:
        The full input pairs coverage is reported against (the pre-sampling
        input, so coverage fractions are comparable across configurations).
    top:
        The top-k transformations by individual coverage, best first.
    cover:
        The greedy minimal covering set, in selection order.
    stats:
        Counters and per-stage timings of the run.
    """

    pairs: list[RowPair]
    top: list[CoverageResult] = field(default_factory=list)
    cover: list[CoverageResult] = field(default_factory=list)
    stats: DiscoveryStats = field(default_factory=DiscoveryStats)

    @property
    def best(self) -> CoverageResult | None:
        """The single highest-coverage transformation (None when nothing found)."""
        return self.top[0] if self.top else None

    @property
    def num_candidate_pairs(self) -> int:
        """Number of candidate pairs coverage was computed over.

        This is the denominator of every coverage fraction in this result;
        thread it into :class:`~repro.join.joiner.TransformationJoiner` when
        applying a support threshold.
        """
        return len(self.pairs)

    @property
    def top_coverage(self) -> float:
        """Coverage fraction of the best single transformation ("Top Cov.")."""
        if not self.top or not self.pairs:
            return 0.0
        return self.top[0].coverage_fraction(len(self.pairs))

    @property
    def cover_coverage(self) -> float:
        """Coverage fraction of the covering set ("Coverage")."""
        return cover_fraction(self.cover, len(self.pairs))

    @property
    def num_transformations(self) -> int:
        """Size of the covering set ("#Trans.")."""
        return len(self.cover)

    @property
    def transformations(self) -> list[Transformation]:
        """The transformations of the covering set, in selection order."""
        return [result.transformation for result in self.cover]

    def uncovered_rows(self) -> frozenset[int]:
        """Indices of input pairs not covered by the covering set."""
        all_rows = (1 << len(self.pairs)) - 1
        return frozenset(rows_from_mask(all_rows & ~covered_mask(self.cover)))

    def summary(self) -> dict[str, float]:
        """Key figures of the run as a flat dict (used by benchmarks)."""
        return {
            "num_pairs": len(self.pairs),
            "top_coverage": self.top_coverage,
            "cover_coverage": self.cover_coverage,
            "num_transformations": self.num_transformations,
            "total_seconds": self.stats.total_seconds,
            "generated_transformations": self.stats.generated_transformations,
            "unique_transformations": self.stats.unique_transformations,
            "duplicate_ratio": self.stats.duplicate_ratio,
            "cache_hit_ratio": self.stats.cache_hit_ratio,
        }


class TransformationDiscovery:
    """Discover transformations that make (source, target) pairs equi-joinable.

    Example
    -------
    >>> from repro.core import TransformationDiscovery
    >>> engine = TransformationDiscovery()
    >>> result = engine.discover_from_strings([
    ...     ("Rafiei, Davood", "D Rafiei"),
    ...     ("Bowling, Michael", "M Bowling"),
    ... ])
    >>> result.best.transformation.apply("Nascimento, Mario")
    'M Nascimento'
    """

    def __init__(self, config: DiscoveryConfig | None = None) -> None:
        self._config = config or DiscoveryConfig()
        self._skeleton_builder = SkeletonBuilder(self._config)
        self._generator = TransformationGenerator(self._config)

    @property
    def config(self) -> DiscoveryConfig:
        """The configuration the engine was built with."""
        return self._config

    # ------------------------------------------------------------------ #
    # Public entry points
    # ------------------------------------------------------------------ #
    def discover_from_strings(
        self, pairs: Sequence[tuple[str, str]]
    ) -> DiscoveryResult:
        """Convenience wrapper: discover from plain (source, target) tuples."""
        return self.discover(pairs_from_strings(pairs))

    def discover(self, pairs: Sequence[RowPair]) -> DiscoveryResult:
        """Run the full discovery pipeline on *pairs*."""
        pairs = list(pairs)
        if self._config.case_insensitive:
            pairs = [
                RowPair(
                    source=pair.source.lower(),
                    target=pair.target.lower(),
                    source_row=pair.source_row,
                    target_row=pair.target_row,
                )
                for pair in pairs
            ]
        if not pairs:
            return DiscoveryResult(pairs=[])

        timer = StageTimer()
        stats = DiscoveryStats(num_pairs=len(pairs))
        # One monotonic deadline bounds the whole run; CLOCK_MONOTONIC is
        # system-wide, so the coverage stage can hand the same timestamp to
        # sharded worker processes.
        deadline = (
            monotonic() + self._config.time_budget_s
            if self._config.time_budget_s > 0
            else None
        )

        generation_pairs = self._sample(pairs)

        transformations = self._generate(generation_pairs, stats, timer, deadline)

        computer = CoverageComputer(
            pairs,
            use_unit_cache=self._config.use_unit_cache,
            stats=stats,
            num_workers=self._config.num_workers,
            min_rows_per_worker=self._config.min_rows_per_worker,
            task_timeout=self._config.task_timeout_s or None,
            shard_retries=self._config.shard_retries,
            serial_fallback=self._config.serial_fallback,
        )
        with timer.stage("applying_transformations"):
            results = computer.coverage_of_all(
                transformations,
                batched=(
                    self._config.use_batched_coverage
                    and self._config.use_unit_cache
                ),
                deadline=deadline,
            )
        if computer.budget_exhausted and not stats.budget_exhausted:
            stats.budget_exhausted = True
            stats.budget_stage = "applying_transformations"
            stats.rows_fully_processed = computer.rows_processed

        with timer.stage("cover_selection"):
            results = [r for r in results if r.coverage > 0]
            top = top_k_by_coverage(results, self._config.top_k) if results else []
            cover = greedy_minimal_cover(
                results, min_support=self._config.min_support
            )

        stats.stage_seconds = timer.as_dict()
        return DiscoveryResult(pairs=pairs, top=top, cover=cover, stats=stats)

    # ------------------------------------------------------------------ #
    # Pipeline stages
    # ------------------------------------------------------------------ #
    def _sample(self, pairs: list[RowPair]) -> list[RowPair]:
        """Sample the generation input when the configuration asks for it.

        Coverage is always computed over the full input; only the generation
        of candidate transformations is restricted to the sample
        (Section 5.3: a small sample is enough to discover any transformation
        with non-trivial coverage).
        """
        sample_size = self._config.sample_size
        if sample_size <= 0 or len(pairs) <= sample_size:
            return pairs
        rng = random.Random(self._config.sample_seed)
        return rng.sample(pairs, sample_size)

    def _generate(
        self,
        pairs: Sequence[RowPair],
        stats: DiscoveryStats,
        timer: StageTimer,
        deadline: float | None = None,
    ) -> list[Transformation]:
        """Generate the candidate transformations of every pair, deduplicated.

        ``deadline`` (a ``time.monotonic()`` timestamp) is the run's
        cooperative time budget: it is checked between pairs, and pairs past
        it are skipped — their transformations simply go ungenerated, which
        degrades coverage but never validity (every generated transformation
        is still exact).  The first pair always runs, so even an expired
        budget yields candidates.  The cut is recorded in *stats*
        (``budget_exhausted`` / ``budget_stage`` / ``rows_fully_processed``).
        """
        unique: dict[Transformation, None] = {}
        generated = 0
        dedup = self._config.use_duplicate_removal
        duplicates_kept: list[Transformation] = []

        for pair_index, pair in enumerate(pairs):
            if (
                deadline is not None
                and pair_index
                and monotonic() >= deadline
            ):
                stats.budget_exhausted = True
                stats.budget_stage = "skeleton_generation"
                stats.rows_fully_processed = pair_index
                break
            with timer.stage("placeholder_generation"):
                skeletons = self._skeleton_builder.build(pair.source, pair.target)
            stats.num_skeletons += len(skeletons)
            with timer.stage("unit_extraction"):
                row_transformations = list(
                    self._generator.from_row(pair.source, skeletons)
                )
            with timer.stage("duplicate_removal"):
                for transformation in row_transformations:
                    generated += 1
                    if dedup:
                        unique.setdefault(transformation, None)
                    else:
                        duplicates_kept.append(transformation)

        stats.generated_transformations = generated
        if dedup:
            stats.unique_transformations = len(unique)
            return list(unique)
        stats.unique_transformations = len(duplicates_kept)
        return duplicates_kept


def discover_transformations(
    pairs: Sequence[tuple[str, str]],
    *,
    config: DiscoveryConfig | None = None,
) -> DiscoveryResult:
    """Functional one-shot API: discover transformations for string pairs."""
    return TransformationDiscovery(config).discover_from_strings(pairs)
