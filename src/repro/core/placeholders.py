"""Placeholder detection (Definition 4 and Section 4.1.3 of the paper).

A *placeholder* is a contiguous block of the target text that can be produced
by a non-constant transformation unit applied to the source.  For copy-based
units this means every substring of the target that is also a substring of
the source.  Maximal-length placeholders — blocks that cannot be extended on
either side while remaining a substring of the source — form the backbone of
the transformations: they minimize transformation length and drastically
shrink the search space.

The extractor produces, for every (source, target) pair:

* the maximal-length segmentation of the target into placeholders and
  literal gaps, and
* optionally a separator-split refinement of every maximal placeholder, which
  recovers the coverage lost when a common separator falls inside a maximal
  placeholder (Lemma 4, case 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.text import is_separator


@dataclass(frozen=True, slots=True)
class Placeholder:
    """A block of target text matched in the source.

    Attributes
    ----------
    text:
        The placeholder text (a substring of both target and source).
    target_start / target_end:
        The position of the block in the target (0-based, end exclusive).
    source_matches:
        Start positions of occurrences of ``text`` in the source (possibly
        truncated to a configured cap).
    """

    text: str
    target_start: int
    target_end: int
    source_matches: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.text:
            raise ValueError("placeholder text must not be empty")
        if self.target_end - self.target_start != len(self.text):
            raise ValueError(
                "placeholder span does not match its text length: "
                f"[{self.target_start}, {self.target_end}) vs {len(self.text)}"
            )

    @property
    def length(self) -> int:
        """Length of the placeholder text."""
        return len(self.text)


def find_occurrences(haystack: str, needle: str, *, limit: int = 0) -> tuple[int, ...]:
    """Return the start positions of (possibly overlapping) occurrences.

    ``limit`` > 0 caps the number of positions returned.
    """
    positions: list[int] = []
    start = 0
    while True:
        index = haystack.find(needle, start)
        if index == -1:
            break
        positions.append(index)
        if limit and len(positions) >= limit:
            break
        start = index + 1
    return tuple(positions)


class PlaceholderExtractor:
    """Extract maximal-length placeholders from (source, target) pairs."""

    def __init__(
        self,
        *,
        min_length: int = 1,
        max_matches: int = 3,
        split_on_separators: bool = True,
    ) -> None:
        if min_length < 1:
            raise ValueError(f"min_length must be >= 1, got {min_length}")
        if max_matches < 1:
            raise ValueError(f"max_matches must be >= 1, got {max_matches}")
        self._min_length = min_length
        self._max_matches = max_matches
        self._split_on_separators = split_on_separators

    # ------------------------------------------------------------------ #
    # Maximal segmentation
    # ------------------------------------------------------------------ #
    def maximal_placeholders(self, source: str, target: str) -> list[Placeholder]:
        """Greedy left-to-right maximal segmentation of *target*.

        At every target position we take the longest block starting there that
        occurs in *source* (if it is at least ``min_length`` long) and continue
        after it.  The resulting placeholders are maximal in the sense that no
        block can be extended to the right and, because the scan restarts right
        after each accepted block, they tile the target without overlaps.
        """
        placeholders: list[Placeholder] = []
        position = 0
        target_length = len(target)
        while position < target_length:
            match_length = self._longest_match_at(source, target, position)
            if match_length >= self._min_length:
                text = target[position : position + match_length]
                placeholders.append(
                    Placeholder(
                        text=text,
                        target_start=position,
                        target_end=position + match_length,
                        source_matches=find_occurrences(
                            source, text, limit=self._max_matches
                        ),
                    )
                )
                position += match_length
            else:
                position += 1
        return placeholders

    def _longest_match_at(self, source: str, target: str, position: int) -> int:
        """Length of the longest prefix of ``target[position:]`` found in *source*."""
        low = 0
        high = len(target) - position
        # The candidate lengths with a match form a prefix of [1, high]
        # (every prefix of a matching block also matches), so binary search.
        while low < high:
            mid = (low + high + 1) // 2
            if target[position : position + mid] in source:
                low = mid
            else:
                high = mid - 1
        return low

    # ------------------------------------------------------------------ #
    # Separator-based refinement (Lemma 4, case 1)
    # ------------------------------------------------------------------ #
    def split_placeholder(self, placeholder: Placeholder, source: str) -> list[Placeholder]:
        """Split a maximal placeholder on common separators.

        Returns the sub-placeholders (separator characters become literal gaps
        between them).  Returns a single-element list containing the original
        placeholder when there is nothing to split.
        """
        text = placeholder.text
        pieces: list[Placeholder] = []
        token_start: int | None = None
        for offset, char in enumerate(text):
            if is_separator(char):
                if token_start is not None:
                    pieces.append(
                        self._sub_placeholder(placeholder, source, token_start, offset)
                    )
                    token_start = None
            elif token_start is None:
                token_start = offset
        if token_start is not None:
            pieces.append(
                self._sub_placeholder(placeholder, source, token_start, len(text))
            )
        if len(pieces) <= 1 and (not pieces or pieces[0].text == text):
            return [placeholder]
        return [piece for piece in pieces if piece.length >= 1]

    def _sub_placeholder(
        self,
        parent: Placeholder,
        source: str,
        start_offset: int,
        end_offset: int,
    ) -> Placeholder:
        text = parent.text[start_offset:end_offset]
        return Placeholder(
            text=text,
            target_start=parent.target_start + start_offset,
            target_end=parent.target_start + end_offset,
            source_matches=find_occurrences(source, text, limit=self._max_matches),
        )

    # ------------------------------------------------------------------ #
    # Combined view
    # ------------------------------------------------------------------ #
    def extract(self, source: str, target: str) -> dict[str, list[Placeholder]]:
        """Extract both the maximal and the separator-split placeholder sets.

        Returns a dict with keys ``"maximal"`` and ``"split"``; the ``"split"``
        entry is only present when separator splitting is enabled and produced
        a different segmentation.
        """
        maximal = self.maximal_placeholders(source, target)
        result: dict[str, list[Placeholder]] = {"maximal": maximal}
        if self._split_on_separators:
            split: list[Placeholder] = []
            changed = False
            for placeholder in maximal:
                pieces = self.split_placeholder(placeholder, source)
                if len(pieces) != 1 or pieces[0] != placeholder:
                    changed = True
                split.extend(pieces)
            if changed:
                result["split"] = split
        return result
