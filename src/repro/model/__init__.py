"""The artifact layer: serializable transformation models and apply-only execution.

This package is the *train once, persist, apply many times* seam of the
system (the separation profiling/join libraries such as ``py_stringsimjoin``
draw between building filters and executing joins):

``repro.model.serialization``
    Versioned JSON (de)serialization of transformation units, whole
    transformations and discovery configs, with strict validation.
``repro.model.artifact``
    :class:`TransformationModel` — the fitted covering set plus coverage
    statistics and the discovery config that produced it; round-trips
    through ``dumps``/``loads`` and ``save``/``load``.
``repro.model.apply``
    The apply-only execution engine: transformations compiled once into the
    packed unit-prefix trie and applied to arbitrary new rows, serial or
    process-sharded.

Typical usage::

    from repro import JoinPipeline, TransformationModel

    model = JoinPipeline().fit(source, target,
                               source_column="Name", target_column="Name")
    model.save("model.json")

    # later, in another process — no re-discovery:
    model = TransformationModel.load("model.json")
    outcome = JoinPipeline().apply(model, new_source, new_target,
                                   source_column="Name", target_column="Name")
"""

from repro.model.apply import TransformationApplier, transform_trie_rows
from repro.model.artifact import TransformationModel
from repro.model.serialization import (
    FORMAT_NAME,
    SCHEMA_VERSION,
    ModelFormatError,
    SchemaVersionError,
    config_from_dict,
    config_to_dict,
    transformation_from_dict,
    transformation_to_dict,
    unit_from_dict,
    unit_to_dict,
)

__all__ = [
    "FORMAT_NAME",
    "ModelFormatError",
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "TransformationApplier",
    "TransformationModel",
    "config_from_dict",
    "config_to_dict",
    "transform_trie_rows",
    "transformation_from_dict",
    "transformation_to_dict",
    "unit_from_dict",
    "unit_to_dict",
]
