"""The serializable :class:`TransformationModel` artifact.

The model is the seam between *fit* and *apply*: everything a join needs to
run later — on another batch, in another process, on another machine —
without re-running matching or discovery:

* the selected covering set, in selection order (the order the joiner
  applies transformations in, so first-match attribution is reproducible);
* each transformation's discovery-time coverage count and the candidate-pair
  total, so support thresholds evaluate at apply time exactly as they would
  have in the one-shot pipeline;
* the :class:`~repro.core.config.DiscoveryConfig` that produced the set
  (provenance, plus the ``case_insensitive`` flag the joiner must honour);
* the join-time ``min_support`` fraction chosen at fit time;
* a summary of the discovery statistics (optional, informational).

The on-disk format is versioned JSON (see :mod:`repro.model.serialization`);
``loads(dumps(model))`` round-trips to an equal model whose transformations
apply byte-identically, and loading rejects corrupt files
(:class:`~repro.model.serialization.ModelFormatError`) and unknown schema
versions (:class:`~repro.model.serialization.SchemaVersionError`) instead of
guessing.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.config import DiscoveryConfig
from repro.core.transformation import Transformation
from repro.model.serialization import (
    FORMAT_NAME,
    SCHEMA_VERSION,
    ModelFormatError,
    SchemaVersionError,
    config_from_dict,
    config_to_dict,
    transformation_from_dict,
    transformation_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.discovery import DiscoveryResult
    from repro.join.joiner import TransformationJoiner


@dataclass
class TransformationModel:
    """A fitted, serializable set of transformations plus its provenance.

    Attributes
    ----------
    transformations:
        The selected cover, in selection order.
    coverage_counts:
        Discovery-time covered-pair count of each transformation (aligned
        with ``transformations``) — the numerator of its support fraction.
    num_candidate_pairs:
        Number of candidate pairs coverage was computed over — the
        denominator of every support fraction.
    min_support:
        Join-time support threshold (fraction of candidate pairs) chosen at
        fit time; 0 disables support filtering.
    discovery_config:
        The configuration of the discovery run that produced the model.
    stats:
        Flat summary of the discovery statistics (informational only; not
        part of model equality semantics beyond plain dict comparison).
    schema_version:
        Version of the serialization schema this model (de)serializes with.
    discovery:
        The full :class:`~repro.core.discovery.DiscoveryResult` when the
        model was fitted in this process; ``None`` after loading from disk.
        Never serialized, never compared.
    """

    transformations: list[Transformation]
    coverage_counts: list[int]
    num_candidate_pairs: int
    min_support: float = 0.0
    discovery_config: DiscoveryConfig = field(default_factory=DiscoveryConfig)
    stats: dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    discovery: "DiscoveryResult | None" = field(
        default=None, compare=False, repr=False
    )
    # Joiner cache, keyed by the worker knobs: the fit-once / apply-many
    # path must pay the support filter and the trie compile once per model,
    # not once per batch.  Never serialized, never compared.  The lock keeps
    # the memo coherent when one model instance serves concurrent request
    # threads (the `repro.serve` registry shares models across a
    # ThreadingHTTPServer's handlers).
    _joiners: dict = field(
        default_factory=dict, init=False, compare=False, repr=False
    )
    _joiners_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if len(self.transformations) != len(self.coverage_counts):
            raise ValueError(
                f"{len(self.transformations)} transformations but "
                f"{len(self.coverage_counts)} coverage counts"
            )
        if any(count < 0 for count in self.coverage_counts):
            raise ValueError(
                f"coverage counts must be >= 0, got {self.coverage_counts}"
            )
        if self.num_candidate_pairs < 0:
            raise ValueError(
                f"num_candidate_pairs must be >= 0, got {self.num_candidate_pairs}"
            )
        if not 0.0 <= self.min_support <= 1.0:
            raise ValueError(
                f"min_support must be in [0, 1], got {self.min_support}"
            )

    # ------------------------------------------------------------------ #
    # Construction from a discovery run
    # ------------------------------------------------------------------ #
    @classmethod
    def from_discovery(
        cls,
        discovery: "DiscoveryResult",
        *,
        config: DiscoveryConfig | None = None,
        min_support: float = 0.0,
    ) -> "TransformationModel":
        """Build a model from a finished discovery run.

        *config* is the configuration the run used (recorded for provenance
        and for the ``case_insensitive`` apply flag); *min_support* is the
        join-time threshold the model will carry.  The live
        :class:`DiscoveryResult` stays attached (``model.discovery``) so a
        same-process caller keeps the full statistics; it is dropped on
        serialization.
        """
        return cls(
            transformations=[result.transformation for result in discovery.cover],
            coverage_counts=[result.coverage for result in discovery.cover],
            num_candidate_pairs=discovery.num_candidate_pairs,
            min_support=min_support,
            discovery_config=config or DiscoveryConfig(),
            stats=discovery.stats.as_dict(),
            discovery=discovery,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_transformations(self) -> int:
        """Size of the stored covering set."""
        return len(self.transformations)

    @property
    def case_insensitive(self) -> bool:
        """Whether the transformations were learned on lower-cased text."""
        return self.discovery_config.case_insensitive

    def support_fractions(self) -> list[float]:
        """Discovery-time support (coverage / candidate pairs) per transformation."""
        if self.num_candidate_pairs == 0:
            return [0.0] * len(self.coverage_counts)
        return [count / self.num_candidate_pairs for count in self.coverage_counts]

    def describe(self) -> str:
        """Human-readable multi-line summary of the model."""
        lines = [
            f"TransformationModel (schema v{self.schema_version}): "
            f"{self.num_transformations} transformations over "
            f"{self.num_candidate_pairs} candidate pairs, "
            f"min_support={self.min_support}",
        ]
        for transformation, count in zip(self.transformations, self.coverage_counts):
            lines.append(f"  covers {count:5d}: {transformation}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # The apply side
    # ------------------------------------------------------------------ #
    def joiner(
        self,
        *,
        num_workers: int | None = None,
        min_rows_per_worker: int | None = None,
        task_timeout_s: float = 0.0,
        shard_retries: int = 2,
        serial_fallback: bool = True,
    ) -> "TransformationJoiner":
        """A :class:`~repro.join.joiner.TransformationJoiner` for this model.

        The joiner re-evaluates the model's ``min_support`` threshold
        against the stored discovery-time coverage counts — exactly the
        filtering the one-shot pipeline would have applied — and honours the
        ``case_insensitive`` flag of the discovery config.
        ``task_timeout_s``/``shard_retries``/``serial_fallback`` configure
        the sharded apply stage's fault tolerance (see
        :class:`~repro.join.joiner.TransformationJoiner`).

        Joiners are memoized per parameter tuple: repeated calls (every
        :meth:`~repro.join.pipeline.JoinPipeline.apply` goes through here)
        reuse the same joiner and therefore the same compiled trie.  The
        model is treated as an immutable artifact — mutating
        ``transformations`` in place after the first call would leave a
        stale cache.
        """
        from repro.join.joiner import TransformationJoiner

        key = (
            num_workers,
            min_rows_per_worker,
            task_timeout_s,
            shard_retries,
            serial_fallback,
        )
        with self._joiners_lock:
            joiner = self._joiners.get(key)
            if joiner is None:
                joiner = self._joiners[key] = TransformationJoiner(
                    self.transformations,
                    min_support=self.min_support,
                    coverage_counts=self.coverage_counts,
                    num_candidate_pairs=self.num_candidate_pairs,
                    case_insensitive=self.case_insensitive,
                    num_workers=num_workers,
                    min_rows_per_worker=min_rows_per_worker,
                    task_timeout_s=task_timeout_s,
                    shard_retries=shard_retries,
                    serial_fallback=serial_fallback,
                )
        return joiner

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """The versioned JSON-able payload of this model."""
        return {
            "format": FORMAT_NAME,
            "schema_version": self.schema_version,
            "num_candidate_pairs": self.num_candidate_pairs,
            "min_support": self.min_support,
            "discovery_config": config_to_dict(self.discovery_config),
            "cover": [
                {
                    "units": transformation_to_dict(transformation),
                    "coverage": count,
                }
                for transformation, count in zip(
                    self.transformations, self.coverage_counts
                )
            ],
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "TransformationModel":
        """Parse a model payload, validating format and schema version."""
        if not isinstance(payload, dict):
            raise ModelFormatError(
                f"model payload must be an object, got {type(payload).__name__}"
            )
        if payload.get("format") != FORMAT_NAME:
            raise ModelFormatError(
                f"not a transformation model: format is "
                f"{payload.get('format')!r}, expected {FORMAT_NAME!r}"
            )
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"unsupported model schema version {version!r}; this library "
                f"reads version {SCHEMA_VERSION}"
            )
        missing = {"num_candidate_pairs", "cover"} - set(payload)
        if missing:
            raise ModelFormatError(f"model payload missing keys {sorted(missing)}")
        num_candidate_pairs = payload["num_candidate_pairs"]
        if not isinstance(num_candidate_pairs, int) or isinstance(
            num_candidate_pairs, bool
        ):
            raise ModelFormatError(
                f"num_candidate_pairs must be an integer, "
                f"got {num_candidate_pairs!r}"
            )
        min_support = payload.get("min_support", 0.0)
        if not isinstance(min_support, (int, float)) or isinstance(min_support, bool):
            raise ModelFormatError(
                f"min_support must be a number, got {min_support!r}"
            )
        cover = payload["cover"]
        if not isinstance(cover, list):
            raise ModelFormatError(f"cover must be a list, got {cover!r}")
        transformations: list[Transformation] = []
        coverage_counts: list[int] = []
        for entry in cover:
            if not isinstance(entry, dict) or "units" not in entry:
                raise ModelFormatError(
                    f"cover entries must be objects with units, got {entry!r}"
                )
            coverage = entry.get("coverage", 0)
            if not isinstance(coverage, int) or isinstance(coverage, bool):
                raise ModelFormatError(
                    f"cover entry coverage must be an integer, got {coverage!r}"
                )
            transformations.append(transformation_from_dict(entry["units"]))
            coverage_counts.append(coverage)
        if min_support > 0 and num_candidate_pairs == 0 and transformations:
            # No fit can produce this (a non-empty cover implies candidate
            # pairs): the support threshold would be unevaluable at apply
            # time, so reject the artifact as inconsistent rather than let
            # the joiner blow up later.
            raise ModelFormatError(
                "inconsistent model: min_support > 0 with a non-empty cover "
                "requires num_candidate_pairs > 0"
            )
        stats = payload.get("stats") or {}
        if not isinstance(stats, dict):
            raise ModelFormatError(f"stats must be an object, got {stats!r}")
        try:
            return cls(
                transformations=transformations,
                coverage_counts=coverage_counts,
                num_candidate_pairs=num_candidate_pairs,
                min_support=float(min_support),
                discovery_config=config_from_dict(
                    payload.get("discovery_config") or {}
                ),
                stats=stats,
                schema_version=version,
            )
        except (TypeError, ValueError) as error:
            if isinstance(error, ModelFormatError):
                raise
            raise ModelFormatError(f"invalid model payload: {error}") from error

    def dumps(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def loads(cls, text: str) -> "TransformationModel":
        """Parse a model from a JSON string (strict)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ModelFormatError(f"model file is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> Path:
        """Write the model to *path* as JSON; returns the path.

        The write is atomic (temp file + ``os.replace`` in the target
        directory): a crash mid-write, or a concurrent reader, never sees a
        truncated artifact — the previous model survives until the new one
        is fully on disk.
        """
        path = Path(path)
        temp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        temp.write_text(self.dumps(), encoding="utf-8")
        try:
            os.replace(temp, path)
        except OSError:
            temp.unlink(missing_ok=True)
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TransformationModel":
        """Read a model from a JSON file written by :meth:`save`."""
        return cls.loads(Path(path).read_text(encoding="utf-8"))


__all__ = ["TransformationModel"]
