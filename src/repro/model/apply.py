"""The apply-only execution engine: batch-transform arbitrary rows.

Discovery needs coverage — *does* this transformation map source to target —
but the apply path of a persisted :class:`~repro.model.artifact.TransformationModel`
needs outputs: the transformed value of every (transformation, source row)
combination, over rows that were never part of training.  The one-at-a-time
loop (``transformation.apply(value)`` per transformation per row) re-applies
shared unit prefixes and re-splits the same value once per split unit; this
module instead compiles the transformation set into the same packed
unit-prefix trie the coverage engine of :mod:`repro.core.coverage` walks
(PR 4's opcode specialization included) and evaluates each unit at most once
per (unit, row):

* transformations sharing a unit prefix share the prefix's outputs — one
  evaluation feeds every subtree below it;
* split-family units of one delimiter share a single ``str.split`` per row
  through the per-row split caches;
* a unit that is not applicable to a row (``None`` output) prunes its whole
  subtree for that row in one step.

There is no target column here, so none of the coverage walk's
target-anchored machinery applies: no literal-anchor prefilter (nothing to
scan), no positional pruning (no prefix to diverge from), no non-covering
cache (``output not in target`` is a coverage notion).  The walk is a plain
depth-first descent accumulating concatenated output strings, and its
results are exactly ``transformation.apply(value)`` for every pair — the
property tests assert that equivalence against the reference loop.

Every structure is per-row, so the kernel shards exactly like the coverage
kernel: :func:`repro.parallel.transform.sharded_transform` splits the rows
across a :class:`~repro.parallel.executor.ShardedExecutor` sharing the
frozen trie and concatenates shard outputs in order, byte-identical to the
serial walk.
"""

from __future__ import annotations

from collections.abc import Sequence
from time import monotonic

from repro.core.coverage import (
    _OP_LITERAL,
    _OP_SPLIT,
    _OP_SPLITSUBSTR,
    _OP_SUBSTR,
    _OP_TWOCHAR,
    PackedTrie,
    _build_unit_trie,
)
from repro.core.transformation import Transformation
from repro.parallel.errors import DeadlineExceededError
from repro.parallel.executor import tuned_num_workers

#: Row-block granularity of the cooperative deadline checks: with a
#: deadline set, the walk dispatches one block at a time and checks the
#: clock between blocks — the same boundary discipline as the budgeted
#: coverage walk, so a hung or overlong apply stops burning CPU within one
#: block of the deadline instead of finishing the whole batch.
_DEADLINE_BLOCK_ROWS = 1024


def transform_trie_rows(
    values: Sequence[str],
    row_offset: int,
    trie: PackedTrie,
    *,
    deadline: float | None = None,
) -> dict[int, list[tuple[int, str]]]:
    """Apply every transformation of *trie* to every value of *values*.

    This is the batched apply kernel, shared by the serial engine (all rows,
    ``row_offset=0``) and the process-sharded engine (a contiguous row
    slice, with *row_offset* restoring global row ids).  Returns a mapping
    from a transformation's index in the trie to its ``(row, output)``
    pairs, rows ascending; combinations where some unit was not applicable
    are absent (exactly the rows where ``Transformation.apply`` returns
    ``None``).

    Under the numpy kernel tier (see :mod:`repro.kernels`) batches large
    enough to amortize array setup run the vectorized walker of
    :mod:`repro.kernels.apply`; serve-style micro-batches and the pure
    Python tier take the loop below.  Results are equal either way.

    ``deadline`` (a ``time.monotonic()`` timestamp; ``CLOCK_MONOTONIC`` is
    system-wide, so sharded workers can honour a deadline computed in the
    parent) bounds the walk cooperatively at
    :data:`_DEADLINE_BLOCK_ROWS`-row block boundaries.  Unlike the budgeted
    coverage walk — which degrades to the rows walked in time — an apply
    caller needs *complete* outputs or none (a served join response must be
    byte-identical to the offline result, never a prefix of it), so an
    expired deadline raises :class:`DeadlineExceededError` instead of
    truncating.  Results of a run that completes under a deadline are
    byte-identical to an unbounded run.
    """
    if deadline is None:
        return _dispatch_trie_rows(values, row_offset, trie)
    outputs: dict[int, list[tuple[int, str]]] = {}
    total = len(values)
    for start in range(0, total, _DEADLINE_BLOCK_ROWS):
        if monotonic() >= deadline:
            raise DeadlineExceededError(
                f"apply deadline expired after {start} of {total} rows"
            )
        block = _dispatch_trie_rows(
            values[start : start + _DEADLINE_BLOCK_ROWS],
            row_offset + start,
            trie,
        )
        # Blocks are processed in ascending row order, so extending keeps
        # every transformation's (row, output) list ascending — identical
        # to the unblocked walk.
        for index, pairs in block.items():
            existing = outputs.get(index)
            if existing is None:
                outputs[index] = pairs
            else:
                existing.extend(pairs)
    return outputs


def _dispatch_trie_rows(
    values: Sequence[str],
    row_offset: int,
    trie: PackedTrie,
) -> dict[int, list[tuple[int, str]]]:
    """Run one batch through the kernel tier's walker (no deadline logic)."""
    from repro import kernels  # noqa: PLC0415

    if kernels.active_tier() == "numpy":
        from repro.kernels.apply import (  # noqa: PLC0415
            _APPLY_MIN_ROWS,
            available,
            transform_trie_rows_numpy,
        )

        if len(values) >= _APPLY_MIN_ROWS and available():
            return transform_trie_rows_numpy(values, row_offset, trie)
    return _transform_trie_rows_python(values, row_offset, trie)


def _transform_trie_rows_python(
    values: Sequence[str],
    row_offset: int,
    trie: PackedTrie,
) -> dict[int, list[tuple[int, str]]]:
    """The reference per-row apply walk — the executable spec both kernel
    tiers must match (the property tests pin both to
    ``Transformation.apply``)."""
    outputs: dict[int, list[tuple[int, str]]] = {}
    num_units = trie.num_units
    num_delimiters = trie.num_delimiters
    root_edges = trie.root_edges
    root_terminals = trie.root_terminals

    for slot, source in enumerate(values):
        row = row_offset + slot
        # Per-row caches, same layout as the coverage walk: the unit-output
        # memo (False = not yet applied; outputs are str or None) indexed by
        # the build-time unit ordinals, and the split caches shared by
        # split-family units of one delimiter.
        memo: list = [False] * num_units
        split_cache: list = [None] * num_delimiters
        tsplit_cache: dict = {}

        stack: list[tuple[list, list[int], str]] = [(root_edges, root_terminals, "")]
        push = stack.append
        pop = stack.pop
        while stack:
            edges, terminals, prefix = pop()
            for index in terminals:
                # Every unit on the path applied: the concatenated prefix is
                # this transformation's output for the row.
                outputs.setdefault(index, []).append((row, prefix))
            for edge in edges:
                op = edge[1]
                args = edge[2]
                if op == _OP_LITERAL:
                    # Literals always apply; no memo needed.
                    push((edge[3], edge[4], prefix + args[0]))
                    continue
                unit_id = edge[0]
                output = memo[unit_id]
                if output is False:
                    # NOTE: the opcode evaluation below intentionally mirrors
                    # the coverage walker in repro/core/coverage.py
                    # (_walk_trie_rows) minus its target-anchored checks; both
                    # must keep matching the units' apply() semantics — the
                    # property tests pin each kernel to Transformation.apply
                    # directly, so a change to unit semantics must update all
                    # three places.
                    if op == _OP_SPLITSUBSTR:
                        delimiter, piece_index, start, end, delimiter_id = args
                        pieces = split_cache[delimiter_id]
                        if pieces is None:
                            pieces = split_cache[delimiter_id] = source.split(
                                delimiter
                            )
                        num_pieces = len(pieces)
                        if num_pieces < 2 or piece_index >= num_pieces:
                            output = None
                        else:
                            piece = pieces[piece_index]
                            output = piece[start:end] if end <= len(piece) else None
                    elif op == _OP_SPLIT:
                        pieces = split_cache[args[2]]
                        if pieces is None:
                            pieces = split_cache[args[2]] = source.split(args[0])
                        num_pieces = len(pieces)
                        if num_pieces < 2 or args[1] >= num_pieces:
                            output = None
                        else:
                            output = pieces[args[1]]
                    elif op == _OP_SUBSTR:
                        output = (
                            source[args[0] : args[1]]
                            if args[1] <= len(source)
                            else None
                        )
                    elif op == _OP_TWOCHAR:
                        key = (args[0], args[1])
                        pieces = tsplit_cache.get(key, False)
                        if pieces is False:
                            if args[0] in source or args[1] in source:
                                mode = args[5]
                                if mode == 2:
                                    pieces = source.replace(args[1], args[0]).split(
                                        args[0]
                                    )
                                elif mode == 1:
                                    pieces = source.split(args[0])
                                elif mode == -1:
                                    pieces = source.split(args[1])
                                else:
                                    pieces = [source]
                            else:
                                pieces = None
                            tsplit_cache[key] = pieces
                        if pieces is None or args[2] >= len(pieces):
                            output = None
                        else:
                            piece = pieces[args[2]]
                            output = (
                                piece[args[3] : args[4]]
                                if args[4] <= len(piece)
                                else None
                            )
                    else:  # _OP_APPLY: unknown unit subclasses keep apply()
                        output = args[0](source)
                    memo[unit_id] = output
                if output is not None:
                    push((edge[3], edge[4], prefix + output))
                # output is None: the unit is not applicable to this row,
                # so no transformation below this edge produces a value.
    return outputs


class TransformationApplier:
    """Compile a transformation set once, then batch-transform any rows.

    The compiled trie is read-only after construction (it is the same
    :class:`~repro.core.coverage.PackedTrie` the coverage engine freezes),
    so one applier can serve many :meth:`transform_rows` calls — the
    fit-once / apply-many shape of the artifact layer — and ships to worker
    processes once per sharded run.
    """

    def __init__(self, transformations: Sequence[Transformation]) -> None:
        self._transformations = list(transformations)
        self._trie: PackedTrie | None = (
            _build_unit_trie(self._transformations)
            if self._transformations
            else None
        )

    @property
    def transformations(self) -> list[Transformation]:
        """The compiled transformations, in input order."""
        return list(self._transformations)

    @property
    def trie(self) -> PackedTrie | None:
        """The frozen unit-prefix trie (``None`` for an empty set)."""
        return self._trie

    def transform_rows(
        self,
        values: Sequence[str],
        *,
        num_workers: int = 1,
        min_rows_per_worker: int | None = None,
        task_timeout: float | None = None,
        shard_retries: int = 2,
        serial_fallback: bool = True,
        deadline: float | None = None,
    ) -> dict[int, list[tuple[int, str]]]:
        """Outputs of every transformation over *values*.

        Returns the kernel mapping (transformation index → ascending
        ``(row, output)`` pairs; non-applicable combinations absent).  With
        ``num_workers`` above 1 the rows are sharded across a process pool
        (0 = all cores); the resolution goes through
        :func:`~repro.parallel.executor.tuned_num_workers`, so small inputs
        take the serial path regardless — results are identical either way.
        ``task_timeout``/``shard_retries``/``serial_fallback`` configure the
        sharded path's fault tolerance (see
        :class:`~repro.parallel.executor.ShardedExecutor`); ``deadline`` is
        the cooperative monotonic cut honoured at block boundaries in the
        walkers, serial and sharded alike (see
        :func:`transform_trie_rows`).
        """
        if self._trie is None or not values:
            return {}
        workers = tuned_num_workers(
            num_workers,
            len(values),
            min_items_per_worker=min_rows_per_worker,
        )
        if workers > 1:
            from repro.parallel.transform import sharded_transform

            return sharded_transform(
                values,
                self._trie,
                num_workers=workers,
                task_timeout=task_timeout,
                max_shard_retries=shard_retries,
                serial_fallback=serial_fallback,
                deadline=deadline,
            )
        return transform_trie_rows(values, 0, self._trie, deadline=deadline)

    def apply_all(
        self,
        values: Sequence[str],
        *,
        num_workers: int = 1,
        min_rows_per_worker: int | None = None,
    ) -> list[list[str | None]]:
        """Dense output table: ``result[t][row]`` is the transformed value.

        The dense convenience view of :meth:`transform_rows` —
        ``None`` marks non-applicable combinations, matching
        ``Transformation.apply``.
        """
        table: list[list[str | None]] = [
            [None] * len(values) for _ in self._transformations
        ]
        outputs = self.transform_rows(
            values,
            num_workers=num_workers,
            min_rows_per_worker=min_rows_per_worker,
        )
        for index, pairs in outputs.items():
            row_outputs = table[index]
            for row, output in pairs:
                row_outputs[row] = output
        return table


__all__ = [
    "TransformationApplier",
    "transform_trie_rows",
    "_transform_trie_rows_python",
]
