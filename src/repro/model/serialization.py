"""Versioned JSON (de)serialization of transformations and configs.

The artifact layer ships discovered transformations across process and
machine boundaries, so its wire format is explicit and versioned instead of
pickled:

* every unit serializes to a flat dict ``{"unit": <class name>, **fields}``
  using the unit dataclasses' own fields — only the registered unit classes
  (:data:`repro.core.units.UNIT_CLASSES`) are serializable, so a custom
  subclass cannot silently round-trip into a different behaviour;
* a transformation is the list of its unit dicts;
* a :class:`~repro.core.config.DiscoveryConfig` serializes field by field
  (the ``extra`` escape hatch included), so a loaded model records exactly
  the discovery settings that produced it.

Deserialization is strict: unknown unit names, missing or extra fields, and
out-of-range values all raise :class:`ModelFormatError` (unit constructors
re-validate through their ``__post_init__`` hooks, so a hand-edited file
cannot smuggle in an invalid unit).  Schema evolution is handled one level
up, by :class:`~repro.model.artifact.TransformationModel` comparing the
file's ``schema_version`` against :data:`SCHEMA_VERSION` and raising
:class:`SchemaVersionError` on mismatch.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.core.config import DiscoveryConfig
from repro.core.transformation import Transformation
from repro.core.units import UNIT_CLASSES, TransformationUnit

#: Version of the on-disk model schema.  Bump on any incompatible change to
#: the payload layout; loaders refuse versions they do not know (no silent
#: best-effort parsing of a future or past layout).
SCHEMA_VERSION = 1

#: The ``format`` tag every model file carries, so an arbitrary JSON file is
#: rejected with a clear error instead of a confusing KeyError.
FORMAT_NAME = "repro.transformation-model"


class ModelFormatError(ValueError):
    """The payload is not a valid transformation model (corrupt or foreign)."""


class SchemaVersionError(ModelFormatError):
    """The payload's schema version is not supported by this library."""


def unit_to_dict(unit: TransformationUnit) -> dict[str, Any]:
    """Serialize one transformation unit to a JSON-able dict."""
    name = type(unit).__name__
    registered = UNIT_CLASSES.get(name)
    if registered is not type(unit):
        raise ModelFormatError(
            f"cannot serialize unit of unregistered type {type(unit)!r}; "
            f"serializable units: {sorted(UNIT_CLASSES)}"
        )
    # Every registered unit class is a frozen dataclass; the base class is
    # not, hence the narrow ignore.
    return {"unit": name, **dataclasses.asdict(unit)}  # type: ignore[call-overload]


#: The only field types unit dataclasses use, keyed by their annotation
#: source text (the unit module uses ``from __future__ import annotations``,
#: so ``field.type`` is a string).
_UNIT_FIELD_TYPES = {"str": str, "int": int}


def unit_from_dict(payload: Any) -> TransformationUnit:
    """Deserialize one transformation unit, validating strictly."""
    if not isinstance(payload, dict):
        raise ModelFormatError(f"unit payload must be an object, got {payload!r}")
    fields = dict(payload)
    name = fields.pop("unit", None)
    if not isinstance(name, str):
        raise ModelFormatError(f"unit type must be a string, got {name!r}")
    unit_class = UNIT_CLASSES.get(name)
    if unit_class is None:
        raise ModelFormatError(
            f"unknown unit type {name!r}; valid types: {sorted(UNIT_CLASSES)}"
        )
    declared = dataclasses.fields(unit_class)  # type: ignore[arg-type]
    expected = {field.name for field in declared}
    if set(fields) != expected:
        raise ModelFormatError(
            f"unit {name!r} requires fields {sorted(expected)}, "
            f"got {sorted(fields)}"
        )
    for field in declared:
        # The constructors' __post_init__ validators only range-check, so a
        # wrong-typed value (a dict delimiter, a boolean index) would pass
        # construction and blow up much later at apply time — reject here.
        value = fields[field.name]
        expected_type = _UNIT_FIELD_TYPES.get(field.type)
        if expected_type is None:  # pragma: no cover - future field types
            continue
        if not isinstance(value, expected_type) or isinstance(value, bool):
            raise ModelFormatError(
                f"unit {name!r} field {field.name!r} must be "
                f"{field.type}, got {value!r}"
            )
    try:
        return unit_class(**fields)
    except (TypeError, ValueError) as error:
        raise ModelFormatError(f"invalid {name} unit: {error}") from error


def transformation_to_dict(transformation: Transformation) -> list[dict[str, Any]]:
    """Serialize a transformation as the list of its unit dicts."""
    return [unit_to_dict(unit) for unit in transformation.units]


def transformation_from_dict(payload: Any) -> Transformation:
    """Deserialize a transformation from its unit-dict list."""
    if not isinstance(payload, list) or not payload:
        raise ModelFormatError(
            f"transformation payload must be a non-empty list of units, "
            f"got {payload!r}"
        )
    return Transformation(unit_from_dict(unit) for unit in payload)


#: DiscoveryConfig fields stored in the model payload — everything, so the
#: artifact is a complete provenance record of the run that produced it.
_CONFIG_FIELDS = tuple(field.name for field in dataclasses.fields(DiscoveryConfig))


def config_to_dict(config: DiscoveryConfig) -> dict[str, Any]:
    """Serialize a :class:`DiscoveryConfig` field by field."""
    payload: dict[str, Any] = {}
    for name in _CONFIG_FIELDS:
        value = getattr(config, name)
        if isinstance(value, tuple):
            value = list(value)
        payload[name] = value
    return payload


def config_from_dict(payload: Any) -> DiscoveryConfig:
    """Deserialize a :class:`DiscoveryConfig`, validating strictly.

    Unknown keys are rejected (a newer writer's config does not silently
    lose settings in an older reader — the schema version should have caught
    that first, but hand-edited files exist).
    """
    if not isinstance(payload, dict):
        raise ModelFormatError(
            f"discovery_config must be an object, got {payload!r}"
        )
    unknown = set(payload) - set(_CONFIG_FIELDS)
    if unknown:
        raise ModelFormatError(
            f"unknown discovery_config fields {sorted(unknown)}"
        )
    fields = dict(payload)
    if "enabled_units" in fields and isinstance(fields["enabled_units"], list):
        fields["enabled_units"] = tuple(fields["enabled_units"])
    try:
        return DiscoveryConfig(**fields)
    except (TypeError, ValueError) as error:
        raise ModelFormatError(f"invalid discovery_config: {error}") from error


__all__ = [
    "FORMAT_NAME",
    "ModelFormatError",
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "config_from_dict",
    "config_to_dict",
    "transformation_from_dict",
    "transformation_to_dict",
    "unit_from_dict",
    "unit_to_dict",
]
