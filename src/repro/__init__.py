"""repro — a reproduction of "Efficiently Transforming Tables for Joinability".

The library learns string transformations that make two differently-formatted
table columns equi-joinable, following Dargahi Nobari & Rafiei (ICDE 2022).

Typical usage::

    from repro import TransformationDiscovery

    engine = TransformationDiscovery()
    result = engine.discover_from_strings([
        ("Rafiei, Davood", "D Rafiei"),
        ("Bowling, Michael", "M Bowling"),
        ("Gosgnach, Simon", "S Gosgnach"),
    ])
    best = result.best.transformation
    best.apply("Nascimento, Mario")   # -> 'M Nascimento'

or, end to end over two tables::

    from repro import JoinPipeline, Table

    pipeline = JoinPipeline()
    outcome = pipeline.run(source_table, target_table,
                           source_column="Name", target_column="Name")

Sub-packages
------------
``repro.core``
    Transformation units, placeholders, skeletons, the discovery engine.
``repro.matching``
    N-gram row matching (Algorithm 1 of the paper).
``repro.join``
    The end-to-end transformation join (fit/apply and one-shot).
``repro.model``
    The artifact layer: serializable transformation models and the
    apply-only execution engine.
``repro.serve``
    The serving layer: a long-lived HTTP join server with a hot-reloading
    model registry, warm compiled-artifact caches, and request
    micro-batching.
``repro.baselines``
    Naive enumeration, Auto-Join, and Auto-FuzzyJoin baselines.
``repro.datasets``
    Synthetic and simulated real-world benchmark generators.
``repro.evaluation``
    Precision/recall/F1 and coverage metrics, report formatting.
``repro.table``
    The lightweight relational substrate.
"""

from repro.core import (
    DiscoveryConfig,
    DiscoveryResult,
    Literal,
    RowPair,
    Split,
    SplitSubstr,
    Substr,
    Transformation,
    TransformationDiscovery,
    TwoCharSplitSubstr,
)
from repro.core.discovery import discover_transformations
from repro.join import ApplyResult, JoinPipeline, PipelineResult, TransformationJoiner
from repro.matching import GoldenRowMatcher, MatchingConfig, NGramRowMatcher
from repro.model import (
    ModelFormatError,
    SchemaVersionError,
    TransformationApplier,
    TransformationModel,
)
from repro.table import Table, read_csv, write_csv

__version__ = "1.0.0"

__all__ = [
    "ApplyResult",
    "DiscoveryConfig",
    "DiscoveryResult",
    "GoldenRowMatcher",
    "JoinPipeline",
    "Literal",
    "MatchingConfig",
    "ModelFormatError",
    "NGramRowMatcher",
    "PipelineResult",
    "RowPair",
    "SchemaVersionError",
    "Split",
    "SplitSubstr",
    "Substr",
    "Table",
    "Transformation",
    "TransformationApplier",
    "TransformationDiscovery",
    "TransformationJoiner",
    "TransformationModel",
    "TwoCharSplitSubstr",
    "discover_transformations",
    "read_csv",
    "write_csv",
    "__version__",
]
