"""Plain-text report formatting used by benchmarks and examples.

Every benchmark regenerates one of the paper's tables or figures; these
helpers render the result rows as an aligned text table (and optionally CSV)
so the output reads like the table it reproduces.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render *rows* (dicts) as an aligned, pipe-separated text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(
        " | ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)


def rows_to_csv(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
) -> str:
    """Render *rows* as a CSV string (header + one line per row)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    return buffer.getvalue()
