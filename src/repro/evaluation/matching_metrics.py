"""Precision / recall / F1 of candidate row pairs (Table 1 of the paper)."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.pairs import RowPair


@dataclass(frozen=True)
class PRF:
    """Precision, recall and F1 of a set of predicted pairs."""

    precision: float
    recall: float
    f1: float
    num_predicted: int
    num_gold: int
    num_correct: int

    def as_dict(self) -> dict[str, float]:
        """The metrics as a flat dict."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "num_predicted": self.num_predicted,
            "num_gold": self.num_gold,
            "num_correct": self.num_correct,
        }


def prf(
    predicted: Iterable[tuple[int, int]],
    gold: Iterable[tuple[int, int]],
) -> PRF:
    """Compute precision/recall/F1 of predicted (source_row, target_row) pairs."""
    predicted_set = set(predicted)
    gold_set = set(gold)
    correct = len(predicted_set & gold_set)
    precision = correct / len(predicted_set) if predicted_set else 0.0
    recall = correct / len(gold_set) if gold_set else 0.0
    if precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2 * precision * recall / (precision + recall)
    return PRF(
        precision=precision,
        recall=recall,
        f1=f1,
        num_predicted=len(predicted_set),
        num_gold=len(gold_set),
        num_correct=correct,
    )


def evaluate_matching(
    pairs: Sequence[RowPair],
    gold: Iterable[tuple[int, int]],
) -> PRF:
    """Evaluate a row matcher's output against a ground-truth matching.

    Pairs whose row indices are unknown (``-1``) cannot be evaluated and are
    counted as incorrect predictions.
    """
    predicted = {(p.source_row, p.target_row) for p in pairs}
    return prf(predicted, gold)
