"""End-to-end join quality (Table 3 of the paper).

The output of a joiner is a set of (source_row, target_row) pairs; the
metrics compare that set against a ground-truth matching.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.evaluation.matching_metrics import PRF, prf


def evaluate_join(
    joined_pairs: Iterable[tuple[int, int]],
    gold: Iterable[tuple[int, int]],
) -> PRF:
    """Precision / recall / F1 of joined row pairs against the gold matching."""
    return prf(joined_pairs, gold)
