"""Evaluation metrics: row-matching quality, join quality, and coverage.

These implement the measures reported in Tables 1–3 of the paper:
precision / recall / F1 of candidate row pairs against ground truth, the same
for the end-to-end join output, and coverage statistics of transformation
sets.
"""

from repro.evaluation.join_metrics import evaluate_join
from repro.evaluation.matching_metrics import PRF, evaluate_matching, prf
from repro.evaluation.report import format_table, rows_to_csv

__all__ = [
    "PRF",
    "evaluate_join",
    "evaluate_matching",
    "format_table",
    "prf",
    "rows_to_csv",
]
