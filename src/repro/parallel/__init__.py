"""Process-sharded execution of the matching/coverage/apply hot paths.

Rows are independent in all three hot stages of the pipeline, so this
package shards them across a process pool while keeping results
byte-identical to the serial engines (which remain the executable spec):

* :mod:`repro.parallel.executor` — the :class:`ShardedExecutor`: one pool
  per run, read-only state (packed index, frozen unit trie) shared
  copy-on-write under fork or pickled once per worker under spawn, guided
  shard sizing with a work-stealing task queue, deterministic in-order
  merges;
* :mod:`repro.parallel.coverage` — row-sharded batched coverage (identical
  covered rows always, identical cache statistics from a cold cache —
  workers never see a computer's warmed persistent cache);
* :mod:`repro.parallel.matching` — source-row-sharded candidate matching
  (identical pairs, order and Rscore tie behaviour);
* :mod:`repro.parallel.transform` — source-row-sharded batch
  transformation for the apply-only path of the artifact layer (identical
  outputs, ascending row order per transformation).

The knobs are ``DiscoveryConfig.num_workers``,
``MatchingConfig.num_workers`` and ``TransformationJoiner``'s
``num_workers`` (1 = serial, 0 = all cores; defaults honour the
``REPRO_NUM_WORKERS`` environment variable), surfaced on the CLI as
``--num-workers`` and on the perf harness as ``--workers``.  Every one of
them resolves through :func:`~repro.parallel.executor.tuned_num_workers`,
so "all cores" consistently honours the small-input fast path.

Failures inside the sharded paths surface as the typed taxonomy of
:mod:`repro.parallel.errors` (:class:`ShardError`,
:class:`WorkerCrashError`, :class:`ShardTimeoutError`); by default the
executor recovers from them transparently — bounded in-pool retries, then
a serial inline fallback that recomputes only the failed shards — so the
merged result stays byte-identical even on a flaky pool.
"""

from repro.parallel.errors import (
    DeadlineExceededError,
    ShardError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.parallel.executor import (
    ShardedExecutor,
    default_start_method,
    env_default_workers,
    map_sharded,
    resolve_num_workers,
    shard_plan,
    tuned_num_workers,
    worker_state,
)

__all__ = [
    "DeadlineExceededError",
    "ShardError",
    "ShardTimeoutError",
    "ShardedExecutor",
    "WorkerCrashError",
    "default_start_method",
    "env_default_workers",
    "map_sharded",
    "resolve_num_workers",
    "shard_plan",
    "tuned_num_workers",
    "worker_state",
]
