"""The typed error taxonomy of the fault-tolerant sharded executor.

Before this layer existed, a failure inside a worker process surfaced as
whatever the pool happened to raise — a bare ``multiprocessing.TimeoutError``
with no context, a re-raised worker exception with no shard attribution, or
(for a hard worker death) an indefinite hang.  Every failure the
:class:`~repro.parallel.executor.ShardedExecutor` can observe now maps to one
of three exception types, each carrying the shard range it happened on, how
many pool attempts were made, and the underlying cause:

* :class:`ShardError` — the base type: a shard's worker function raised, and
  retries plus (when enabled) the serial inline fallback could not produce a
  result.  ``cause`` holds the original exception.
* :class:`WorkerCrashError` — a pool worker process died while the shard was
  pending (an ``os._exit``, a segfault, an OOM kill: the
  ``BrokenProcessPool`` class of failure).  The task is lost, not failed —
  there is no worker traceback to attach.
* :class:`ShardTimeoutError` — the submission-time deadline derived from
  ``task_timeout`` expired before the shard's result arrived.  Replaces the
  bare ``multiprocessing.TimeoutError`` the executor used to leak.

All three derive from :class:`ShardError`, so callers that only want "the
sharded run failed" catch one type; the CLI maps any of them to its one-line
stderr + exit-code contract.
"""

from __future__ import annotations


class DeadlineExceededError(RuntimeError):
    """A cooperative wall-clock deadline expired inside a batched walk.

    Raised by the apply walker's blocked deadline checks (see
    :func:`repro.model.apply.transform_trie_rows`) when the caller-supplied
    ``time.monotonic()`` deadline passes — inside a pool worker or in the
    serial path alike.  Unlike :class:`ShardTimeoutError` (the *parent*
    noticing a shard missed the map deadline), this is the *worker itself*
    stopping at the next block boundary instead of burning CPU on rows
    nobody will wait for.  Deliberately **not** a :class:`ShardError`: it is
    raised by serial code paths too, and it is deterministic — the executor
    never retries it (the deadline cannot un-expire).

    The serving layer maps it (directly, or as the cause of a
    :class:`ShardError`) to its own 504 taxonomy; see
    :mod:`repro.serve.errors`.
    """


class ShardError(RuntimeError):
    """A shard could not be computed, in the pool or inline.

    Attributes
    ----------
    shard:
        The ``(start, stop)`` row range of the failed shard (``None`` when
        the failure was not attributable to one shard).
    attempts:
        How many pool executions were attempted before giving up (retries
        included; 0 when the failure preceded any execution).
    cause:
        The underlying exception, when one exists.  Also chained as
        ``__cause__`` wherever the raise site has it.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: tuple[int, int] | None = None,
        attempts: int = 0,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts
        self.cause = cause


class WorkerCrashError(ShardError):
    """A pool worker process died while a shard was pending.

    The ``BrokenProcessPool`` class of failure: the worker was killed (or
    killed itself) without reporting a result, so the shard's task is lost
    rather than failed — there is no worker traceback to chain.
    """


class ShardTimeoutError(ShardError):
    """The submission-time deadline expired before a shard completed.

    The deadline is computed once when the shards are submitted
    (``monotonic() + task_timeout``) and every wait consumes the *remaining*
    time, so ``task_timeout`` bounds the whole ``map_shards`` call — it does
    not restart per shard at collection time.
    """


__all__ = [
    "DeadlineExceededError",
    "ShardError",
    "ShardTimeoutError",
    "WorkerCrashError",
]
