"""The shared-index process executor behind the sharded engines.

Both hot stages of the pipeline — batched coverage and row matching — are
embarrassingly parallel over rows, but the read-only structures they walk
(the frozen unit-prefix trie, the packed
:class:`~repro.matching.index.InvertedIndex`) are large, and shipping them
with every task would drown the win in serialization.  The
:class:`ShardedExecutor` therefore shares that state with the pool exactly
once per run:

* **fork** (the default wherever available): the state is handed to the pool
  initializer *before* the children are forked, so every worker inherits the
  parent's objects through copy-on-write memory — nothing is pickled at all;
* **spawn / forkserver** (the fallback for platforms without fork): the same
  initializer arguments are pickled once per worker process at pool start-up,
  never per task.

Tasks themselves are tiny ``(start, stop)`` row ranges.  The shard plan is a
guided, decreasing schedule (early shards large, tail shards small) and the
pool's shared task queue hands shards to whichever worker goes idle first, so
a slow shard steals less total wall-clock than static splitting would.
Results are collected in submission order, which keeps every sharded engine's
merge deterministic.

The executor is deliberately run-scoped: ``with ShardedExecutor(state, ...)``
forks the pool, runs the shards, and tears the pool down.  Workers never
outlive the run, so mutable caches built inside a worker can never leak into
a later computation.  An executor is also single-use: once exited it is
closed, and both re-entering and mapping raise instead of silently running
inline.

**Fault tolerance.**  ``map_shards`` no longer assumes a healthy pool.  A
shard that fails — its worker function raised, its worker process died
(detected by checking each shard's announced worker pid against the pool's
live workers while the result is pending), or the submission-time deadline
expired — is retried in the pool
up to ``max_shard_retries`` times with exponential backoff, and when the
pool cannot produce it the shard is re-run *serially inline* in the parent
process against the same shared state.  Because every sharded engine is
deterministic per row range, the inline re-run yields exactly the bytes the
pool would have, so a flaky pool still produces the byte-identical merged
result.  When the fallback is disabled (``serial_fallback=False``) the
failure surfaces as the typed taxonomy of :mod:`repro.parallel.errors`
(:class:`ShardError` / :class:`WorkerCrashError` /
:class:`ShardTimeoutError`) instead of a bare pool exception.
``task_timeout`` is a *deadline for the whole map*: it is converted to a
monotonic deadline once at submission, and every wait consumes the
remaining time.

Shard dispatch runs through :func:`_run_shard`, which consults the
deterministic fault-injection hook of :mod:`repro.testing.faults` when
``REPRO_FAULT_INJECT`` is set — the chaos tests use it to kill, hang, or
raise inside real workers and assert the recovery paths above end-to-end.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable, Sequence
from typing import Any

from repro.parallel.errors import (
    DeadlineExceededError,
    ShardError,
    ShardTimeoutError,
    WorkerCrashError,
)

#: Distinct "not installed" marker, so that None remains a valid shared state.
_STATE_NOT_INSTALLED: Any = object()

#: Read-only state installed into each worker process by the pool initializer.
_WORKER_STATE: Any = _STATE_NOT_INSTALLED

#: True only in pool worker processes (set by the pool initializer, which
#: runs in the children).  The parent's inline paths leave it False — the
#: fault-injection hook uses the distinction to target pool workers only,
#: so the serial fallback provably recovers.
_IN_POOL_WORKER = False

#: In pool workers: the queue on which :func:`_run_shard` announces
#: ``(shard_index, pid)`` before executing a shard.  The parent uses these
#: start events to attribute a dead worker's pid to exactly the shard it
#: held — the one task a ``multiprocessing.Pool`` silently loses on a worker
#: death.  ``None`` in the parent and in inline runs.
_START_EVENTS: Any = None

#: Environment variable of :mod:`repro.testing.faults`, duplicated here so
#: the zero-cost guard in :func:`_run_shard` needs no import when unset.
_FAULT_ENV = "REPRO_FAULT_INJECT"


def _install_worker_state(state: Any) -> None:
    """Stash the shared read-only state (worker process or inline run)."""
    global _WORKER_STATE
    _WORKER_STATE = state


def _pool_initializer(state: Any, start_events: Any) -> None:
    """Pool initializer: install the state and mark this process a worker."""
    global _IN_POOL_WORKER, _START_EVENTS
    _IN_POOL_WORKER = True
    _START_EVENTS = start_events
    _install_worker_state(state)


def _run_shard(worker: Callable[[int, int], Any], shard_index: int, start: int, stop: int) -> Any:
    """Dispatch one shard to *worker*, consulting the fault-injection hook.

    This is the single entry point every shard execution goes through — pool
    tasks, inline single-worker runs, and serial fallback re-runs alike — so
    an injected fault fires at exactly the same point a real failure would.
    In a pool worker the shard is announced on the start-event queue first:
    a crash after this point (injected or real) leaves the parent a record
    of which shard died with the worker.  The fault hook costs one
    environment lookup when unset.
    """
    if _START_EVENTS is not None:
        _START_EVENTS.put((shard_index, os.getpid()))
    if os.environ.get(_FAULT_ENV):
        from repro.testing.faults import maybe_inject

        maybe_inject(shard_index, in_pool_worker=_IN_POOL_WORKER)
    return worker(start, stop)


def worker_state() -> Any:
    """The shared state of the current worker process.

    Raises ``RuntimeError`` when called outside a :class:`ShardedExecutor`
    worker (i.e. before the pool initializer ran).
    """
    if _WORKER_STATE is _STATE_NOT_INSTALLED:
        raise RuntimeError(
            "no shared worker state installed; worker functions must run "
            "inside a ShardedExecutor pool"
        )
    return _WORKER_STATE


def resolve_num_workers(num_workers: int) -> int:
    """Resolve a ``num_workers`` knob to an actual worker count.

    ``0`` means "all cores" (``os.cpu_count()``); positive values are taken
    literally; negative values are rejected.
    """
    if num_workers < 0:
        raise ValueError(f"num_workers must be >= 0, got {num_workers}")
    if num_workers == 0:
        return os.cpu_count() or 1
    return num_workers


def env_default_workers(default: int = 1) -> int:
    """The default worker count, overridable via ``REPRO_NUM_WORKERS``.

    The configuration dataclasses use this as their ``num_workers`` default
    factory, so an entire run (CLI, tests, benchmarks) can be switched to a
    sharded configuration without touching call sites — CI uses it to run the
    tier-1 suite with two workers.  Unset or empty means *default* (serial);
    the value follows :func:`resolve_num_workers` semantics (0 = all cores).
    """
    value = os.environ.get("REPRO_NUM_WORKERS", "").strip()
    if not value:
        return default
    try:
        workers = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_NUM_WORKERS must be an integer, got {value!r}"
        ) from None
    if workers < 0:
        raise ValueError(f"REPRO_NUM_WORKERS must be >= 0, got {workers}")
    return workers


#: Default small-input threshold: a worker must have at least this many items
#: to be worth forking.  The value is deliberately coarse — at the measured
#: ~1 ms/row of the batched coverage walk it corresponds to ~0.25 s of work
#: per worker, comfortably above pool start-up plus dispatch overhead.
DEFAULT_MIN_ITEMS_PER_WORKER = 256


def env_min_items_per_worker(default: int = DEFAULT_MIN_ITEMS_PER_WORKER) -> int:
    """The small-input threshold, overridable via ``REPRO_MIN_ROWS_PER_WORKER``.

    ``0`` disables the small-input fast path entirely (the equivalence tests
    and the sharded CI job use it so tiny inputs still exercise real pools).
    """
    value = os.environ.get("REPRO_MIN_ROWS_PER_WORKER", "").strip()
    if not value:
        return default
    try:
        threshold = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_MIN_ROWS_PER_WORKER must be an integer, got {value!r}"
        ) from None
    if threshold < 0:
        raise ValueError(
            f"REPRO_MIN_ROWS_PER_WORKER must be >= 0, got {threshold}"
        )
    return threshold


#: Tier-aware counterpart of :data:`DEFAULT_MIN_ITEMS_PER_WORKER`: under the
#: numpy kernel tier a row costs a fraction of the python tier's (the
#: vectorized walkers amortize numpy's per-call overhead across whole
#: blocks), so a worker needs proportionally more rows before forking pays.
NUMPY_MIN_ITEMS_PER_WORKER = 1024


def tier_min_items_per_worker() -> int:
    """The small-input threshold the sharded engines actually use.

    ``REPRO_MIN_ROWS_PER_WORKER`` always wins when set (including ``0`` =
    tuning disabled).  Unset, the default scales with the active kernel
    tier — :data:`DEFAULT_MIN_ITEMS_PER_WORKER` rows per worker on the
    pure-Python tier, :data:`NUMPY_MIN_ITEMS_PER_WORKER` on the numpy tier
    — so ``num_workers=0`` ("all cores") auto-tunes to a pool only when
    the per-worker slice is worth a fork *at the speed rows actually run*.
    """
    if os.environ.get("REPRO_MIN_ROWS_PER_WORKER", "").strip():
        return env_min_items_per_worker()
    from repro import kernels  # noqa: PLC0415

    if kernels.active_tier() == "numpy":
        return NUMPY_MIN_ITEMS_PER_WORKER
    return DEFAULT_MIN_ITEMS_PER_WORKER


def tuned_num_workers(
    num_workers: int,
    num_items: int,
    *,
    min_items_per_worker: int | None = None,
) -> int:
    """Resolve a worker knob against the actual input size.

    This is the small-input fast path of the sharded engines: forking a pool
    costs milliseconds and every shard adds dispatch overhead, so when the
    work per worker is too small (or the host has a single core, where a
    pool can only add overhead) the request is scaled down — to fewer
    workers, or to 1, meaning the caller takes its serial path and no pool
    is spawned.  Purely a scheduling decision: results are identical for
    every worker count.

    ``min_items_per_worker=None`` reads :func:`tier_min_items_per_worker`
    (environment first, then a kernel-tier-scaled default); ``0`` (or any
    non-positive threshold) disables the tuning and returns the resolved
    worker count clamped to ``num_items`` only.
    """
    workers = min(resolve_num_workers(num_workers), max(num_items, 1))
    if workers <= 1:
        return workers
    if min_items_per_worker is None:
        min_items_per_worker = tier_min_items_per_worker()
    if min_items_per_worker <= 0:
        return workers
    if (os.cpu_count() or 1) <= 1:
        return 1
    if num_items < workers * min_items_per_worker:
        workers = max(1, num_items // min_items_per_worker)
    return workers


def default_start_method() -> str:
    """The multiprocessing start method sharded engines use.

    Prefers ``fork`` (state is shared copy-on-write, pool start-up is
    milliseconds); falls back to ``spawn`` elsewhere.  The environment
    variable ``REPRO_START_METHOD`` forces a specific method — the
    equivalence tests use it to exercise the pickle-once fallback on
    platforms whose default is fork.
    """
    override = os.environ.get("REPRO_START_METHOD", "").strip()
    available = multiprocessing.get_all_start_methods()
    if override:
        if override not in available:
            raise ValueError(
                f"REPRO_START_METHOD={override!r} is not available on this "
                f"platform; choices: {available}"
            )
        return override
    return "fork" if "fork" in available else "spawn"


def shard_plan(num_items: int, num_workers: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` shards covering ``range(num_items)``.

    A guided, decreasing schedule: each shard takes ``remaining / (2 *
    workers)`` items (at least one), so early shards are large (low dispatch
    overhead) and the tail is fine-grained (good load balance when per-row
    cost is skewed).  Shards are contiguous, ascending and exhaustive — the
    plan only affects scheduling, never results.
    """
    if num_items < 0:
        raise ValueError(f"num_items must be >= 0, got {num_items}")
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    denominator = 2 * num_workers
    shards: list[tuple[int, int]] = []
    start = 0
    while start < num_items:
        remaining = num_items - start
        size = remaining // denominator
        if size < 1:
            size = 1
        shards.append((start, start + size))
        start += size
    return shards


#: Default number of *additional* pool attempts for a failed shard.
DEFAULT_MAX_SHARD_RETRIES = 2

#: Default base of the exponential retry backoff, in seconds.
DEFAULT_RETRY_BACKOFF_S = 0.05

#: How often the parent wakes to check the deadline and worker health while a
#: shard result is pending.  Coarse on purpose: one wake per interval per
#: *pending* shard is the entire polling cost of crash detection.
_POLL_INTERVAL_S = 0.05


class ShardedExecutor:
    """A run-scoped, fault-tolerant process pool sharing read-only state.

    Parameters
    ----------
    state:
        Arbitrary read-only object made available to worker functions via
        :func:`worker_state`.  Shared copy-on-write under fork; pickled once
        per worker under spawn/forkserver.
    num_workers:
        Pool size (already resolved; must be >= 1).  With exactly one
        worker no pool is spawned at all — the shards run inline in the
        current process (the small-input fast path; see
        :func:`tuned_num_workers`).
    start_method:
        Multiprocessing start method; defaults to
        :func:`default_start_method`.
    task_timeout:
        Optional wall-clock budget in seconds for one whole ``map_shards``
        call.  Converted to a monotonic deadline at submission; every wait
        consumes the remaining time, and expiry surfaces as
        :class:`~repro.parallel.errors.ShardTimeoutError` (or, with the
        serial fallback enabled, triggers an inline re-run of the shards the
        pool did not deliver in time).
    max_shard_retries:
        How many *additional* pool attempts a failed shard gets before the
        executor falls back (or raises).  Retries back off exponentially
        from ``retry_backoff_s``.  Timeouts are never retried — the deadline
        that expired for attempt one has expired for attempt two as well.
    retry_backoff_s:
        Base sleep before pool retry *n* (``retry_backoff_s * 2**(n-1)``),
        clamped to the remaining deadline.
    serial_fallback:
        When True (the default), a shard the pool cannot produce — retries
        exhausted, worker crashed, or deadline expired — is recomputed
        serially inline in the parent process, preserving the byte-identical
        merged result.  When False the typed error is raised instead.
    """

    def __init__(
        self,
        state: Any,
        *,
        num_workers: int,
        start_method: str | None = None,
        task_timeout: float | None = None,
        max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
        serial_fallback: bool = True,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        if max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must be >= 0, got {max_shard_retries}"
            )
        if retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {retry_backoff_s}"
            )
        self._state = state
        self._num_workers = num_workers
        self._start_method = start_method or default_start_method()
        self._task_timeout = task_timeout
        self._max_shard_retries = max_shard_retries
        self._retry_backoff_s = retry_backoff_s
        self._serial_fallback = serial_fallback
        self._pool: multiprocessing.pool.Pool | None = None
        self._entered = False
        self._closed = False
        self._degraded = False
        # Crash-attribution bookkeeping (pool path only): which worker pid
        # last started each shard, and which shards are known lost because
        # their worker vanished mid-task.
        self._start_events: Any = None
        self._started: dict[int, int] = {}
        self._lost_shards: set[int] = set()

    @property
    def num_workers(self) -> int:
        """The pool size."""
        return self._num_workers

    @property
    def start_method(self) -> str:
        """The start method the pool is created with."""
        return self._start_method

    @property
    def degraded(self) -> bool:
        """Whether any shard needed a retry or the serial fallback."""
        return self._degraded

    def __enter__(self) -> "ShardedExecutor":
        if self._closed:
            raise RuntimeError(
                "ShardedExecutor is single-use: this executor was already "
                "exited; construct a new one"
            )
        if self._entered:
            raise RuntimeError("ShardedExecutor is already entered")
        if self._num_workers == 1:
            # Small-input fast path: one worker needs no pool at all — the
            # shards run inline in this process, against the same shared
            # state, with identical results and none of the fork cost.
            self._entered = True
            return self
        context = multiprocessing.get_context(self._start_method)
        self._start_events = context.SimpleQueue()
        self._pool = context.Pool(
            processes=self._num_workers,
            initializer=_pool_initializer,
            initargs=(self._state, self._start_events),
        )
        self._entered = True
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._entered = False
        self._closed = True
        pool = self._pool
        self._pool = None
        events = self._start_events
        self._start_events = None
        if pool is None:
            return
        if exc_type is None and not self._degraded:
            pool.close()
        else:
            # A failed run must not leave workers grinding through the
            # remaining shards — and after a degraded run a worker may still
            # be hung on an abandoned task, which close()+join() would wait
            # on forever.
            pool.terminate()
        pool.join()
        if events is not None:
            events.close()

    def map_shards(self, worker: Callable[[int, int], Any], num_items: int) -> list[Any]:
        """Run ``worker(start, stop)`` over every shard of ``range(num_items)``.

        All shards are submitted up front; idle workers pull the next shard
        from the shared queue (the work-stealing behaviour).  Results are
        returned in shard order regardless of completion order, so callers
        can merge deterministically.  With one worker the shards run inline
        (no pool was spawned); the shared state is installed for the
        duration so worker functions behave identically.

        ``task_timeout`` bounds this whole call via a single submission-time
        deadline.  Failed shards are retried and, with ``serial_fallback``
        enabled, recomputed inline — see the class docstring for the full
        recovery contract.
        """
        if self._closed:
            raise RuntimeError(
                "ShardedExecutor is single-use: this executor was already "
                "exited; construct a new one"
            )
        if not getattr(self, "_entered", False):
            raise RuntimeError("ShardedExecutor must be entered before use")
        shards = shard_plan(num_items, self._num_workers)
        deadline = (
            time.monotonic() + self._task_timeout
            if self._task_timeout is not None
            else None
        )
        if self._pool is None:
            return [
                self._run_inline(worker, index, shard)
                for index, shard in enumerate(shards)
            ]
        pending = [
            self._pool.apply_async(_run_shard, (worker, index, start, stop))
            for index, (start, stop) in enumerate(shards)
        ]
        return [
            self._collect_shard(worker, index, shard, result, deadline)
            for index, (shard, result) in enumerate(zip(shards, pending))
        ]

    # ------------------------------------------------------------------
    # Recovery machinery
    # ------------------------------------------------------------------

    def _worker_pids(self) -> tuple[int, ...]:
        """A stable snapshot of the pool's current worker pids.

        Reads the pool's private ``_pool`` process list — there is no public
        API for worker identity, and pid churn is the only signal a
        ``multiprocessing.Pool`` gives for a worker death: a killed worker is
        silently replaced by ``Pool._maintain_pool`` while its in-flight task
        is lost forever.  The getattr guard keeps this degrading to "no crash
        detection" rather than an AttributeError if the internals shift.
        """
        pool = self._pool
        processes = getattr(pool, "_pool", None) if pool is not None else None
        if not processes:
            return ()
        return tuple(sorted(p.pid for p in processes if p.pid is not None))

    def _note_worker_deaths(self) -> None:
        """Fold fresh start events into the lost-shard set.

        Drains the start-event queue (``shard index -> last starting pid``),
        then checks every announced pid against the pool's *live* workers.
        An announced pid that is no longer alive means its shard died with
        its worker — the lost-task condition a ``multiprocessing.Pool``
        never reports (``_maintain_pool`` quietly replaces the dead worker
        and the task simply never completes).  The check deliberately avoids
        diffing live-pid snapshots: workers that crash and are replaced
        *between* two polls would appear in neither snapshot and their
        shards would hang undetected.  A dead pid can also mark shards the
        worker already finished; the ``result.ready()`` guard at the
        consumer keeps those from being treated as lost.  Attribution is
        per-shard, so a crash on one shard cannot be charged to a different
        shard that is merely slow.
        """
        events = self._start_events
        if events is not None:
            while not events.empty():
                shard_index, pid = events.get()
                self._started[shard_index] = pid
        alive = set(self._worker_pids())
        if not alive:
            # Either the pool internals became unreadable (degrade to "no
            # crash detection") or every worker is momentarily dead awaiting
            # replacement — the next poll tick sees the replacements.
            return
        for shard_index, pid in self._started.items():
            if pid not in alive:
                self._lost_shards.add(shard_index)

    def _await_result(
        self,
        result: multiprocessing.pool.AsyncResult,
        index: int,
        shard: tuple[int, int],
        attempts: int,
        deadline: float | None,
    ) -> Any:
        """Wait for one pool result, policing the deadline and worker health.

        Wakes every ``_POLL_INTERVAL_S`` to (a) fail fast with
        :class:`ShardTimeoutError` once the submission-time deadline passes
        and (b) update the death bookkeeping — a shard attributed to a dead
        worker and still unready raises :class:`WorkerCrashError` instead of
        waiting forever on a task the pool has silently lost.
        """
        while True:
            wait = _POLL_INTERVAL_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardTimeoutError(
                        f"shard {shard[0]}:{shard[1]} missed the "
                        f"{self._task_timeout}s map deadline",
                        shard=shard,
                        attempts=attempts,
                    )
                wait = min(wait, remaining)
            try:
                return result.get(wait)
            except multiprocessing.TimeoutError:
                self._note_worker_deaths()
                if index in self._lost_shards and not result.ready():
                    # Consume the flag: the retry will re-announce itself.
                    self._lost_shards.discard(index)
                    raise WorkerCrashError(
                        f"a pool worker died holding shard "
                        f"{shard[0]}:{shard[1]}",
                        shard=shard,
                        attempts=attempts,
                    ) from None
                self._lost_shards.discard(index)

    def _collect_shard(
        self,
        worker: Callable[[int, int], Any],
        index: int,
        shard: tuple[int, int],
        result: multiprocessing.pool.AsyncResult,
        deadline: float | None,
    ) -> Any:
        """Produce one shard's result, whatever it takes.

        Attempt order: the original submission, then up to
        ``max_shard_retries`` fresh pool submissions with exponential
        backoff (crashes and worker exceptions only — an expired deadline is
        not retried), then the serial inline fallback.  With the fallback
        disabled, the last typed error is raised instead.
        """
        attempts = 0
        error: ShardError | None = None
        while True:
            attempts += 1
            try:
                return self._await_result(result, index, shard, attempts, deadline)
            except ShardTimeoutError as exc:
                self._degraded = True
                error = exc
                break
            except WorkerCrashError as exc:
                self._degraded = True
                error = exc
            except Exception as exc:  # noqa: BLE001 — worker exception, re-raised by get()
                self._degraded = True
                error = ShardError(
                    f"shard {shard[0]}:{shard[1]} worker raised "
                    f"{type(exc).__name__}: {exc}",
                    shard=shard,
                    attempts=attempts,
                    cause=exc,
                )
                error.__cause__ = exc
                if isinstance(exc, DeadlineExceededError):
                    # Deterministic, like a map timeout: the cooperative
                    # deadline the worker hit cannot un-expire, so retries
                    # (and backoff sleeps) would only delay the failure.
                    break
            if attempts > self._max_shard_retries:
                break
            backoff = self._retry_backoff_s * (2 ** (attempts - 1))
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                backoff = min(backoff, remaining)
            if backoff > 0:
                time.sleep(backoff)
            # Drop the dead attempt's attribution before resubmitting, or
            # the stale pid would mark the retry lost before its own start
            # event arrives.
            self._started.pop(index, None)
            result = self._pool.apply_async(
                _run_shard, (worker, index, shard[0], shard[1])
            )
        if self._serial_fallback:
            return self._run_inline(worker, index, shard, pool_error=error)
        assert error is not None
        raise error

    def _run_inline(
        self,
        worker: Callable[[int, int], Any],
        index: int,
        shard: tuple[int, int],
        pool_error: ShardError | None = None,
    ) -> Any:
        """Run one shard serially in this process against the shared state.

        Serves both the single-worker fast path and the fallback of last
        resort after pool recovery fails.  The previous ``_WORKER_STATE`` is
        always restored, so nested executors and outer inline runs are
        unaffected even when the worker raises.  An inline failure is
        terminal and surfaces as :class:`ShardError` carrying the pool
        attempt count and the inline exception as its cause.
        """
        global _WORKER_STATE
        previous = _WORKER_STATE
        _install_worker_state(self._state)
        try:
            return _run_shard(worker, index, shard[0], shard[1])
        except Exception as exc:
            attempts = pool_error.attempts if pool_error is not None else 0
            raise ShardError(
                f"shard {shard[0]}:{shard[1]} failed inline after "
                f"{attempts} pool attempt(s): {type(exc).__name__}: {exc}",
                shard=shard,
                attempts=attempts,
                cause=exc,
            ) from exc
        finally:
            _WORKER_STATE = previous


def map_sharded(
    state: Any,
    worker: Callable[[int, int], Any],
    num_items: int,
    *,
    num_workers: int,
    start_method: str | None = None,
    task_timeout: float | None = None,
    max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
    retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    serial_fallback: bool = True,
) -> list[Any]:
    """One-shot convenience: pool up, map the shards, tear the pool down."""
    executor = ShardedExecutor(
        state,
        num_workers=num_workers,
        start_method=start_method,
        task_timeout=task_timeout,
        max_shard_retries=max_shard_retries,
        retry_backoff_s=retry_backoff_s,
        serial_fallback=serial_fallback,
    )
    with executor:
        return executor.map_shards(worker, num_items)


__all__: Sequence[str] = (
    "DEFAULT_MAX_SHARD_RETRIES",
    "DEFAULT_MIN_ITEMS_PER_WORKER",
    "DEFAULT_RETRY_BACKOFF_S",
    "NUMPY_MIN_ITEMS_PER_WORKER",
    "ShardError",
    "ShardTimeoutError",
    "ShardedExecutor",
    "WorkerCrashError",
    "default_start_method",
    "env_default_workers",
    "env_min_items_per_worker",
    "map_sharded",
    "resolve_num_workers",
    "shard_plan",
    "tier_min_items_per_worker",
    "tuned_num_workers",
    "worker_state",
)
