"""The shared-index process executor behind the sharded engines.

Both hot stages of the pipeline — batched coverage and row matching — are
embarrassingly parallel over rows, but the read-only structures they walk
(the frozen unit-prefix trie, the packed
:class:`~repro.matching.index.InvertedIndex`) are large, and shipping them
with every task would drown the win in serialization.  The
:class:`ShardedExecutor` therefore shares that state with the pool exactly
once per run:

* **fork** (the default wherever available): the state is handed to the pool
  initializer *before* the children are forked, so every worker inherits the
  parent's objects through copy-on-write memory — nothing is pickled at all;
* **spawn / forkserver** (the fallback for platforms without fork): the same
  initializer arguments are pickled once per worker process at pool start-up,
  never per task.

Tasks themselves are tiny ``(start, stop)`` row ranges.  The shard plan is a
guided, decreasing schedule (early shards large, tail shards small) and the
pool's shared task queue hands shards to whichever worker goes idle first, so
a slow shard steals less total wall-clock than static splitting would.
Results are collected in submission order, which keeps every sharded engine's
merge deterministic.

The executor is deliberately run-scoped: ``with ShardedExecutor(state, ...)``
forks the pool, runs the shards, and tears the pool down.  Workers never
outlive the run, so mutable caches built inside a worker can never leak into
a later computation.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from typing import Any

#: Distinct "not installed" marker, so that None remains a valid shared state.
_STATE_NOT_INSTALLED: Any = object()

#: Read-only state installed into each worker process by the pool initializer.
_WORKER_STATE: Any = _STATE_NOT_INSTALLED


def _install_worker_state(state: Any) -> None:
    """Pool initializer: stash the shared read-only state in the worker."""
    global _WORKER_STATE
    _WORKER_STATE = state


def worker_state() -> Any:
    """The shared state of the current worker process.

    Raises ``RuntimeError`` when called outside a :class:`ShardedExecutor`
    worker (i.e. before the pool initializer ran).
    """
    if _WORKER_STATE is _STATE_NOT_INSTALLED:
        raise RuntimeError(
            "no shared worker state installed; worker functions must run "
            "inside a ShardedExecutor pool"
        )
    return _WORKER_STATE


def resolve_num_workers(num_workers: int) -> int:
    """Resolve a ``num_workers`` knob to an actual worker count.

    ``0`` means "all cores" (``os.cpu_count()``); positive values are taken
    literally; negative values are rejected.
    """
    if num_workers < 0:
        raise ValueError(f"num_workers must be >= 0, got {num_workers}")
    if num_workers == 0:
        return os.cpu_count() or 1
    return num_workers


def env_default_workers(default: int = 1) -> int:
    """The default worker count, overridable via ``REPRO_NUM_WORKERS``.

    The configuration dataclasses use this as their ``num_workers`` default
    factory, so an entire run (CLI, tests, benchmarks) can be switched to a
    sharded configuration without touching call sites — CI uses it to run the
    tier-1 suite with two workers.  Unset or empty means *default* (serial);
    the value follows :func:`resolve_num_workers` semantics (0 = all cores).
    """
    value = os.environ.get("REPRO_NUM_WORKERS", "").strip()
    if not value:
        return default
    try:
        workers = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_NUM_WORKERS must be an integer, got {value!r}"
        ) from None
    if workers < 0:
        raise ValueError(f"REPRO_NUM_WORKERS must be >= 0, got {workers}")
    return workers


#: Default small-input threshold: a worker must have at least this many items
#: to be worth forking.  The value is deliberately coarse — at the measured
#: ~1 ms/row of the batched coverage walk it corresponds to ~0.25 s of work
#: per worker, comfortably above pool start-up plus dispatch overhead.
DEFAULT_MIN_ITEMS_PER_WORKER = 256


def env_min_items_per_worker(default: int = DEFAULT_MIN_ITEMS_PER_WORKER) -> int:
    """The small-input threshold, overridable via ``REPRO_MIN_ROWS_PER_WORKER``.

    ``0`` disables the small-input fast path entirely (the equivalence tests
    and the sharded CI job use it so tiny inputs still exercise real pools).
    """
    value = os.environ.get("REPRO_MIN_ROWS_PER_WORKER", "").strip()
    if not value:
        return default
    try:
        threshold = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_MIN_ROWS_PER_WORKER must be an integer, got {value!r}"
        ) from None
    if threshold < 0:
        raise ValueError(
            f"REPRO_MIN_ROWS_PER_WORKER must be >= 0, got {threshold}"
        )
    return threshold


def tuned_num_workers(
    num_workers: int,
    num_items: int,
    *,
    min_items_per_worker: int | None = None,
) -> int:
    """Resolve a worker knob against the actual input size.

    This is the small-input fast path of the sharded engines: forking a pool
    costs milliseconds and every shard adds dispatch overhead, so when the
    work per worker is too small (or the host has a single core, where a
    pool can only add overhead) the request is scaled down — to fewer
    workers, or to 1, meaning the caller takes its serial path and no pool
    is spawned.  Purely a scheduling decision: results are identical for
    every worker count.

    ``min_items_per_worker=None`` reads :func:`env_min_items_per_worker`;
    ``0`` (or any non-positive threshold) disables the tuning and returns
    the resolved worker count clamped to ``num_items`` only.
    """
    workers = min(resolve_num_workers(num_workers), max(num_items, 1))
    if workers <= 1:
        return workers
    if min_items_per_worker is None:
        min_items_per_worker = env_min_items_per_worker()
    if min_items_per_worker <= 0:
        return workers
    if (os.cpu_count() or 1) <= 1:
        return 1
    if num_items < workers * min_items_per_worker:
        workers = max(1, num_items // min_items_per_worker)
    return workers


def default_start_method() -> str:
    """The multiprocessing start method sharded engines use.

    Prefers ``fork`` (state is shared copy-on-write, pool start-up is
    milliseconds); falls back to ``spawn`` elsewhere.  The environment
    variable ``REPRO_START_METHOD`` forces a specific method — the
    equivalence tests use it to exercise the pickle-once fallback on
    platforms whose default is fork.
    """
    override = os.environ.get("REPRO_START_METHOD", "").strip()
    available = multiprocessing.get_all_start_methods()
    if override:
        if override not in available:
            raise ValueError(
                f"REPRO_START_METHOD={override!r} is not available on this "
                f"platform; choices: {available}"
            )
        return override
    return "fork" if "fork" in available else "spawn"


def shard_plan(num_items: int, num_workers: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` shards covering ``range(num_items)``.

    A guided, decreasing schedule: each shard takes ``remaining / (2 *
    workers)`` items (at least one), so early shards are large (low dispatch
    overhead) and the tail is fine-grained (good load balance when per-row
    cost is skewed).  Shards are contiguous, ascending and exhaustive — the
    plan only affects scheduling, never results.
    """
    if num_items < 0:
        raise ValueError(f"num_items must be >= 0, got {num_items}")
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    denominator = 2 * num_workers
    shards: list[tuple[int, int]] = []
    start = 0
    while start < num_items:
        remaining = num_items - start
        size = remaining // denominator
        if size < 1:
            size = 1
        shards.append((start, start + size))
        start += size
    return shards


class ShardedExecutor:
    """A run-scoped process pool sharing read-only state with its workers.

    Parameters
    ----------
    state:
        Arbitrary read-only object made available to worker functions via
        :func:`worker_state`.  Shared copy-on-write under fork; pickled once
        per worker under spawn/forkserver.
    num_workers:
        Pool size (already resolved; must be >= 1).  With exactly one
        worker no pool is spawned at all — the shards run inline in the
        current process (the small-input fast path; see
        :func:`tuned_num_workers`).
    start_method:
        Multiprocessing start method; defaults to
        :func:`default_start_method`.
    task_timeout:
        Optional per-shard timeout in seconds; a worker exceeding it raises
        ``multiprocessing.TimeoutError`` in the parent instead of hanging the
        run forever (CI additionally applies a job-level timeout).
    """

    def __init__(
        self,
        state: Any,
        *,
        num_workers: int,
        start_method: str | None = None,
        task_timeout: float | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self._state = state
        self._num_workers = num_workers
        self._start_method = start_method or default_start_method()
        self._task_timeout = task_timeout
        self._pool: multiprocessing.pool.Pool | None = None
        self._entered = False

    @property
    def num_workers(self) -> int:
        """The pool size."""
        return self._num_workers

    @property
    def start_method(self) -> str:
        """The start method the pool is created with."""
        return self._start_method

    def __enter__(self) -> "ShardedExecutor":
        if self._num_workers == 1:
            # Small-input fast path: one worker needs no pool at all — the
            # shards run inline in this process, against the same shared
            # state, with identical results and none of the fork cost.
            self._entered = True
            return self
        context = multiprocessing.get_context(self._start_method)
        self._pool = context.Pool(
            processes=self._num_workers,
            initializer=_install_worker_state,
            initargs=(self._state,),
        )
        self._entered = True
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._entered = False
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        if exc_type is None:
            pool.close()
        else:
            # A failed run must not leave workers grinding through the
            # remaining shards.
            pool.terminate()
        pool.join()

    def map_shards(self, worker: Callable[[int, int], Any], num_items: int) -> list[Any]:
        """Run ``worker(start, stop)`` over every shard of ``range(num_items)``.

        All shards are submitted up front; idle workers pull the next shard
        from the shared queue (the work-stealing behaviour).  Results are
        returned in shard order regardless of completion order, so callers
        can merge deterministically.  With one worker the shards run inline
        (no pool was spawned); the shared state is installed for the
        duration so worker functions behave identically.
        """
        if not getattr(self, "_entered", False):
            raise RuntimeError("ShardedExecutor must be entered before use")
        shards = shard_plan(num_items, self._num_workers)
        if self._pool is None:
            global _WORKER_STATE
            previous = _WORKER_STATE
            _install_worker_state(self._state)
            try:
                return [worker(start, stop) for start, stop in shards]
            finally:
                _WORKER_STATE = previous
        pending = [self._pool.apply_async(worker, shard) for shard in shards]
        return [result.get(self._task_timeout) for result in pending]


def map_sharded(
    state: Any,
    worker: Callable[[int, int], Any],
    num_items: int,
    *,
    num_workers: int,
    start_method: str | None = None,
    task_timeout: float | None = None,
) -> list[Any]:
    """One-shot convenience: pool up, map the shards, tear the pool down."""
    executor = ShardedExecutor(
        state,
        num_workers=num_workers,
        start_method=start_method,
        task_timeout=task_timeout,
    )
    with executor:
        return executor.map_shards(worker, num_items)


__all__: Sequence[str] = (
    "DEFAULT_MIN_ITEMS_PER_WORKER",
    "ShardedExecutor",
    "default_start_method",
    "env_default_workers",
    "env_min_items_per_worker",
    "map_sharded",
    "resolve_num_workers",
    "shard_plan",
    "tuned_num_workers",
    "worker_state",
)
