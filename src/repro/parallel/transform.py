"""Process-sharded batch transformation (the apply-only path).

The apply kernel of :mod:`repro.model.apply` walks the frozen unit-prefix
trie once per source row, and every structure it touches — the unit-output
memo, the split caches, the accumulated output prefixes — is per-row, so
sharding rows across processes cannot change any output.  The
:class:`~repro.core.coverage.PackedTrie` is compiled once in the parent and
shared with the workers through the
:class:`~repro.parallel.executor.ShardedExecutor` (copy-on-write under
fork, pickled once per worker under spawn); each task is a ``(start,
stop)`` row range.

The merge is order-preserving: shard results come back in ascending shard
order and each transformation's ``(row, output)`` list is extended shard by
shard, so the merged per-transformation outputs are in the same ascending
row order as the serial kernel — byte-identical results, any worker count.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.coverage import PackedTrie
from repro.model.apply import transform_trie_rows
from repro.parallel.executor import (
    DEFAULT_MAX_SHARD_RETRIES,
    ShardedExecutor,
    worker_state,
)


class TransformShardState:
    """Read-only state shared with transform workers: values + frozen trie."""

    __slots__ = ("values", "trie")

    def __init__(self, values: list[str], trie: PackedTrie) -> None:
        self.values = values
        self.trie = trie

    def __getstate__(self):
        return (self.values, self.trie)

    def __setstate__(self, state) -> None:
        self.values, self.trie = state


def _transform_worker(start: int, stop: int) -> dict[int, list[tuple[int, str]]]:
    """Transform the shared values in ``[start, stop)`` (global row ids)."""
    state: TransformShardState = worker_state()
    return transform_trie_rows(state.values[start:stop], start, state.trie)


def sharded_transform(
    values: Sequence[str],
    trie: PackedTrie,
    *,
    num_workers: int,
    start_method: str | None = None,
    task_timeout: float | None = None,
    max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
    serial_fallback: bool = True,
) -> dict[int, list[tuple[int, str]]]:
    """Apply the trie's transformations to *values*, sharded by row.

    Returns the same mapping as
    :func:`~repro.model.apply.transform_trie_rows` over all rows —
    byte-identical to the serial kernel.  ``task_timeout``/
    ``max_shard_retries``/``serial_fallback`` configure the executor's
    recovery behaviour.
    """
    state = TransformShardState(list(values), trie)
    outputs: dict[int, list[tuple[int, str]]] = {}
    executor = ShardedExecutor(
        state,
        num_workers=num_workers,
        start_method=start_method,
        task_timeout=task_timeout,
        max_shard_retries=max_shard_retries,
        serial_fallback=serial_fallback,
    )
    with executor:
        for shard_outputs in executor.map_shards(
            _transform_worker, len(state.values)
        ):
            for index, pairs in shard_outputs.items():
                existing = outputs.get(index)
                if existing is None:
                    outputs[index] = pairs
                else:
                    existing.extend(pairs)
    return outputs


__all__ = ["TransformShardState", "sharded_transform"]
