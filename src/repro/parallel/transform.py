"""Process-sharded batch transformation (the apply-only path).

The apply kernel of :mod:`repro.model.apply` walks the frozen unit-prefix
trie once per source row, and every structure it touches — the unit-output
memo, the split caches, the accumulated output prefixes — is per-row, so
sharding rows across processes cannot change any output.  The
:class:`~repro.core.coverage.PackedTrie` is compiled once in the parent and
shared with the workers through the
:class:`~repro.parallel.executor.ShardedExecutor` (copy-on-write under
fork, pickled once per worker under spawn); each task is a ``(start,
stop)`` row range.

The merge is order-preserving: shard results come back in ascending shard
order and each transformation's ``(row, output)`` list is extended shard by
shard, so the merged per-transformation outputs are in the same ascending
row order as the serial kernel — byte-identical results, any worker count.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.coverage import PackedTrie
from repro.model.apply import transform_trie_rows
from repro.parallel.executor import (
    DEFAULT_MAX_SHARD_RETRIES,
    ShardedExecutor,
    worker_state,
)


class TransformShardState:
    """Read-only state shared with transform workers: values + frozen trie.

    ``deadline`` is an optional ``time.monotonic()`` timestamp computed in
    the parent; ``CLOCK_MONOTONIC`` is system-wide, so workers compare it
    against their own clock to stop cooperatively at the next block
    boundary (see :func:`~repro.model.apply.transform_trie_rows`).
    """

    __slots__ = ("values", "trie", "deadline")

    def __init__(
        self,
        values: list[str],
        trie: PackedTrie,
        deadline: float | None = None,
    ) -> None:
        self.values = values
        self.trie = trie
        self.deadline = deadline

    def __getstate__(self):
        return (self.values, self.trie, self.deadline)

    def __setstate__(self, state) -> None:
        self.values, self.trie, self.deadline = state


def _transform_worker(start: int, stop: int) -> dict[int, list[tuple[int, str]]]:
    """Transform the shared values in ``[start, stop)`` (global row ids)."""
    state: TransformShardState = worker_state()
    return transform_trie_rows(
        state.values[start:stop], start, state.trie, deadline=state.deadline
    )


def sharded_transform(
    values: Sequence[str],
    trie: PackedTrie,
    *,
    num_workers: int,
    start_method: str | None = None,
    task_timeout: float | None = None,
    max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
    serial_fallback: bool = True,
    deadline: float | None = None,
) -> dict[int, list[tuple[int, str]]]:
    """Apply the trie's transformations to *values*, sharded by row.

    Returns the same mapping as
    :func:`~repro.model.apply.transform_trie_rows` over all rows —
    byte-identical to the serial kernel.  ``task_timeout``/
    ``max_shard_retries``/``serial_fallback`` configure the executor's
    recovery behaviour; ``deadline`` (a monotonic timestamp) is honoured
    cooperatively inside every worker, raising
    :class:`~repro.parallel.errors.DeadlineExceededError` at the next
    block boundary once expired.
    """
    state = TransformShardState(list(values), trie, deadline)
    outputs: dict[int, list[tuple[int, str]]] = {}
    executor = ShardedExecutor(
        state,
        num_workers=num_workers,
        start_method=start_method,
        task_timeout=task_timeout,
        max_shard_retries=max_shard_retries,
        serial_fallback=serial_fallback,
    )
    with executor:
        for shard_outputs in executor.map_shards(
            _transform_worker, len(state.values)
        ):
            for index, pairs in shard_outputs.items():
                existing = outputs.get(index)
                if existing is None:
                    outputs[index] = pairs
                else:
                    existing.extend(pairs)
    return outputs


__all__ = ["TransformShardState", "sharded_transform"]
