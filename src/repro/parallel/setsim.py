"""Process-sharded set-similarity matching.

The setsim matcher shards more cleanly than the packed n-gram matcher: the
global token ordering and the prefix-index build are the only whole-column
computations, and both happen once in the parent.  After that, matching is
per-source-row — probe the index, verify, emit — so workers take contiguous
``(start, stop)`` row ranges over the shared read-only state (the
:class:`~repro.matching.setsim.SetSimIndex`, the sources' ordered token-id
lists, and the value lists) and run the exact serial loop
(:func:`~repro.matching.setsim.match_token_rows`) on their slice.

Emission is per-row with candidates visited in ascending target-row order,
so concatenating shard outputs in shard order reproduces the serial pair
list exactly — same pairs, same order — and summing the shard candidate
counts reproduces the serial pruning statistic.  The property suite asserts
byte-identity at several worker counts under both fork and spawn.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence

from repro.core.pairs import RowPair
from repro.matching.setsim import SetSimIndex, match_token_rows
from repro.parallel.executor import (
    DEFAULT_MAX_SHARD_RETRIES,
    ShardedExecutor,
    worker_state,
)


class SetSimShardState:
    """Read-only state shared with setsim matching workers."""

    __slots__ = ("index", "source_token_ids", "source_values", "target_values")

    def __init__(
        self,
        index: SetSimIndex,
        source_token_ids: list[array[int]],
        source_values: list[str],
        target_values: list[str],
    ) -> None:
        self.index = index
        self.source_token_ids = source_token_ids
        self.source_values = source_values
        self.target_values = target_values

    def __getstate__(self):
        return (
            self.index,
            self.source_token_ids,
            self.source_values,
            self.target_values,
        )

    def __setstate__(self, state) -> None:
        (
            self.index,
            self.source_token_ids,
            self.source_values,
            self.target_values,
        ) = state


def _setsim_worker(start: int, stop: int) -> tuple[list[RowPair], int]:
    """Match source rows [start, stop) against the shared prefix index."""
    state: SetSimShardState = worker_state()
    return match_token_rows(
        state.index,
        state.source_token_ids,
        state.source_values,
        state.target_values,
        start=start,
        stop=stop,
    )


def sharded_setsim_match(
    index: SetSimIndex,
    source_token_ids: Sequence[array[int]],
    source_values: Sequence[str],
    target_values: Sequence[str],
    *,
    num_workers: int,
    start_method: str | None = None,
    task_timeout: float | None = None,
    max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
    serial_fallback: bool = True,
) -> tuple[list[RowPair], int]:
    """Set-similarity matches for the source rows, sharded across processes.

    *index* must have been built over *target_values* and *source_token_ids*
    ranked with the same global token ordering.  Returns ``(pairs,
    candidates)`` identical to the serial
    :func:`~repro.matching.setsim.match_token_rows` over all rows —
    ``task_timeout``/``max_shard_retries``/``serial_fallback`` configure the
    executor's recovery behaviour.
    """
    state = SetSimShardState(
        index,
        list(source_token_ids),
        list(source_values),
        list(target_values),
    )
    executor = ShardedExecutor(
        state,
        num_workers=num_workers,
        start_method=start_method,
        task_timeout=task_timeout,
        max_shard_retries=max_shard_retries,
        serial_fallback=serial_fallback,
    )
    pairs: list[RowPair] = []
    candidates = 0
    with executor:
        for shard_pairs, shard_candidates in executor.map_shards(
            _setsim_worker, len(state.source_token_ids)
        ):
            pairs.extend(shard_pairs)
            candidates += shard_candidates
    return pairs, candidates
