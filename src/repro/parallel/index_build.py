"""Process-sharded inverted-index construction.

The matching index build is embarrassingly row-parallel *except* for the
global dict layout: postings must come out in global first-occurrence
order with ascending row ids, exactly as the serial
:meth:`~repro.matching.index.InvertedIndex.build` produces them.  The
sharded build gets both for free from contiguity:

1. every worker indexes a contiguous ``(start, stop)`` row range into its
   own partial :class:`~repro.matching.index.InvertedIndex`, adding rows
   under their *global* ids (ascending within the shard) and never
   pruning;
2. the parent merges the partials in shard order via
   :meth:`~repro.matching.index.InvertedIndex.merged` — a gram's first
   shard is the shard holding its globally first row, so key insertion
   order, posting concatenation order, and summed frequencies all
   reproduce the serial build byte for byte — and prunes stop-grams once
   with the real cap.

The row texts ship to workers once through the
:class:`~repro.parallel.executor.ShardedExecutor` (fork inherits them
copy-on-write; spawn pickles the state a single time).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.matching.index import InvertedIndex
from repro.parallel.executor import (
    DEFAULT_MAX_SHARD_RETRIES,
    ShardedExecutor,
    worker_state,
)


class IndexBuildShardState:
    """Read-only state shared with index-build workers."""

    __slots__ = ("rows", "min_size", "max_size", "lowercase")

    def __init__(
        self,
        rows: list[str],
        min_size: int,
        max_size: int,
        lowercase: bool,
    ) -> None:
        self.rows = rows
        self.min_size = min_size
        self.max_size = max_size
        self.lowercase = lowercase

    def __getstate__(self):
        return (self.rows, self.min_size, self.max_size, self.lowercase)

    def __setstate__(self, state) -> None:
        (self.rows, self.min_size, self.max_size, self.lowercase) = state


def _index_build_worker(start: int, stop: int) -> InvertedIndex:
    """Build the partial index over global rows [start, stop)."""
    state: IndexBuildShardState = worker_state()
    partial = InvertedIndex(
        min_size=state.min_size,
        max_size=state.max_size,
        lowercase=state.lowercase,
        stop_gram_cap=0,
    )
    rows = state.rows
    for row_id in range(start, stop):
        partial.add(row_id, rows[row_id])
    return partial


def sharded_index_build(
    rows: Sequence[str],
    *,
    min_size: int,
    max_size: int,
    lowercase: bool = True,
    stop_gram_cap: int = 0,
    num_workers: int,
    start_method: str | None = None,
    task_timeout: float | None = None,
    max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
    serial_fallback: bool = True,
) -> InvertedIndex:
    """Build the n-gram index over *rows* across worker processes.

    Byte-identical to ``InvertedIndex.build(rows, ...)`` at any worker
    count (postings content *and* dict order).  ``task_timeout`` /
    ``max_shard_retries`` / ``serial_fallback`` configure the executor's
    recovery behaviour; a shard that ultimately fails falls back to being
    rebuilt serially in the parent, preserving the result.
    """
    rows = list(rows)
    state = IndexBuildShardState(rows, min_size, max_size, lowercase)
    executor = ShardedExecutor(
        state,
        num_workers=num_workers,
        start_method=start_method,
        task_timeout=task_timeout,
        max_shard_retries=max_shard_retries,
        serial_fallback=serial_fallback,
    )
    shards: list[InvertedIndex] = []
    with executor:
        for shard in executor.map_shards(_index_build_worker, len(rows)):
            shards.append(shard)
    return InvertedIndex.merged(shards, stop_gram_cap=stop_gram_cap)


__all__ = [
    "IndexBuildShardState",
    "sharded_index_build",
]
