"""Process-sharded batched coverage.

The batched coverage engine walks a frozen unit-prefix trie once per row, and
every structure it consults is per-row — the unit-output memo, the split
caches, and the lazy literal-prefilter tables (anchor presence and
required-set viability are evaluated against each row's own target) — so
sharding the rows across processes changes neither the covered rows nor the
cache statistics.  The :class:`~repro.core.coverage.PackedTrie` (edges plus
the anchor posting table and interned required sets) is built once in the
parent and shared with the workers through the
:class:`~repro.parallel.executor.ShardedExecutor` (copy-on-write under fork,
pickled once per worker under spawn); each task is a ``(start, stop)`` row
range, and each worker walks its shard with fresh per-row caches, exactly as
the serial engine would for those rows.  The prefilter therefore shards
exactly: a worker evaluates an anchor's presence only against targets inside
its own shard, which is precisely the work the serial walk would do for
those rows.

The merge is order-preserving: shard results come back in ascending shard
order and each transformation's covered-row list is extended shard by shard,
so the per-transformation row sets are built in the same ascending row order
as the serial walk.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.coverage import PackedTrie, _build_unit_trie, _walk_trie_rows
from repro.core.pairs import RowPair
from repro.core.transformation import Transformation
from repro.parallel.executor import (
    DEFAULT_MAX_SHARD_RETRIES,
    ShardedExecutor,
    worker_state,
)


class CoverageShardState:
    """Read-only state shared with coverage workers: pairs + frozen trie.

    ``deadline`` (a ``time.monotonic()`` timestamp or ``None``) rides along
    so every worker can cut its walk cooperatively at block boundaries —
    ``CLOCK_MONOTONIC`` is system-wide, so a deadline computed in the parent
    is directly comparable in the children, under fork and spawn alike.
    """

    __slots__ = ("pairs", "trie", "use_unit_cache", "deadline")

    def __init__(
        self,
        pairs: list[RowPair],
        trie: PackedTrie,
        use_unit_cache: bool,
        deadline: float | None = None,
    ) -> None:
        self.pairs = pairs
        self.trie = trie
        self.use_unit_cache = use_unit_cache
        self.deadline = deadline

    def __getstate__(self):
        return (self.pairs, self.trie, self.use_unit_cache, self.deadline)

    def __setstate__(self, state) -> None:
        self.pairs, self.trie, self.use_unit_cache, self.deadline = state


def _coverage_worker(start: int, stop: int):
    """Walk the shared trie over the rows ``[start, stop)``.

    Returns ``(covered, hits, misses, applications, rows_processed)`` with
    *global* row ids — the same tuple shape as the serial kernel, restricted
    to the shard (``rows_processed`` counts this shard's fully walked rows).
    """
    state: CoverageShardState = worker_state()
    shard = state.pairs[start:stop]
    non_covering_units = [set() for _ in shard]
    return _walk_trie_rows(
        shard,
        start,
        state.trie,
        non_covering_units,
        state.use_unit_cache,
        state.deadline,
    )


def sharded_coverage(
    pairs: Sequence[RowPair],
    transformations: Sequence[Transformation],
    *,
    use_unit_cache: bool,
    num_workers: int,
    start_method: str | None = None,
    task_timeout: float | None = None,
    max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
    serial_fallback: bool = True,
    deadline: float | None = None,
) -> tuple[list[list[int]], int, int, int, int]:
    """Batched coverage of *transformations* over *pairs*, sharded by row.

    Returns ``(covered, hits, misses, applications, rows_processed)`` where
    ``covered[i]`` lists the rows covered by ``transformations[i]`` in
    ascending order — byte-identical (rows and statistics) to the serial
    batched engine.  ``task_timeout``/``max_shard_retries``/
    ``serial_fallback`` configure the executor's recovery behaviour;
    ``deadline`` is the cooperative time-budget cut of the walk itself
    (workers stop at block boundaries once it passes, and
    ``rows_processed`` — the sum over shards — reports how many rows were
    fully walked).
    """
    trie = _build_unit_trie(list(transformations))
    state = CoverageShardState(list(pairs), trie, use_unit_cache, deadline)
    covered: list[list[int]] = [[] for _ in transformations]
    hits = misses = applications = rows_processed = 0
    executor = ShardedExecutor(
        state,
        num_workers=num_workers,
        start_method=start_method,
        task_timeout=task_timeout,
        max_shard_retries=max_shard_retries,
        serial_fallback=serial_fallback,
    )
    with executor:
        for (
            shard_covered,
            shard_hits,
            shard_misses,
            shard_applications,
            shard_rows,
        ) in executor.map_shards(_coverage_worker, len(state.pairs)):
            hits += shard_hits
            misses += shard_misses
            applications += shard_applications
            rows_processed += shard_rows
            for index, rows in shard_covered.items():
                covered[index].extend(rows)
    return covered, hits, misses, applications, rows_processed
