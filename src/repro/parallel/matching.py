"""Process-sharded row matching.

Algorithm 1 is almost row-parallel: representative selection and candidate
emission are per-source-row, but the Rscore of an n-gram depends on its row
frequency in the *whole* source column — a quantity no single row shard can
compute.  The sharded matcher therefore splits the fused pass of the packed
matcher in two:

1. the parent builds the packed target index and runs the counting half
   (:meth:`~repro.matching.index.InvertedIndex.source_grams`) once,
   serially — tokenising every source row exactly once and retaining both
   the per-row kept-gram lists and the global frequency table;
2. the selection + emission half is sharded over source rows: every worker
   shares the index, the value lists, the kept-gram lists and the frequency
   table through the :class:`~repro.parallel.executor.ShardedExecutor` and
   processes ``(start, stop)`` row ranges — scoring and posting scans only,
   no re-tokenisation anywhere.

Because selection is per-row (with order-independent tie-breaking) and
emission is per-row, concatenating the shard outputs in shard order
reproduces the serial matcher's pair list exactly — same pairs, same order,
including Rscore ties.  Amdahl caveat: the index build and the counting pass
stay serial, so matching speedup saturates earlier than coverage speedup;
the perf ladder records both.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.pairs import RowPair
from repro.matching.index import InvertedIndex
from repro.matching.row_matcher import emit_candidate_pairs
from repro.parallel.executor import (
    DEFAULT_MAX_SHARD_RETRIES,
    ShardedExecutor,
    worker_state,
)


class MatchingShardState:
    """Read-only state shared with matching workers."""

    __slots__ = (
        "target_index",
        "source_values",
        "target_values",
        "per_row_grams",
        "source_frequency",
        "max_candidates_per_row",
    )

    def __init__(
        self,
        target_index: InvertedIndex,
        source_values: list[str],
        target_values: list[str],
        per_row_grams: list[list[list[str]]],
        source_frequency: dict[str, int],
        max_candidates_per_row: int,
    ) -> None:
        self.target_index = target_index
        self.source_values = source_values
        self.target_values = target_values
        self.per_row_grams = per_row_grams
        self.source_frequency = source_frequency
        self.max_candidates_per_row = max_candidates_per_row

    def __getstate__(self):
        return (
            self.target_index,
            self.source_values,
            self.target_values,
            self.per_row_grams,
            self.source_frequency,
            self.max_candidates_per_row,
        )

    def __setstate__(self, state) -> None:
        (
            self.target_index,
            self.source_values,
            self.target_values,
            self.per_row_grams,
            self.source_frequency,
            self.max_candidates_per_row,
        ) = state


def _matching_worker(start: int, stop: int) -> list[RowPair]:
    """Select representatives and emit candidates for source rows [start, stop)."""
    state: MatchingShardState = worker_state()
    representatives = state.target_index.representatives_from(
        state.per_row_grams, state.source_frequency, start=start, stop=stop
    )
    return emit_candidate_pairs(
        state.source_values[start:stop],
        state.target_values,
        state.target_index,
        representatives,
        state.max_candidates_per_row,
        row_offset=start,
    )


def sharded_match(
    target_index: InvertedIndex,
    source_values: Sequence[str],
    target_values: Sequence[str],
    *,
    max_candidates_per_row: int,
    num_workers: int,
    start_method: str | None = None,
    task_timeout: float | None = None,
    max_shard_retries: int = DEFAULT_MAX_SHARD_RETRIES,
    serial_fallback: bool = True,
) -> list[RowPair]:
    """Candidate pairs for the source rows, sharded across worker processes.

    *target_index* must have been built over *target_values* with the
    matcher's configuration; the result is identical (pairs and order) to
    the serial packed matcher.  ``task_timeout``/``max_shard_retries``/
    ``serial_fallback`` configure the executor's recovery behaviour.
    """
    source_values = list(source_values)
    target_values = list(target_values)
    per_row_grams, source_frequency = target_index.source_grams(source_values)
    state = MatchingShardState(
        target_index,
        source_values,
        target_values,
        per_row_grams,
        source_frequency,
        max_candidates_per_row,
    )
    executor = ShardedExecutor(
        state,
        num_workers=num_workers,
        start_method=start_method,
        task_timeout=task_timeout,
        max_shard_retries=max_shard_retries,
        serial_fallback=serial_fallback,
    )
    pairs: list[RowPair] = []
    with executor:
        for shard_pairs in executor.map_shards(
            _matching_worker, len(source_values)
        ):
            pairs.extend(shard_pairs)
    return pairs
