"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness the
robustness tests and the CI chaos job use to kill, hang, or raise inside
sharded-executor workers.  It lives in the package (not under ``tests/``)
because the hook must be importable inside worker *processes* — including
spawn-started workers that re-import the library from scratch.
"""

from repro.testing.faults import (
    FAULT_ENV,
    FaultInjected,
    FaultSpec,
    active_fault,
    maybe_inject,
    parse_fault_spec,
)

__all__ = [
    "FAULT_ENV",
    "FaultInjected",
    "FaultSpec",
    "active_fault",
    "maybe_inject",
    "parse_fault_spec",
]
