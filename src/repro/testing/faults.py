"""Deterministic fault injection for the sharded execution paths.

Recovery code that is never executed is recovery code that does not work, so
the executor's crash/hang/exception handling is proven by *injecting* those
faults inside real worker processes and asserting the documented outcome —
either full recovery with byte-identical results, or the typed error of
:mod:`repro.parallel.errors`.  The hook is environment-triggered so it works
identically under ``fork`` and ``spawn`` (child processes inherit the
environment either way, and spawn workers re-import this module cleanly):

.. code-block:: shell

    REPRO_FAULT_INJECT="crash:shard=2"      # os._exit inside the worker
    REPRO_FAULT_INJECT="hang"               # sleep out the task_timeout
    REPRO_FAULT_INJECT="raise:shard=0"      # raise FaultInjected

The spec grammar is ``kind[:key=value]...`` with:

``kind``
    ``crash`` (hard worker death via ``os._exit`` — no exception, no result,
    the ``BrokenProcessPool`` class of failure), ``hang`` (sleep, default
    3600 s, to exercise deadline handling), ``raise`` (raise
    :class:`FaultInjected`, the in-worker exception path), or ``slow``
    (sleep ``seconds`` then continue — a latency bubble rather than a
    failure; pair it with an explicit ``seconds=``).
``shard=N``
    Only trigger on the shard with index *N* in the shard plan (default:
    every shard).
``where=pool|inline|any``
    Where the fault fires.  The default ``pool`` fires only inside pool
    worker processes — never in the parent's inline paths — which is what
    makes recovery *provable*: the injected fault deterministically kills
    every pool attempt, and the executor's serial inline fallback then
    computes the same shard in-process, fault-free, so the merged result
    must be byte-identical to an uninjected run.  ``inline``/``any`` extend
    the blast radius to the in-process paths for tests of the terminal
    (typed-error) outcomes.
``where=registry|engine|server``
    The serve-tier sites (see :func:`maybe_inject_serve`): the registry's
    model load, the engine's batch dispatch, and the HTTP handler's entry.
    A serve site must be named explicitly — the executor's shard hook
    ignores serve-scoped specs and vice versa, so one environment variable
    cannot accidentally poison both tiers.  ``crash`` is rejected with a
    serve site: it would kill the whole server process, which is a process
    supervisor's test, not this layer's.
``seconds=S``
    Sleep duration for ``hang`` and ``slow``.

The spec is consulted by the executor's shard dispatch
(:func:`repro.parallel.executor._run_shard`) and the serving layer's
injection points (:func:`maybe_inject_serve`) with near-zero cost when the
environment variable is unset.  It is a testing facility: production code
must never set ``REPRO_FAULT_INJECT``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

#: The environment variable carrying the fault spec.
FAULT_ENV = "REPRO_FAULT_INJECT"

#: Exit status of an injected crash — distinctive on purpose, so a test
#: watching worker exit codes can tell the injected death from a real one.
CRASH_EXIT_CODE = 23

#: ``slow`` differs from ``hang`` only in intent: a bounded latency bubble
#: (set ``seconds=``) versus sleeping out whatever deadline polices the
#: site.  Both honour a cooperative deadline in :func:`maybe_inject_serve`.
_KINDS = ("crash", "hang", "raise", "slow")

#: The serve-tier injection sites of :func:`maybe_inject_serve`.
SERVE_SITES = ("registry", "engine", "server")

_WHERE = ("pool", "inline", "any") + SERVE_SITES

#: Tick granularity of the deadline-aware sleeps in
#: :func:`maybe_inject_serve`: an injected hang still answers a 504 within
#: one tick of the request deadline instead of holding the handler thread
#: for the full sleep.
_SERVE_TICK_S = 0.05


class FaultInjected(RuntimeError):
    """The exception an injected ``raise`` fault throws inside a worker."""


@dataclass(frozen=True)
class FaultSpec:
    """A parsed ``REPRO_FAULT_INJECT`` value."""

    kind: str
    shard: int | None = None
    where: str = "pool"
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"fault kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.where not in _WHERE:
            raise ValueError(
                f"fault where must be one of {_WHERE}, got {self.where!r}"
            )
        if self.shard is not None and self.shard < 0:
            raise ValueError(f"fault shard must be >= 0, got {self.shard}")
        if self.seconds < 0:
            raise ValueError(f"fault seconds must be >= 0, got {self.seconds}")
        if self.kind == "crash" and self.where in SERVE_SITES:
            raise ValueError(
                "fault kind 'crash' cannot target a serve site (it would "
                "kill the whole server process); use slow/raise/hang"
            )

    def matches(self, shard_index: int, *, in_pool_worker: bool) -> bool:
        """Whether the fault fires for *shard_index* at this call site.

        Serve-scoped specs never match the executor's shard sites.
        """
        if self.where in SERVE_SITES:
            return False
        if self.shard is not None and self.shard != shard_index:
            return False
        if self.where == "pool":
            return in_pool_worker
        if self.where == "inline":
            return not in_pool_worker
        return True

    def matches_site(self, site: str) -> bool:
        """Whether the fault fires at serve site *site*.

        Serve sites must be named explicitly (``where=registry`` etc.) —
        ``any`` is an executor-tier wildcard and does not reach into the
        serve tier.
        """
        return self.where == site


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a ``REPRO_FAULT_INJECT`` value into a :class:`FaultSpec`.

    Raises ``ValueError`` on malformed specs — a typo in a chaos-job
    configuration must fail the run loudly, not silently inject nothing.
    """
    parts = [part.strip() for part in text.strip().split(":")]
    if not parts or not parts[0]:
        raise ValueError(f"empty fault spec {text!r}")
    kind = parts[0]
    fields: dict[str, object] = {}
    for part in parts[1:]:
        key, separator, value = part.partition("=")
        if not separator:
            raise ValueError(
                f"fault spec options must be key=value, got {part!r} in {text!r}"
            )
        if key == "shard":
            try:
                fields["shard"] = int(value)
            except ValueError:
                raise ValueError(
                    f"fault shard must be an integer, got {value!r}"
                ) from None
        elif key == "where":
            fields["where"] = value
        elif key == "seconds":
            try:
                fields["seconds"] = float(value)
            except ValueError:
                raise ValueError(
                    f"fault seconds must be a number, got {value!r}"
                ) from None
        else:
            raise ValueError(f"unknown fault spec option {key!r} in {text!r}")
    return FaultSpec(kind=kind, **fields)  # type: ignore[arg-type]


def active_fault() -> FaultSpec | None:
    """The currently configured fault, or ``None`` when injection is off.

    Read from the environment on every call (not cached): tests flip the
    variable between runs, and worker processes inherit whatever was set at
    pool start-up under both fork and spawn.
    """
    text = os.environ.get(FAULT_ENV, "").strip()
    if not text:
        return None
    return parse_fault_spec(text)


def maybe_inject(shard_index: int, *, in_pool_worker: bool) -> None:
    """Fire the configured fault for *shard_index*, if any matches.

    ``crash`` exits the process immediately (``os._exit`` skips all cleanup,
    exactly like a segfault or an OOM kill would); ``hang`` sleeps; ``raise``
    throws :class:`FaultInjected`.  A no-op when no fault is configured or
    the spec does not match this shard/site.
    """
    spec = active_fault()
    if spec is None or not spec.matches(shard_index, in_pool_worker=in_pool_worker):
        return
    if spec.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if spec.kind in ("hang", "slow"):
        time.sleep(spec.seconds)
        return
    raise FaultInjected(
        f"injected fault on shard {shard_index} "
        f"({'pool worker' if in_pool_worker else 'inline'})"
    )


def maybe_inject_serve(site: str, *, deadline: float | None = None) -> None:
    """Fire the configured fault at serve site *site*, if one targets it.

    The serve-tier counterpart of :func:`maybe_inject`, consulted at the
    registry's model load (``registry``), the engine's batch dispatch
    (``engine``) and the HTTP handler's entry (``server``).  ``raise``
    throws :class:`FaultInjected` (a typed failure the breaker counts);
    ``slow`` and ``hang`` sleep ``seconds`` — in :data:`_SERVE_TICK_S`
    ticks, so when the caller passes its cooperative monotonic *deadline*
    the sleep is cut there with
    :class:`~repro.parallel.errors.DeadlineExceededError`, proving a hung
    dependency still turns into a timely 504 rather than a held thread.
    A no-op when no fault is configured or the spec names another site.
    """
    spec = active_fault()
    if spec is None or not spec.matches_site(site):
        return
    if spec.kind == "raise":
        raise FaultInjected(f"injected fault at serve site {site!r}")
    from repro.parallel.errors import DeadlineExceededError  # noqa: PLC0415

    end = time.monotonic() + spec.seconds
    while True:
        now = time.monotonic()
        if deadline is not None and now >= deadline:
            raise DeadlineExceededError(
                f"deadline expired during injected {spec.kind!r} fault at "
                f"serve site {site!r}"
            )
        if now >= end:
            return
        tick = min(_SERVE_TICK_S, end - now)
        if deadline is not None:
            tick = min(tick, deadline - now)
        time.sleep(max(tick, 0.0))


__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_ENV",
    "SERVE_SITES",
    "FaultInjected",
    "FaultSpec",
    "active_fault",
    "maybe_inject",
    "maybe_inject_serve",
    "parse_fault_spec",
]
