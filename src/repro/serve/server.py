"""A long-lived, stdlib-only HTTP join server.

``ThreadingHTTPServer`` + JSON — no dependency beyond the standard library.
One server process keeps a :class:`~repro.serve.registry.ModelRegistry` of
fitted models warm and exposes:

``POST /join/<model>``
    Body ``{"source": [...], "target": [...]}`` (lists of strings), plus an
    optional ``"deadline_ms"`` — this request's wall-clock budget (the
    server-wide ``request_timeout_s`` applies otherwise).  Joins the source
    values against the target values with the named model's
    transformations; the response carries the joined ``pairs`` (identical —
    same pairs, same order — to offline
    :meth:`~repro.join.pipeline.JoinPipeline.apply`), per-pair ``matched_by``
    attribution, and whether the request was served warm.
``GET /models``
    The registry catalogue, per-model load errors included inline.
``GET /stats``
    Uptime, request/error totals, shed/deadline counters, admission gauges
    (in-flight, queue depth, peaks), per-model circuit-breaker states,
    per-model latency quantiles (p50/p99 over a sliding window) split
    warm/cold, registry cache counters, and micro-batcher counters.
``GET /healthz``
    ``200 {"status": "ok"}`` while serving, ``503 {"status": "overloaded"}``
    while every execution slot is busy, ``503 {"status": "draining"}`` once
    shutdown has been requested.

Failures map through the typed taxonomy of :mod:`repro.serve.errors` to
4xx/5xx JSON bodies — 400 bad request, 404 unknown model, 413 oversized
body, 429 shed by admission control (+ ``Retry-After``), 500 load/shard
failures, 503 open circuit breaker (+ ``Retry-After``), 504 expired
deadline — never a hung or half-written response.  Requests execute behind
an :class:`~repro.serve.admission.AdmissionController` (bounded in-flight
concurrency + bounded wait queue; beyond that, shed) and per-model circuit
breakers fed by the engine's typed outcomes.  ``SIGTERM``/``SIGINT``
trigger a graceful drain: the accept loop stops, in-flight requests finish
(handler threads are non-daemon and joined on close), and ``/healthz``
flips to 503 so load balancers stop routing new traffic.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.parallel.errors import DeadlineExceededError as CoreDeadlineExceededError
from repro.parallel.errors import ShardError
from repro.serve.admission import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_MAX_QUEUE,
    AdmissionController,
)
from repro.serve.breaker import DEFAULT_COOLDOWN_S, DEFAULT_FAILURE_THRESHOLD
from repro.serve.engine import ServeEngine
from repro.serve.errors import (
    BadRequestError,
    DeadlineExceededError,
    OverloadedError,
    PayloadTooLargeError,
    ServeError,
)
from repro.serve.registry import ModelRegistry

#: Sliding-window size of the per-model latency reservoirs.
_LATENCY_WINDOW = 4096

#: Default server-wide request budget, seconds (0 disables).  Generous on
#: purpose: it is the backstop for requests that set no ``deadline_ms``,
#: bounding how long a handler thread can be held, not a latency target.
DEFAULT_REQUEST_TIMEOUT_S = 30.0

#: Default request-body cap, bytes.  A join request is two string columns;
#: 8 MB of JSON is far above any sane micro-batch and far below what a
#: hostile Content-Length could otherwise make the server buffer.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Duplicated from :mod:`repro.testing.faults` (zero-cost guard when unset).
_FAULT_ENV = "REPRO_FAULT_INJECT"


class LatencyStats:
    """Thread-safe per-model latency tracker with warm/cold split.

    Keeps exact totals plus a bounded sliding window of recent latencies
    for quantiles — a long-lived server must not grow with request count,
    and recent-window p50/p99 is what an operator actually watches.  The
    first (cold) request's latency is pinned separately: it is the number
    the warm path is measured against.
    """

    def __init__(self, window: int = _LATENCY_WINDOW) -> None:
        self._lock = threading.Lock()
        # deque(maxlen=...) evicts from the front in O(1) per append; the
        # old list-trim paid O(window) on every request past capacity.
        self._recent: deque[float] = deque(maxlen=window)
        self._count = 0
        self._warm_count = 0
        self._total_s = 0.0
        self._max_s = 0.0
        self._first_s: float | None = None

    def record(self, seconds: float, *, warm: bool) -> None:
        with self._lock:
            self._count += 1
            self._warm_count += 1 if warm else 0
            self._total_s += seconds
            self._max_s = max(self._max_s, seconds)
            if self._first_s is None:
                self._first_s = seconds
            self._recent.append(seconds)

    @staticmethod
    def _quantile(ordered: list[float], q: float) -> float:
        return ordered[min(int(q * len(ordered)), len(ordered) - 1)]

    def snapshot(self) -> dict:
        with self._lock:
            recent = sorted(self._recent)
            count = self._count
            snapshot = {
                "count": count,
                "warm_count": self._warm_count,
                "cold_count": count - self._warm_count,
                "mean_ms": (self._total_s / count * 1000.0) if count else 0.0,
                "max_ms": self._max_s * 1000.0,
                "first_request_ms": (
                    self._first_s * 1000.0 if self._first_s is not None else None
                ),
            }
            if recent:
                snapshot["p50_ms"] = self._quantile(recent, 0.50) * 1000.0
                snapshot["p99_ms"] = self._quantile(recent, 0.99) * 1000.0
            return snapshot


class _JoinHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the serving state handlers read."""

    # Graceful drain: handler threads must be joined on close, not
    # abandoned mid-request.
    daemon_threads = False
    block_on_close = True
    # A bounded accept backlog for bursty closed-loop clients.
    request_queue_size = 64

    def __init__(
        self,
        address: tuple[str, int],
        engine: ServeEngine,
        *,
        admission: AdmissionController | None = None,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        super().__init__(address, _JoinRequestHandler)
        self.engine = engine
        self.admission = admission or AdmissionController()
        self.request_timeout_s = request_timeout_s
        self.max_body_bytes = max_body_bytes
        self.draining = False
        self.started_at = time.monotonic()
        self.request_count = 0
        self.error_count = 0
        self.shed_count = 0
        self.deadline_count = 0
        self.latency: dict[str, LatencyStats] = {}
        self.stats_lock = threading.Lock()

    def latency_for(self, model: str) -> LatencyStats:
        with self.stats_lock:
            stats = self.latency.get(model)
            if stats is None:
                stats = self.latency[model] = LatencyStats()
            return stats

    def count_request(self, *, error: bool) -> None:
        with self.stats_lock:
            self.request_count += 1
            self.error_count += 1 if error else 0

    def count_resilience(self, error: BaseException) -> None:
        """Fold a failed request into the shed/deadline counters."""
        with self.stats_lock:
            if isinstance(error, OverloadedError):
                self.shed_count += 1
            elif isinstance(error, DeadlineExceededError):
                self.deadline_count += 1


class _JoinRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # TCP_NODELAY: headers and body go out as separate writes; with Nagle
    # on, the second write of a small response stalls behind the peer's
    # delayed ACK (~40ms on Linux) once the connection leaves quickack
    # mode — a 40ms latency floor on every warm keep-alive request.
    disable_nagle_algorithm = True
    # Bound how long an idle keep-alive connection can hold a handler
    # thread hostage during drain.
    timeout = 10.0
    server: _JoinHTTPServer  # narrowed for handler code

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/healthz":
            if self.server.draining:
                self._respond(503, {"status": "draining"})
            elif self.server.admission.saturated:
                # Every execution slot busy: still alive, but a load
                # balancer should prefer a less-loaded replica.
                self._respond(503, {"status": "overloaded"})
            else:
                self._respond(200, {"status": "ok"})
            return
        if self.path == "/models":
            self._guarded(lambda: (200, {"models": self.server.engine.registry.list_models()}))
            return
        if self.path == "/stats":
            self._guarded(lambda: (200, self._stats_payload()))
            return
        self._respond(
            404, {"error": {"type": "NotFound", "message": f"no route {self.path}"}}
        )

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if not self.path.startswith("/join/"):
            self._respond(
                404,
                {"error": {"type": "NotFound", "message": f"no route {self.path}"}},
            )
            return
        model_name = self.path[len("/join/") :]
        self._guarded(lambda: self._handle_join(model_name))

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    def _handle_join(self, model_name: str) -> tuple[int, dict]:
        source_values, target_values, deadline_ms = self._read_join_body()
        # Per-request deadline_ms wins; otherwise the server-wide default
        # applies (0 = unbounded).  Computed before admission so time spent
        # queued consumes the same budget the apply stage will.
        budget_s: float | None = None
        if deadline_ms is not None:
            budget_s = deadline_ms / 1000.0
        elif self.server.request_timeout_s > 0:
            budget_s = self.server.request_timeout_s
        deadline = time.monotonic() + budget_s if budget_s is not None else None
        if os.environ.get(_FAULT_ENV):
            from repro.testing.faults import maybe_inject_serve  # noqa: PLC0415

            maybe_inject_serve("server", deadline=deadline)
        admission = self.server.admission
        admission.acquire(deadline)
        try:
            started = time.perf_counter()
            response = self.server.engine.join(
                model_name, source_values, target_values, deadline=deadline
            )
            elapsed = time.perf_counter() - started
        finally:
            admission.release()
        self.server.latency_for(model_name).record(elapsed, warm=response.warm)
        return 200, response.to_payload()

    def _read_join_body(self) -> tuple[list[str], list[str], float | None]:
        """Parse and validate the request body.

        Returns ``(source, target, deadline_ms)``; raises
        :class:`BadRequestError` on malformed input and
        :class:`PayloadTooLargeError` — from the declared length, before
        reading a byte — when the body exceeds the configured cap.
        """
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise BadRequestError("invalid Content-Length header") from None
        if length <= 0:
            raise BadRequestError("request body required")
        limit = self.server.max_body_bytes
        if limit > 0 and length > limit:
            raise PayloadTooLargeError(length, limit)
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise BadRequestError(f"request body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        values: dict[str, list[str]] = {}
        for field in ("source", "target"):
            column = payload.get(field)
            if not isinstance(column, list) or not all(
                isinstance(value, str) for value in column
            ):
                raise BadRequestError(
                    f"field {field!r} must be a list of strings"
                )
            values[field] = column
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms <= 0
            ):
                raise BadRequestError(
                    "field 'deadline_ms' must be a positive number of "
                    "milliseconds"
                )
        return values["source"], values["target"], deadline_ms

    def _stats_payload(self) -> dict:
        server = self.server
        with server.stats_lock:
            requests = server.request_count
            errors = server.error_count
            shed = server.shed_count
            deadline_exceeded = server.deadline_count
            latencies = {
                name: stats for name, stats in server.latency.items()
            }
        return {
            "uptime_s": time.monotonic() - server.started_at,
            "requests": requests,
            "errors": errors,
            "draining": server.draining,
            "admission": server.admission.snapshot(),
            "resilience": {
                "shed": shed,
                "deadline_exceeded": deadline_exceeded,
                "request_timeout_s": server.request_timeout_s,
                "max_body_bytes": server.max_body_bytes,
            },
            "engine": server.engine.stats(),
            "models": {
                name: stats.snapshot() for name, stats in latencies.items()
            },
        }

    # ------------------------------------------------------------------ #
    # Error mapping and plumbing
    # ------------------------------------------------------------------ #
    def _guarded(self, handler) -> None:
        """Run a route handler, mapping the typed taxonomy to 4xx/5xx JSON."""
        try:
            status, payload = handler()
        except CoreDeadlineExceededError as error:
            # The cooperative deadline cut, raised above the engine's remap
            # (the admission queue, the server fault site): same 504 as the
            # serve-layer type.
            self._respond_error(DeadlineExceededError(str(error)))
            return
        except ServeError as error:
            self._respond_error(error)
            return
        except ShardError as error:
            # The parallel layer's typed failures (crash, timeout with the
            # serial fallback disabled) are server-side: 500, with the
            # precise type preserved for the client.
            self.server.count_request(error=True)
            self._respond(
                500,
                {"error": {"type": type(error).__name__, "message": str(error)}},
            )
            return
        except Exception as error:  # noqa: BLE001 - must answer, not hang
            self.server.count_request(error=True)
            self._respond(
                500,
                {"error": {"type": type(error).__name__, "message": str(error)}},
            )
            return
        self.server.count_request(error=False)
        self._respond(status, payload)

    def _respond_error(self, error: ServeError) -> None:
        """Answer one typed serving failure, updating the counters."""
        self.server.count_request(error=True)
        self.server.count_resilience(error)
        self._respond(
            error.status,
            error.payload(),
            retry_after_s=getattr(error, "retry_after_s", None),
        )

    def _respond(
        self, status: int, payload: dict, *, retry_after_s: float | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            # Integer seconds per RFC 9110, rounded up so "retry after
            # 0.3s" does not become "retry immediately".
            self.send_header("Retry-After", str(max(1, int(-(-retry_after_s // 1)))))
        if self.server.draining:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Per-request stderr logging off by default; /stats observes instead."""


class JoinServer:
    """The long-lived join-serving process, wrapped for library and CLI use.

    Composes registry → engine → threaded HTTP server.  ``port=0`` binds an
    ephemeral port (tests and the in-process load benchmark use this);
    ``address`` reports the bound one.
    """

    def __init__(
        self,
        model_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        num_workers: int | None = None,
        min_rows_per_worker: int | None = None,
        joiner_cache_capacity: int = 16,
        index_cache_capacity: int = 32,
        micro_batch: bool = True,
        max_batch_size: int = 32,
        max_batch_wait_s: float = 0.002,
        task_timeout_s: float = 0.0,
        shard_retries: int = 2,
        serial_fallback: bool = True,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        breaker_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        breaker_cooldown_s: float = DEFAULT_COOLDOWN_S,
    ) -> None:
        if request_timeout_s < 0:
            raise ValueError(
                f"request_timeout_s must be >= 0, got {request_timeout_s}"
            )
        self.registry = ModelRegistry(
            model_dir,
            joiner_cache_capacity=joiner_cache_capacity,
            index_cache_capacity=index_cache_capacity,
            num_workers=num_workers,
            min_rows_per_worker=min_rows_per_worker,
            task_timeout_s=task_timeout_s,
            shard_retries=shard_retries,
            serial_fallback=serial_fallback,
        )
        self.engine = ServeEngine(
            self.registry,
            micro_batch=micro_batch,
            max_batch_size=max_batch_size,
            max_batch_wait_s=max_batch_wait_s,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_s=breaker_cooldown_s,
        )
        self.admission = AdmissionController(
            max_inflight=max_inflight, max_queue=max_queue
        )
        self._http = _JoinHTTPServer(
            (host, port),
            self.engine,
            admission=self.admission,
            request_timeout_s=request_timeout_s,
            max_body_bytes=max_body_bytes,
        )
        self._serve_thread: threading.Thread | None = None
        self._shutdown_started = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port resolved when 0 was requested."""
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown` (or a handled signal)."""
        self._http.serve_forever(poll_interval=0.05)

    def start_background(self) -> None:
        """Serve from a background thread (tests, in-process benchmarks)."""
        if self._serve_thread is not None:
            raise RuntimeError("server already started")
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._serve_thread.start()

    def request_shutdown(self) -> None:
        """Begin a graceful drain: stop accepting, let in-flight finish.

        Safe to call from any thread and from signal handlers; idempotent.
        ``shutdown()`` must not run on the serve_forever thread itself, so
        it is dispatched to a helper thread.
        """
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()
        self._http.draining = True
        threading.Thread(
            target=self._http.shutdown, name="repro-serve-shutdown", daemon=True
        ).start()

    def install_signal_handlers(self) -> None:
        """Map SIGTERM/SIGINT to the graceful drain (CLI entry point)."""

        def _drain(signum, frame) -> None:  # noqa: ARG001 - signal API
            self.request_shutdown()

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)

    def close(self) -> None:
        """Drain, stop the accept loop, and join handler threads."""
        self.request_shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=30.0)
            self._serve_thread = None
        self._http.server_close()

    def __enter__(self) -> "JoinServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["JoinServer", "LatencyStats"]
