"""Per-model circuit breakers: fail fast when a model keeps failing.

A model that fails repeatedly — a corrupt artifact re-raising on every
lookup, a join that keeps hitting its deadline, a flaky sharded pool —
costs full price per request while returning nothing.  The breaker turns
that into a near-zero-cost typed rejection:

* **closed** (healthy): requests pass through; consecutive *typed*
  failures are counted, and any success resets the count.
* **open**: ``failure_threshold`` consecutive failures trip the breaker —
  requests are rejected immediately with
  :class:`~repro.serve.errors.CircuitOpenError` (503 + ``Retry-After``)
  without touching the registry or the engine.
* **half-open**: after ``cooldown_s`` the next request is admitted as the
  *single* probe (concurrent requests keep getting 503 while it runs); a
  probe success closes the breaker, a probe failure re-opens it and
  restarts the cool-down.

The open state also watches the model file itself: ``mtime_fn`` (a cheap
``stat``) is consulted on rejected requests, and a changed mtime — the
operator shipped a fixed artifact — admits a probe immediately instead of
waiting out the cool-down.  A successful probe after a reload is exactly
the "successful registry mtime reload closes it" contract: the probe goes
through the registry, which reloads the changed file, and its success
closes the breaker.

Which failures count is the *caller's* decision (the engine counts its
typed taxonomy — load errors, shard errors, deadlines, injected faults —
and calls :meth:`CircuitBreaker.record_abort` for everything else, e.g. a
400, so client mistakes can never open a breaker).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.serve.errors import CircuitOpenError

#: Default consecutive-failure threshold before the breaker opens.
DEFAULT_FAILURE_THRESHOLD = 5

#: Default open-state cool-down before a half-open probe is admitted.
DEFAULT_COOLDOWN_S = 2.0


class CircuitBreaker:
    """One model's failure-driven admission gate.

    Thread-safe; the serving handler threads share one instance per model.
    The protocol per request is ``acquire()`` (raises
    :class:`CircuitOpenError` when open), then exactly one of
    ``record_success()`` / ``record_failure()`` / ``record_abort()``.
    """

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown_s: float = DEFAULT_COOLDOWN_S,
        mtime_fn: Callable[[], int | None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self._name = name
        self._threshold = failure_threshold
        self._cooldown_s = cooldown_s
        self._mtime_fn = mtime_fn
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._mtime_at_open: int | None = None
        self._probe_in_flight = False
        # Counters for /stats.
        self._opened_count = 0
        self._rejected_count = 0

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (no lock: advisory read)."""
        return self._state

    def acquire(self) -> None:
        """Admit this request or raise :class:`CircuitOpenError`.

        In the open state the request is rejected unless the cool-down has
        elapsed or the model file's mtime changed since the breaker opened
        — either admits it as the half-open probe.  In the half-open state
        only the probe slot's holder is admitted; everyone else keeps
        getting 503 until the probe resolves.
        """
        with self._lock:
            if self._state == "closed":
                return
            now = time.monotonic()
            if self._state == "open":
                elapsed = now - self._opened_at
                if elapsed < self._cooldown_s and not self._mtime_changed():
                    self._rejected_count += 1
                    raise CircuitOpenError(
                        self._name,
                        retry_after_s=max(self._cooldown_s - elapsed, 0.0),
                    )
                self._state = "half_open"
                self._probe_in_flight = True
                return
            # half_open: one probe at a time.
            if self._probe_in_flight:
                self._rejected_count += 1
                raise CircuitOpenError(
                    self._name, retry_after_s=self._cooldown_s
                )
            self._probe_in_flight = True

    def record_success(self) -> None:
        """A passed-through request succeeded: close and reset."""
        with self._lock:
            self._state = "closed"
            self._consecutive_failures = 0
            self._probe_in_flight = False
            self._mtime_at_open = None

    def record_failure(self) -> None:
        """A passed-through request failed in a countable (typed) way."""
        with self._lock:
            if self._state == "half_open":
                # The probe failed: re-open and restart the cool-down.
                self._reopen()
                return
            self._consecutive_failures += 1
            if (
                self._state == "closed"
                and self._consecutive_failures >= self._threshold
            ):
                self._reopen()

    def record_abort(self) -> None:
        """A passed-through request ended without a countable verdict.

        Client errors (a 400, a too-large body) say nothing about the
        model's health, but a half-open probe that ends this way must free
        the probe slot — otherwise one malformed request could wedge the
        breaker half-open forever.
        """
        with self._lock:
            if self._state == "half_open":
                self._state = "open"
                self._opened_at = time.monotonic()
                self._probe_in_flight = False

    def _reopen(self) -> None:
        """Trip to open (lock held), recording the artifact's current mtime."""
        self._state = "open"
        self._opened_at = time.monotonic()
        self._probe_in_flight = False
        self._opened_count += 1
        self._consecutive_failures = self._threshold
        self._mtime_at_open = (
            self._mtime_fn() if self._mtime_fn is not None else None
        )

    def _mtime_changed(self) -> bool:
        """Whether the model file changed on disk since the breaker opened."""
        if self._mtime_fn is None:
            return False
        current = self._mtime_fn()
        return current is not None and current != self._mtime_at_open

    def snapshot(self) -> dict:
        """State and counters for ``/stats``."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self._threshold,
                "cooldown_s": self._cooldown_s,
                "times_opened": self._opened_count,
                "rejected": self._rejected_count,
            }


__all__ = [
    "DEFAULT_COOLDOWN_S",
    "DEFAULT_FAILURE_THRESHOLD",
    "CircuitBreaker",
]
