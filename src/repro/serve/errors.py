"""The typed error taxonomy of the serving layer.

Every failure a request can hit maps to one exception type carrying an HTTP
status, so the server translates errors to 4xx/5xx JSON bodies with a single
handler instead of scattering status codes through the routing code — the
same philosophy as the sharded executor's :mod:`repro.parallel.errors`
taxonomy, which the server maps through this one (a ``ShardError`` surfaces
as a 500 ``upstream`` body).

* :class:`BadRequestError` (400) — the client sent something unusable:
  invalid JSON, a missing ``source``/``target`` field, non-string values.
* :class:`ModelNotFoundError` (404) — no model of that name exists in the
  registry directory.
* :class:`ModelLoadError` (500) — the model file exists but cannot be
  loaded (corrupt JSON, foreign format, unsupported schema version, I/O
  error).  Scoped to the one model: every other model keeps serving.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base type of all serving-layer failures.

    ``status`` is the HTTP status code the server maps this error to.
    """

    status = 500

    def payload(self) -> dict:
        """The JSON error body the server responds with."""
        return {"error": {"type": type(self).__name__, "message": str(self)}}


class BadRequestError(ServeError):
    """The request body or parameters are malformed (HTTP 400)."""

    status = 400


class ModelNotFoundError(ServeError):
    """No model of the requested name exists in the registry (HTTP 404)."""

    status = 404

    def __init__(self, name: str) -> None:
        super().__init__(f"no model named {name!r} in the registry")
        self.name = name


class ModelLoadError(ServeError):
    """A registry model file exists but cannot be loaded (HTTP 500).

    The failure is per model: the registry records it (``cause`` keeps the
    underlying :class:`~repro.model.serialization.ModelFormatError` or
    ``OSError``) and other models keep serving.
    """

    status = 500

    def __init__(self, name: str, cause: BaseException) -> None:
        super().__init__(f"model {name!r} failed to load: {cause}")
        self.name = name
        self.cause = cause


__all__ = [
    "BadRequestError",
    "ModelLoadError",
    "ModelNotFoundError",
    "ServeError",
]
