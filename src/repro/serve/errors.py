"""The typed error taxonomy of the serving layer.

Every failure a request can hit maps to one exception type carrying an HTTP
status, so the server translates errors to 4xx/5xx JSON bodies with a single
handler instead of scattering status codes through the routing code — the
same philosophy as the sharded executor's :mod:`repro.parallel.errors`
taxonomy, which the server maps through this one (a ``ShardError`` surfaces
as a 500 ``upstream`` body).

* :class:`BadRequestError` (400) — the client sent something unusable:
  invalid JSON, a missing ``source``/``target`` field, non-string values.
* :class:`ModelNotFoundError` (404) — no model of that name exists in the
  registry directory.
* :class:`PayloadTooLargeError` (413) — the request body exceeds the
  server's configured byte cap; rejected before a byte of it is parsed.
* :class:`OverloadedError` (429) — admission control shed the request: the
  in-flight limit and the wait queue are both full.  Carries
  ``retry_after_s`` → a ``Retry-After`` header.
* :class:`ModelLoadError` (500) — the model file exists but cannot be
  loaded (corrupt JSON, foreign format, unsupported schema version, I/O
  error).  Scoped to the one model: every other model keeps serving.
* :class:`CircuitOpenError` (503) — the model's circuit breaker is open
  after consecutive typed failures; the request failed fast without
  touching the engine.  Carries ``retry_after_s``.
* :class:`DeadlineExceededError` (504) — the request's deadline
  (``deadline_ms`` or the server-wide default) expired before a complete
  result existed.  Responses are complete-or-error, never partial, so an
  expired budget is always this typed error.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base type of all serving-layer failures.

    ``status`` is the HTTP status code the server maps this error to.
    """

    status = 500

    def payload(self) -> dict:
        """The JSON error body the server responds with."""
        return {"error": {"type": type(self).__name__, "message": str(self)}}


class BadRequestError(ServeError):
    """The request body or parameters are malformed (HTTP 400)."""

    status = 400


class ModelNotFoundError(ServeError):
    """No model of the requested name exists in the registry (HTTP 404)."""

    status = 404

    def __init__(self, name: str) -> None:
        super().__init__(f"no model named {name!r} in the registry")
        self.name = name


class PayloadTooLargeError(ServeError):
    """The request body exceeds the configured size cap (HTTP 413).

    Raised from the declared ``Content-Length`` before any of the body is
    read, so an oversized request costs the server a header parse, not an
    unbounded buffer.
    """

    status = 413

    def __init__(self, length: int, limit: int) -> None:
        super().__init__(
            f"request body of {length} bytes exceeds the {limit}-byte limit"
        )
        self.length = length
        self.limit = limit


class OverloadedError(ServeError):
    """Admission control shed the request (HTTP 429 + ``Retry-After``).

    Both the in-flight limit and the bounded wait queue were full; shedding
    immediately is what keeps latency bounded for the requests already
    admitted.  ``retry_after_s`` is the client's backoff hint.
    """

    status = 429

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ModelLoadError(ServeError):
    """A registry model file exists but cannot be loaded (HTTP 500).

    The failure is per model: the registry records it (``cause`` keeps the
    underlying :class:`~repro.model.serialization.ModelFormatError` or
    ``OSError``) and other models keep serving.
    """

    status = 500

    def __init__(self, name: str, cause: BaseException) -> None:
        super().__init__(f"model {name!r} failed to load: {cause}")
        self.name = name
        self.cause = cause


class CircuitOpenError(ServeError):
    """The model's circuit breaker is open (HTTP 503 + ``Retry-After``).

    The request failed fast — no registry load, no apply — because the
    model's recent typed failures crossed the breaker threshold.  The
    breaker half-opens after its cool-down (or immediately once the model
    file's mtime changes on disk), so ``retry_after_s`` tells clients when
    a probe is worth sending.
    """

    status = 503

    def __init__(self, name: str, *, retry_after_s: float) -> None:
        super().__init__(
            f"circuit breaker for model {name!r} is open; retry in "
            f"{retry_after_s:.2f}s"
        )
        self.name = name
        self.retry_after_s = retry_after_s


class DeadlineExceededError(ServeError):
    """The request's deadline expired before a complete result (HTTP 504).

    Served responses are byte-identical-or-error: a request whose
    ``deadline_ms`` (or the server-wide default) runs out gets this typed
    error, never a partial pair list, and the workers computing it stop at
    their next block boundary instead of finishing work nobody will read.
    """

    status = 504


__all__ = [
    "BadRequestError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "ModelLoadError",
    "ModelNotFoundError",
    "OverloadedError",
    "PayloadTooLargeError",
    "ServeError",
]
