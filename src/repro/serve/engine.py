"""The serving apply engine: streaming batches and micro-batched requests.

Two serving shapes live here, both built on the warm artifacts of the
:class:`~repro.serve.registry.ModelRegistry`:

* :func:`apply_iter` — the streaming form of the PR 5 apply path: one
  compiled applier (one trie build) reused across an iterator of batches,
  with the joiner's most-recent-target index cache making repeated targets
  free.  This is the library-level API; it needs no registry or server.
* :class:`ServeEngine` — the request/response form behind the HTTP server.
  Its :class:`MicroBatcher` coalesces concurrent requests for the same
  ``(model, target column)`` into **one** apply call: the leader request
  briefly holds the batch open, concatenates every queued source batch,
  runs a single (optionally sharded) ``join_values`` over the union, and
  splits the joined pairs back per request by source-row offset.  The split
  preserves transformation-major, row-ascending order and first-match
  attribution, so every coalesced response is byte-identical to the
  response the request would have received alone — the equivalence tests
  assert exactly that.
"""

from __future__ import annotations

import os
import threading
import time
from bisect import bisect_right
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.join.joiner import JoinResult, TransformationJoiner, target_values_key
from repro.model.artifact import TransformationModel
from repro.parallel.errors import DeadlineExceededError as CoreDeadlineExceededError
from repro.parallel.errors import ShardError, ShardTimeoutError
from repro.serve.breaker import (
    DEFAULT_COOLDOWN_S,
    DEFAULT_FAILURE_THRESHOLD,
    CircuitBreaker,
)
from repro.serve.errors import DeadlineExceededError, ModelLoadError
from repro.serve.registry import ModelRegistry

#: Duplicated from :mod:`repro.testing.faults` so the zero-cost guard below
#: needs no import when injection is off (same pattern as the executor).
_FAULT_ENV = "REPRO_FAULT_INJECT"


def _maybe_inject(site: str, deadline: float | None) -> None:
    """Consult the serve-scoped fault hook (near-zero cost when unset)."""
    if os.environ.get(_FAULT_ENV):
        from repro.testing.faults import maybe_inject_serve  # noqa: PLC0415

        maybe_inject_serve(site, deadline=deadline)


def apply_iter(
    model: TransformationModel | TransformationJoiner,
    batches: Iterable[tuple[Sequence[str], Sequence[str]]],
    *,
    num_workers: int | None = None,
    min_rows_per_worker: int | None = None,
) -> Iterator[JoinResult]:
    """Stream ``(source_values, target_values)`` batches through one applier.

    The model's transformation set is compiled into the packed trie exactly
    once, before the first batch; every subsequent batch reuses it.  A
    repeated target column (the common stream shape: many source batches
    against one target) also reuses the previous packed
    :class:`~repro.matching.index.ValueIndex` via the joiner's
    most-recent-target cache.  Results are yielded in input order and are
    identical to calling ``join_values`` on a fresh joiner per batch.
    """
    if isinstance(model, TransformationJoiner):
        joiner = model
    else:
        joiner = model.joiner(
            num_workers=num_workers, min_rows_per_worker=min_rows_per_worker
        )
    for source_values, batch_target_values in batches:
        yield joiner.join_values(source_values, batch_target_values)


@dataclass
class ServeResponse:
    """Everything one served join request produced.

    ``pairs``/``matched_by`` mirror :class:`~repro.join.joiner.JoinResult`
    (``matched_by`` as display strings, aligned with ``pairs``); ``warm``
    says whether both compiled artifacts (joiner and target index) were
    cache hits — a warm request skips every build; ``coalesced`` is how
    many concurrent requests shared the underlying apply call (1 = ran
    alone).
    """

    model: str
    pairs: list[tuple[int, int]]
    matched_by: list[str]
    warm: bool
    coalesced: int
    elapsed_s: float

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    def to_payload(self) -> dict:
        """The JSON body of a ``POST /join/<model>`` response."""
        return {
            "model": self.model,
            "num_pairs": self.num_pairs,
            "pairs": [list(pair) for pair in self.pairs],
            "matched_by": self.matched_by,
            "warm": self.warm,
            "coalesced": self.coalesced,
            "elapsed_s": self.elapsed_s,
        }


class _PendingRequest:
    """One caller's slot in a micro-batch.

    ``deadline`` is the caller's own monotonic budget (``None`` =
    unbounded); the batch executes under the *loosest* member deadline and
    each member still times out individually on its own.
    """

    __slots__ = (
        "source_values",
        "target_values",
        "deadline",
        "event",
        "result",
        "error",
        "size",
    )

    def __init__(
        self,
        source_values: list[str],
        target_values: list[str],
        deadline: float | None = None,
    ) -> None:
        self.source_values = source_values
        self.target_values = target_values
        self.deadline = deadline
        self.event = threading.Event()
        self.result: tuple[JoinResult, bool] | None = None
        self.error: BaseException | None = None
        self.size = 1


class _Batch:
    __slots__ = ("requests", "closed")

    def __init__(self, first: _PendingRequest) -> None:
        self.requests = [first]
        self.closed = False


class MicroBatcher:
    """Coalesce concurrent same-key requests into one execution.

    The first request for a key becomes the batch *leader*: it keeps the
    batch open for ``max_wait_s`` (concurrent arrivals for the same key
    append themselves), then closes it and runs *execute* once over every
    queued request — ``execute(key, requests)`` returns one
    ``(result, warm)`` per request.  Followers block on their slot's event
    and receive their share; an execution error propagates to every request
    of the batch.

    ``max_wait_s`` is the latency the leader donates to throughput; 0
    still coalesces whatever arrived while the leader was scheduled, it
    just doesn't wait for more.  ``max_batch_size`` caps a batch — the
    overflow request starts a fresh batch with its own leader.
    """

    def __init__(
        self,
        execute,
        *,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self._execute = execute
        self._max_batch_size = max_batch_size
        self._max_wait_s = max_wait_s
        self._pending: dict = {}
        self._lock = threading.Lock()
        self._requests = 0
        self._batches = 0
        self._coalesced_requests = 0
        self._largest_batch = 0

    def submit(
        self,
        key,
        source_values: list[str],
        target_values: list[str],
        *,
        deadline: float | None = None,
    ) -> tuple[JoinResult, bool, int]:
        """Run (or join) the batch for *key*; returns ``(result, warm, size)``.

        ``deadline`` is this caller's monotonic budget.  A follower whose
        budget expires while the leader is still executing stops waiting
        and raises the core
        :class:`~repro.parallel.errors.DeadlineExceededError` — its slot
        simply goes unread; the leader and other members are unaffected.
        """
        request = _PendingRequest(source_values, target_values, deadline)
        with self._lock:
            self._requests += 1
            batch = self._pending.get(key)
            if (
                batch is not None
                and not batch.closed
                and len(batch.requests) < self._max_batch_size
            ):
                batch.requests.append(request)
                leader = False
            else:
                batch = _Batch(request)
                self._pending[key] = batch
                leader = True
        if leader:
            if self._max_wait_s > 0:
                time.sleep(self._max_wait_s)
            with self._lock:
                batch.closed = True
                if self._pending.get(key) is batch:
                    del self._pending[key]
                requests = list(batch.requests)
                self._batches += 1
                if len(requests) > 1:
                    self._coalesced_requests += len(requests)
                self._largest_batch = max(self._largest_batch, len(requests))
            try:
                results = self._execute(key, requests)
                if len(results) != len(requests):
                    raise RuntimeError(
                        f"micro-batch execute returned {len(results)} results "
                        f"for {len(requests)} requests"
                    )
                for queued, result in zip(requests, results):
                    queued.result = result
                    queued.size = len(requests)
            except BaseException as error:  # noqa: BLE001 - must wake followers
                for queued in requests:
                    queued.error = error
            finally:
                for queued in requests:
                    queued.event.set()
        elif request.deadline is None:
            request.event.wait()
        elif not request.event.wait(
            max(request.deadline - time.monotonic(), 0.0)
        ):
            raise CoreDeadlineExceededError(
                "request deadline expired waiting for the micro-batch result"
            )
        if request.error is not None:
            raise request.error
        assert request.result is not None
        result, warm = request.result
        return result, warm, request.size

    def stats(self) -> dict:
        """Counters: requests, executed batches, coalesced requests, largest batch."""
        with self._lock:
            return {
                "requests": self._requests,
                "batches_executed": self._batches,
                "coalesced_requests": self._coalesced_requests,
                "largest_batch": self._largest_batch,
                "max_batch_size": self._max_batch_size,
                "max_wait_s": self._max_wait_s,
            }


class ServeEngine:
    """Registry-backed join serving with optional request coalescing.

    ``join()`` is the request path the HTTP server calls per
    ``POST /join/<model>``: resolve the model's warm joiner and the target
    column's warm index from the registry, apply, and (when micro-batching
    is on) share that apply with every concurrent request for the same
    ``(model, target column)``.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        micro_batch: bool = True,
        max_batch_size: int = 32,
        max_batch_wait_s: float = 0.002,
        breaker_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        breaker_cooldown_s: float = DEFAULT_COOLDOWN_S,
    ) -> None:
        self._registry = registry
        self._micro_batch = micro_batch
        self._batcher = MicroBatcher(
            self._execute_batch,
            max_batch_size=max_batch_size,
            max_wait_s=max_batch_wait_s,
        )
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        # Per-model breakers, created lazily on the first *countable*
        # failure — a stream of 404s for made-up names must not grow this
        # map (nor can a client open a breaker with them: only typed
        # model/apply failures count).
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()

    @property
    def registry(self) -> ModelRegistry:
        """The backing model registry."""
        return self._registry

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def join(
        self,
        name: str,
        source_values: Sequence[str],
        target_values: Sequence[str],
        *,
        deadline: float | None = None,
    ) -> ServeResponse:
        """Serve one join request; byte-identical to the offline apply path.

        ``deadline`` (monotonic) bounds the whole request — batch wait,
        apply, and split — surfacing as the serve-layer
        :class:`~repro.serve.errors.DeadlineExceededError` (504).  The
        model's circuit breaker gates entry
        (:class:`~repro.serve.errors.CircuitOpenError` when open) and is
        fed the typed outcome.
        """
        breaker = self._breakers.get(name)
        if breaker is not None:
            breaker.acquire()
        try:
            response = self._join_once(name, source_values, target_values, deadline)
        except BaseException as error:  # noqa: BLE001 - typed remap + breaker
            mapped = self._map_failure(error, deadline)
            self._record_failure(name, breaker, mapped)
            if mapped is error:
                raise
            raise mapped from error
        if breaker is not None:
            breaker.record_success()
        return response

    def _join_once(
        self,
        name: str,
        source_values: Sequence[str],
        target_values: Sequence[str],
        deadline: float | None,
    ) -> ServeResponse:
        """The un-gated request path (breaker handling lives in ``join``)."""
        started = time.perf_counter()
        source_list = list(source_values)
        target_list = list(target_values)
        if self._micro_batch:
            # Coalescing is only sound for requests that join against the
            # same model *and* the same target column — the key says so.
            key = (name, target_values_key(target_list))
            result, warm, size = self._batcher.submit(
                key, source_list, target_list, deadline=deadline
            )
        else:
            request = _PendingRequest(source_list, target_list, deadline)
            (result, warm), = self._execute_batch((name, None), [request])
            size = 1
        if deadline is not None and time.monotonic() >= deadline:
            # The batch ran under the loosest member deadline; a stricter
            # member whose own budget lapsed meanwhile still gets the typed
            # 504, never a late response.
            raise DeadlineExceededError(
                "request deadline expired before the response was assembled"
            )
        elapsed = time.perf_counter() - started
        return ServeResponse(
            model=name,
            pairs=list(result.pairs),
            matched_by=[repr(result.matched_by[pair]) for pair in result.pairs],
            warm=warm,
            coalesced=size,
            elapsed_s=elapsed,
        )

    # ------------------------------------------------------------------ #
    # Failure mapping and breaker bookkeeping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _map_failure(error: BaseException, deadline: float | None) -> BaseException:
        """Remap core deadline cuts to the serve-layer 504 type.

        The cooperative deadline surfaces in three shapes: raised directly
        (serial paths, queue waits, follower timeouts), as the cause chained
        through a :class:`~repro.parallel.errors.ShardError` (a pool worker
        hit it), or as a :class:`~repro.parallel.errors.ShardTimeoutError`
        whose map timeout was the clamped request budget.  All three become
        :class:`~repro.serve.errors.DeadlineExceededError`; everything else
        passes through unchanged.
        """
        if isinstance(error, CoreDeadlineExceededError):
            return DeadlineExceededError(str(error))
        if isinstance(error, ShardError):
            cause = error.cause or error.__cause__
            seen: set[int] = set()
            while cause is not None and id(cause) not in seen:
                if isinstance(cause, CoreDeadlineExceededError):
                    return DeadlineExceededError(
                        f"request deadline expired inside the sharded apply: "
                        f"{error}"
                    )
                seen.add(id(cause))
                cause = getattr(cause, "cause", None) or cause.__cause__
            if (
                isinstance(error, ShardTimeoutError)
                and deadline is not None
                and time.monotonic() >= deadline
            ):
                return DeadlineExceededError(
                    f"request deadline expired waiting on the sharded apply: "
                    f"{error}"
                )
        return error

    def _record_failure(
        self, name: str, breaker: CircuitBreaker | None, error: BaseException
    ) -> None:
        """Feed one failed request's typed outcome to the model's breaker.

        Countable failures are the model/apply taxonomy — a corrupt reload,
        a shard failure, an expired deadline, an injected fault.  Client
        mistakes (bad request, unknown model) are *aborts*: they say
        nothing about the model's health and must not trip (or hold open)
        the breaker.
        """
        if breaker is None and not self._countable(error):
            return
        if breaker is None:
            with self._breaker_lock:
                breaker = self._breakers.get(name)
                if breaker is None:
                    breaker = self._breakers[name] = CircuitBreaker(
                        name,
                        failure_threshold=self._breaker_threshold,
                        cooldown_s=self._breaker_cooldown_s,
                        mtime_fn=lambda: self._registry.peek_mtime_ns(name),
                    )
        if self._countable(error):
            breaker.record_failure()
        else:
            breaker.record_abort()

    @staticmethod
    def _countable(error: BaseException) -> bool:
        if isinstance(
            error,
            (
                ModelLoadError,
                ShardError,
                DeadlineExceededError,
                CoreDeadlineExceededError,
            ),
        ):
            return True
        # Injected serve faults count like the real failures they stand in
        # for; lazy import keeps the testing module out of the hot path.
        if type(error).__name__ == "FaultInjected":
            from repro.testing.faults import FaultInjected  # noqa: PLC0415

            return isinstance(error, FaultInjected)
        return False

    def apply_iter(
        self,
        name: str,
        batches: Iterable[tuple[Sequence[str], Sequence[str]]],
    ) -> Iterator[JoinResult]:
        """Stream batches through *name*'s warm joiner (one trie compile).

        The registry's target-index cache serves every batch, so a stream
        alternating between a handful of target columns rebuilds nothing.
        """
        joiner, _entry, _hit = self._registry.joiner_for(name)
        for source_values, batch_targets in batches:
            index, _ = self._registry.target_index_for(joiner, batch_targets)
            yield joiner.join_values(
                source_values, batch_targets, target_index=index
            )

    def stats(self) -> dict:
        """Registry cache, micro-batcher, and circuit-breaker counters."""
        with self._breaker_lock:
            breakers = {
                name: breaker.snapshot()
                for name, breaker in self._breakers.items()
            }
        return {
            "registry": self._registry.stats(),
            "micro_batcher": self._batcher.stats(),
            "breakers": breakers,
        }

    # ------------------------------------------------------------------ #
    # Batch execution (leader side)
    # ------------------------------------------------------------------ #
    def _execute_batch(
        self, key: tuple, requests: list[_PendingRequest]
    ) -> list[tuple[JoinResult, bool]]:
        """One apply call for a closed micro-batch; split results per request.

        Every request of the batch shares the model (``key[0]``) and the
        target values (coalescing keyed on their digest), so one target
        index probe and one ``join_values`` over the concatenated source
        rows serve them all.  The concatenated join emits pairs
        transformation-major with source rows ascending — filtering a
        request's row range out of that stream preserves both orders and
        the first-match attribution, hence the per-request results equal
        what each request would have computed alone.

        The shared apply runs under the *loosest* member deadline (``None``
        if any member is unbounded): a strict member must not starve the
        batch mates who still have budget — it times out individually in
        :meth:`MicroBatcher.submit` (followers) or via the post-hoc check
        in :meth:`join` (the leader) instead.
        """
        name = key[0]
        deadline: float | None = None
        member_deadlines = [request.deadline for request in requests]
        if all(d is not None for d in member_deadlines):
            deadline = max(member_deadlines)
        _maybe_inject("engine", deadline)
        joiner, _entry, joiner_hit = self._registry.joiner_for(
            name, deadline=deadline
        )
        target_values = requests[0].target_values
        index, index_hit = self._registry.target_index_for(joiner, target_values)
        warm = joiner_hit and index_hit
        if len(requests) == 1:
            result = joiner.join_values(
                requests[0].source_values,
                target_values,
                target_index=index,
                deadline=deadline,
            )
            return [(result, warm)]
        offsets: list[int] = []
        concatenated: list[str] = []
        for request in requests:
            offsets.append(len(concatenated))
            concatenated.extend(request.source_values)
        combined = joiner.join_values(
            concatenated, target_values, target_index=index, deadline=deadline
        )
        split: list[JoinResult] = [JoinResult() for _ in requests]
        for pair in combined.pairs:
            slot = bisect_right(offsets, pair[0]) - 1
            local = (pair[0] - offsets[slot], pair[1])
            split[slot].pairs.append(local)
            split[slot].matched_by[local] = combined.matched_by[pair]
        return [(result, warm) for result in split]


__all__ = [
    "MicroBatcher",
    "ServeEngine",
    "ServeResponse",
    "apply_iter",
]
