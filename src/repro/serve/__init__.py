"""The serving layer: long-lived join serving over persisted models.

PR 5 made serving ~50x cheaper than training; this package is the subsystem
that exploits it as a long-lived process instead of cold one-shot applies:

``repro.serve.registry``
    :class:`ModelRegistry` — named models loaded from a directory,
    reloaded on mtime change, with the compiled joiner per model and the
    packed target :class:`~repro.matching.index.ValueIndex` per target
    column kept warm behind bounded LRU caches.
``repro.serve.engine``
    :func:`apply_iter` (stream batches through one compiled applier) and
    :class:`ServeEngine` — the request path, with a micro-batcher that
    coalesces concurrent same-model requests into one sharded apply call,
    responses byte-identical to offline ``JoinPipeline.apply``.
``repro.serve.server``
    :class:`JoinServer` — a stdlib ``ThreadingHTTPServer`` exposing
    ``POST /join/<model>``, ``GET /models``, ``GET /stats`` and
    ``GET /healthz``, with per-model latency stats and graceful drain on
    SIGTERM.
``repro.serve.errors``
    The typed error taxonomy the server maps to 4xx/5xx JSON bodies.
``repro.serve.admission``
    :class:`AdmissionController` — bounded in-flight concurrency plus a
    bounded wait queue in front of the join handler; beyond both, requests
    are shed with 429 + ``Retry-After``.
``repro.serve.breaker``
    :class:`CircuitBreaker` — per-model consecutive-failure gates that
    fail fast (503) while a model keeps failing, with half-open probes and
    immediate reopening on a changed artifact mtime.

Typical usage::

    from repro.serve import JoinServer

    with JoinServer("models/", port=8080) as server:
        server.serve_forever()

or from the command line: ``python -m repro serve --models models/``.
"""

from repro.serve.admission import AdmissionController
from repro.serve.breaker import CircuitBreaker
from repro.serve.cache import LRUCache
from repro.serve.engine import MicroBatcher, ServeEngine, ServeResponse, apply_iter
from repro.serve.errors import (
    BadRequestError,
    CircuitOpenError,
    DeadlineExceededError,
    ModelLoadError,
    ModelNotFoundError,
    OverloadedError,
    PayloadTooLargeError,
    ServeError,
)
from repro.serve.registry import ModelEntry, ModelRegistry
from repro.serve.server import JoinServer, LatencyStats

__all__ = [
    "AdmissionController",
    "BadRequestError",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "JoinServer",
    "LRUCache",
    "LatencyStats",
    "MicroBatcher",
    "ModelEntry",
    "ModelLoadError",
    "ModelNotFoundError",
    "ModelRegistry",
    "OverloadedError",
    "PayloadTooLargeError",
    "ServeEngine",
    "ServeError",
    "ServeResponse",
    "apply_iter",
]
