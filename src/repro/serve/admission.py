"""Admission control: bounded concurrency and load shedding for the server.

Without it, overload is absorbed by the TCP accept backlog and an unbounded
pile of handler threads — every request is eventually served, each slower
than the last, until latency is unbounded for all of them.  The
:class:`AdmissionController` bounds both dimensions explicitly:

* at most ``max_inflight`` requests execute concurrently;
* at most ``max_queue`` more wait (FIFO by condition-variable wakeup) for a
  slot;
* anything beyond that is *shed* immediately with
  :class:`~repro.serve.errors.OverloadedError` (429 + ``Retry-After``) —
  the cheap, predictable failure that keeps the admitted requests' latency
  bounded.

A queued request keeps honouring its own deadline: if the budget expires
while waiting for a slot, it leaves the queue with the core
:class:`~repro.parallel.errors.DeadlineExceededError` (→ 504) instead of
executing an apply nobody is waiting for.
"""

from __future__ import annotations

import threading
import time

from repro.parallel.errors import DeadlineExceededError
from repro.serve.errors import OverloadedError

#: Default concurrent-execution bound.
DEFAULT_MAX_INFLIGHT = 32

#: Default wait-queue bound on top of the in-flight bound.
DEFAULT_MAX_QUEUE = 64

#: Default ``Retry-After`` hint on a shed request, in seconds.
DEFAULT_RETRY_AFTER_S = 1.0


class AdmissionController:
    """A condition-variable gate bounding in-flight and queued requests.

    The protocol per request is ``acquire(deadline)`` then a guaranteed
    ``release()`` (the server wraps the handler in try/finally).
    """

    def __init__(
        self,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if retry_after_s < 0:
            raise ValueError(f"retry_after_s must be >= 0, got {retry_after_s}")
        self._max_inflight = max_inflight
        self._max_queue = max_queue
        self._retry_after_s = retry_after_s
        self._condition = threading.Condition()
        self._in_flight = 0
        self._queued = 0
        # Counters for /stats.
        self._admitted = 0
        self._shed = 0
        self._deadline_shed = 0
        self._peak_in_flight = 0
        self._peak_queued = 0

    @property
    def saturated(self) -> bool:
        """Whether every execution slot is busy (drives ``/healthz``)."""
        with self._condition:
            return self._in_flight >= self._max_inflight

    def acquire(self, deadline: float | None = None) -> None:
        """Take an execution slot, queueing within bounds.

        Raises :class:`OverloadedError` when the wait queue is full, and
        the core :class:`DeadlineExceededError` when *deadline* (a
        monotonic timestamp) expires while queued.
        """
        with self._condition:
            if (
                self._in_flight >= self._max_inflight
                and self._queued >= self._max_queue
            ):
                self._shed += 1
                raise OverloadedError(
                    f"server is at capacity ({self._in_flight} in flight, "
                    f"{self._queued} queued)",
                    retry_after_s=self._retry_after_s,
                )
            self._queued += 1
            self._peak_queued = max(self._peak_queued, self._queued)
            try:
                while self._in_flight >= self._max_inflight:
                    timeout = None
                    if deadline is not None:
                        timeout = deadline - time.monotonic()
                        if timeout <= 0:
                            self._deadline_shed += 1
                            raise DeadlineExceededError(
                                "request deadline expired while queued for "
                                "admission"
                            )
                    self._condition.wait(timeout)
            finally:
                self._queued -= 1
            self._in_flight += 1
            self._admitted += 1
            self._peak_in_flight = max(self._peak_in_flight, self._in_flight)

    def release(self) -> None:
        """Return an execution slot and wake one waiter."""
        with self._condition:
            self._in_flight -= 1
            self._condition.notify()

    def snapshot(self) -> dict:
        """Gauges and counters for ``/stats``."""
        with self._condition:
            return {
                "in_flight": self._in_flight,
                "queued": self._queued,
                "max_inflight": self._max_inflight,
                "max_queue": self._max_queue,
                "admitted": self._admitted,
                "shed": self._shed,
                "deadline_shed": self._deadline_shed,
                "peak_in_flight": self._peak_in_flight,
                "peak_queued": self._peak_queued,
            }


__all__ = [
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_RETRY_AFTER_S",
    "AdmissionController",
]
