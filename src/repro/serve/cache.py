"""A bounded, thread-safe LRU cache with hit/miss/eviction counters.

The serving layer keeps two classes of compiled artifacts warm — per-model
trie-compiled joiners and per-target-column packed
:class:`~repro.matching.index.ValueIndex` objects — and both must be bounded
(a long-lived server cannot grow with every distinct target column it has
ever seen) and observable (``GET /stats`` reports hit ratios, and the
warm-vs-cold benchmark asserts the hit path is cheaper).  One small primitive
serves both: an ``OrderedDict``-backed LRU guarded by a lock, counting hits,
misses and evictions.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable


class LRUCache:
    """Least-recently-used mapping bounded to *capacity* entries.

    ``get_or_build(key, build)`` is the serving fast path: a hit moves the
    entry to the back and returns it; a miss calls *build()* and inserts the
    result, evicting the least-recently-used entry when the cache is full.
    The build runs under the cache lock, so concurrent requests for the same
    key build the artifact exactly once — the second request blocks briefly
    and then hits.  (Builds here are trie compiles and index builds:
    milliseconds, and running them once is the point of the cache.)
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """Maximum number of entries held."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_build(
        self, key: Hashable, build: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(value, hit)`` for *key*, building and caching on a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key], True
            self._misses += 1
            value = build()
            self._entries[key] = value
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value, False

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies *predicate*; returns the count.

        Used on model reload: entries keyed by a stale ``(name, mtime)``
        must not survive the artifact swap.  Invalidations are not counted
        as evictions — they are correctness drops, not capacity pressure.
        """
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def stats(self) -> dict:
        """Counters snapshot: size, capacity, hits, misses, evictions."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_ratio": (self._hits / total) if total else 0.0,
            }


__all__ = ["LRUCache"]
