"""The model registry: named, disk-backed models kept warm for serving.

A registry directory holds one ``<name>.json`` per model, each written by
``TransformationModel.save`` (``repro fit --save``).  The registry turns that
directory into a serving catalogue:

* **named lookup** — ``get("customers")`` loads and caches
  ``<dir>/customers.json``; an unknown name raises
  :class:`~repro.serve.errors.ModelNotFoundError`, a corrupt file raises
  :class:`~repro.serve.errors.ModelLoadError` *for that model only* — every
  other model keeps serving;
* **reload on change** — every lookup stats the file; a changed mtime
  reloads the artifact and swaps it in atomically (readers see either the
  complete old model or the complete new one, never a half-load), so an
  incremental refit lands without a server restart;
* **warm compiled artifacts** — the per-model trie-compiled
  :class:`~repro.join.joiner.TransformationJoiner` and the per-target-column
  packed :class:`~repro.matching.index.ValueIndex` live behind bounded
  :class:`~repro.serve.cache.LRUCache` instances with hit/miss/eviction
  counters; an evicted artifact is rebuilt (re-warmed) on its next request.
"""

from __future__ import annotations

import os
import re
import threading
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.join.joiner import TransformationJoiner, target_values_key
from repro.matching.index import ValueIndex
from repro.model.artifact import TransformationModel
from repro.model.serialization import ModelFormatError
from repro.serve.cache import LRUCache
from repro.serve.errors import BadRequestError, ModelLoadError, ModelNotFoundError

#: Model names are file stems; reject anything that could escape the
#: registry directory (separators, parent references) or hide as a dotfile.
_SAFE_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class ModelEntry:
    """One loaded (or failed-to-load) model of the registry.

    Immutable: a reload builds a fresh entry and swaps it in whole, which is
    what makes the swap atomic for concurrent readers.
    """

    name: str
    path: Path
    mtime_ns: int
    model: TransformationModel | None = None
    error: BaseException | None = None


class ModelRegistry:
    """Load, cache, and hot-reload named transformation models.

    Parameters
    ----------
    model_dir:
        Directory of ``<name>.json`` model files.
    joiner_cache_capacity / index_cache_capacity:
        Bounds of the compiled-artifact caches (joiners keyed by
        ``(name, mtime)``, target indexes keyed by the target values'
        content digest).  Eviction is safe — the artifact is rebuilt on the
        next request — so small bounds just trade latency for memory.
    num_workers / min_rows_per_worker / task_timeout_s / shard_retries /
    serial_fallback:
        Apply-stage knobs threaded into every joiner the registry builds
        (see :class:`~repro.join.joiner.TransformationJoiner`).
    """

    def __init__(
        self,
        model_dir: str | Path,
        *,
        joiner_cache_capacity: int = 16,
        index_cache_capacity: int = 32,
        num_workers: int | None = None,
        min_rows_per_worker: int | None = None,
        task_timeout_s: float = 0.0,
        shard_retries: int = 2,
        serial_fallback: bool = True,
    ) -> None:
        self._dir = Path(model_dir)
        if not self._dir.is_dir():
            raise ValueError(f"model directory {self._dir} does not exist")
        self._entries: dict[str, ModelEntry] = {}
        self._joiners = LRUCache(joiner_cache_capacity)
        self._indexes = LRUCache(index_cache_capacity)
        self._num_workers = num_workers
        self._min_rows_per_worker = min_rows_per_worker
        self._task_timeout_s = task_timeout_s
        self._shard_retries = shard_retries
        self._serial_fallback = serial_fallback
        # One lock for the entry map; loads happen under it, so a model is
        # read from disk once per change no matter how many requests race
        # the reload.  Model files are small versioned JSON — holding the
        # lock across a load is milliseconds, not a serving stall.
        self._lock = threading.Lock()

    @property
    def model_dir(self) -> Path:
        """The registry directory."""
        return self._dir

    # ------------------------------------------------------------------ #
    # Lookup and reload
    # ------------------------------------------------------------------ #
    def model_names(self) -> list[str]:
        """Sorted names of every model file currently in the directory."""
        return sorted(
            path.stem
            for path in self._dir.glob("*.json")
            if _SAFE_NAME.match(path.stem)
        )

    def get(self, name: str, *, deadline: float | None = None) -> ModelEntry:
        """The current entry for *name*, loading or reloading as needed.

        Raises :class:`BadRequestError` for unusable names,
        :class:`ModelNotFoundError` when no such file exists, and
        :class:`ModelLoadError` when the file cannot be parsed — the failed
        entry is cached (keyed by mtime), so a broken artifact is not
        re-parsed on every request, and fixing the file on disk clears the
        error on the next lookup.

        This is the ``registry`` serve-fault site: the hook fires before
        the lock is taken (a hung registry must not wedge every *other*
        model's lookups) and before any entry is cached, so an injected
        fault surfaces typed per request and removing it restores service
        without touching the file.  ``deadline`` lets an injected hang be
        cut cooperatively at the request's budget.
        """
        if not _SAFE_NAME.match(name):
            raise BadRequestError(f"invalid model name {name!r}")
        if os.environ.get("REPRO_FAULT_INJECT"):
            from repro.testing.faults import maybe_inject_serve  # noqa: PLC0415

            maybe_inject_serve("registry", deadline=deadline)
        path = self._dir / f"{name}.json"
        try:
            mtime_ns = path.stat().st_mtime_ns
        except OSError:
            with self._lock:
                self._entries.pop(name, None)
            raise ModelNotFoundError(name) from None
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.mtime_ns != mtime_ns:
                entry = self._load(name, path, mtime_ns)
                self._entries[name] = entry
                # Compiled joiners of the replaced artifact are stale the
                # moment the new entry is visible.
                self._joiners.invalidate(
                    lambda key: key[0] == name and key[1] != mtime_ns
                )
        if entry.error is not None:
            raise ModelLoadError(name, entry.error)
        return entry

    @staticmethod
    def _load(name: str, path: Path, mtime_ns: int) -> ModelEntry:
        """Read one model file into a complete (immutable) entry."""
        try:
            model = TransformationModel.load(path)
        except (ModelFormatError, OSError) as error:
            return ModelEntry(name=name, path=path, mtime_ns=mtime_ns, error=error)
        return ModelEntry(name=name, path=path, mtime_ns=mtime_ns, model=model)

    def peek_mtime_ns(self, name: str) -> int | None:
        """The model file's current mtime, or ``None`` when absent.

        A lock-free ``stat`` — cheap enough for the circuit breaker to call
        on *rejected* requests to detect that an operator shipped a fixed
        artifact (changed mtime ⇒ admit a probe immediately instead of
        waiting out the cool-down).
        """
        if not _SAFE_NAME.match(name):
            return None
        try:
            return (self._dir / f"{name}.json").stat().st_mtime_ns
        except OSError:
            return None

    # ------------------------------------------------------------------ #
    # Warm compiled artifacts
    # ------------------------------------------------------------------ #
    def joiner_for(
        self, name: str, *, deadline: float | None = None
    ) -> tuple[TransformationJoiner, ModelEntry, bool]:
        """``(joiner, entry, cache_hit)`` for *name*'s current artifact.

        The joiner is built fresh on a miss (deliberately *not* through the
        model's own ``joiner()`` memo: that memo would keep an evicted
        joiner alive, making the LRU bound meaningless) and carries the
        registry's apply-stage knobs.  Its compiled trie and
        most-recent-target index build lazily on first use, which is
        exactly the cold-request cost the warm path skips.
        """
        entry = self.get(name, deadline=deadline)
        model = entry.model
        assert model is not None  # get() raised otherwise

        def build() -> TransformationJoiner:
            return TransformationJoiner(
                model.transformations,
                min_support=model.min_support,
                coverage_counts=model.coverage_counts,
                num_candidate_pairs=model.num_candidate_pairs,
                case_insensitive=model.case_insensitive,
                num_workers=self._num_workers,
                min_rows_per_worker=self._min_rows_per_worker,
                task_timeout_s=self._task_timeout_s,
                shard_retries=self._shard_retries,
                serial_fallback=self._serial_fallback,
            )

        joiner, hit = self._joiners.get_or_build((name, entry.mtime_ns), build)
        return joiner, entry, hit

    def target_index_for(
        self, joiner: TransformationJoiner, target_values: Sequence[str]
    ) -> tuple[ValueIndex, bool]:
        """``(index, cache_hit)`` for a target column, keyed by content digest.

        The key includes the joiner's normalization flag: a case-insensitive
        model indexes lower-cased values, so it must never share an index
        with a case-sensitive one even for byte-identical input.
        """
        key = (joiner.case_insensitive, target_values_key(target_values))
        return self._indexes.get_or_build(
            key, lambda: joiner.build_target_index(target_values)
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def list_models(self) -> list[dict]:
        """One summary dict per model file, load errors included inline."""
        summaries = []
        for name in self.model_names():
            try:
                entry = self.get(name)
            except ModelLoadError as error:
                summaries.append(
                    {"name": name, "ok": False, "error": str(error.cause)}
                )
                continue
            except ModelNotFoundError:
                continue  # deleted between the scan and the lookup
            model = entry.model
            assert model is not None
            summaries.append(
                {
                    "name": name,
                    "ok": True,
                    "num_transformations": model.num_transformations,
                    "num_candidate_pairs": model.num_candidate_pairs,
                    "min_support": model.min_support,
                    "case_insensitive": model.case_insensitive,
                    "mtime_ns": entry.mtime_ns,
                }
            )
        return summaries

    def stats(self) -> dict:
        """Cache counters plus the set of currently loaded/failed models."""
        with self._lock:
            loaded = sorted(
                name
                for name, entry in self._entries.items()
                if entry.error is None
            )
            failed = sorted(
                name
                for name, entry in self._entries.items()
                if entry.error is not None
            )
        return {
            "model_dir": str(self._dir),
            "models_loaded": loaded,
            "models_failed": failed,
            "joiner_cache": self._joiners.stats(),
            "target_index_cache": self._indexes.stats(),
        }


__all__ = ["ModelEntry", "ModelRegistry"]
