"""Reference row matcher: the original pure-Python Algorithm 1.

This module preserves the seed implementation of the n-gram row matcher as an
executable specification.  It builds hash-of-``frozenset`` inverted indexes
for both columns and, for every source row and n-gram size, re-tokenises the
row, sorts its n-grams, and scores each one with two per-gram hash lookups —
exactly the behaviour the packed fast path in
:mod:`repro.matching.row_matcher` must reproduce bit-for-bit.

It exists for two reasons:

* the equivalence property tests assert that
  :class:`~repro.matching.row_matcher.NGramRowMatcher` returns *exactly* the
  pairs this matcher returns (same pairs, same order, including Rscore ties),
* the perf harness (:mod:`repro.perf`) uses it as the "seed" engine so the
  checked-in ``BENCH_*.json`` trajectories always contain a
  before/after comparison.

Do not optimise this module; its slowness is the point.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.core.pairs import RowPair
from repro.matching.ngrams import unique_ngrams
from repro.matching.row_matcher import MatchingConfig, RowMatcher
from repro.table.table import Table


class _SetIndex:
    """The seed's inverted index: n-gram -> set of row ids, copied per query."""

    def __init__(
        self,
        rows: Sequence[str],
        *,
        min_size: int,
        max_size: int,
        lowercase: bool,
    ) -> None:
        self._lowercase = lowercase
        self._postings: dict[str, set[int]] = defaultdict(set)
        for row_id, text in enumerate(rows):
            for size in range(min_size, max_size + 1):
                for gram in unique_ngrams(text, size, lowercase=lowercase):
                    self._postings[gram].add(row_id)

    def rows_containing(self, gram: str) -> frozenset[int]:
        if self._lowercase:
            gram = gram.lower()
        return frozenset(self._postings.get(gram, frozenset()))

    def row_frequency(self, gram: str) -> int:
        if self._lowercase:
            gram = gram.lower()
        return len(self._postings.get(gram, ()))


class ReferenceRowMatcher(RowMatcher):
    """Algorithm 1 as implemented by the seed (nested loops, set copies)."""

    def __init__(self, config: MatchingConfig | None = None) -> None:
        self._config = config or MatchingConfig()

    @property
    def config(self) -> MatchingConfig:
        """The matcher configuration."""
        return self._config

    def match(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> list[RowPair]:
        return self.match_values(
            list(source[source_column]), list(target[target_column])
        )

    def match_values(
        self,
        source_values: Sequence[str],
        target_values: Sequence[str],
    ) -> list[RowPair]:
        """Match plain value lists (row ids are positions in the lists)."""
        config = self._config
        source_index = _SetIndex(
            source_values,
            min_size=config.min_ngram,
            max_size=config.max_ngram,
            lowercase=config.lowercase,
        )
        target_index = _SetIndex(
            target_values,
            min_size=config.min_ngram,
            max_size=config.max_ngram,
            lowercase=config.lowercase,
        )

        pairs: list[RowPair] = []
        seen: set[tuple[int, int]] = set()
        for source_row, source_text in enumerate(source_values):
            candidate_targets = self._candidates_for_row(
                source_text, source_index, target_index
            )
            if config.max_candidates_per_row:
                candidate_targets = candidate_targets[: config.max_candidates_per_row]
            for target_row in candidate_targets:
                key = (source_row, target_row)
                if key in seen:
                    continue
                seen.add(key)
                pairs.append(
                    RowPair(
                        source=source_text,
                        target=target_values[target_row],
                        source_row=source_row,
                        target_row=target_row,
                    )
                )
        return pairs

    def _candidates_for_row(
        self,
        source_text: str,
        source_index: _SetIndex,
        target_index: _SetIndex,
    ) -> list[int]:
        """Target rows containing a representative n-gram of *source_text*."""
        config = self._config
        candidates: list[int] = []
        seen: set[int] = set()
        for size in range(config.min_ngram, config.max_ngram + 1):
            grams = unique_ngrams(source_text, size, lowercase=config.lowercase)
            if not grams:
                break
            representative = None
            best_score = 0.0
            for gram in sorted(grams):
                source_frequency = source_index.row_frequency(gram)
                if source_frequency == 0:
                    continue
                target_frequency = target_index.row_frequency(gram)
                if target_frequency == 0:
                    continue
                score = (1.0 / source_frequency) * (1.0 / target_frequency)
                if score > best_score:
                    best_score = score
                    representative = gram
            if representative is None:
                continue
            for target_row in sorted(target_index.rows_containing(representative)):
                if target_row not in seen:
                    seen.add(target_row)
                    candidates.append(target_row)
        return candidates
