"""Row matchers: produce candidate joinable (source, target) row pairs.

:class:`NGramRowMatcher` implements Algorithm 1 of the paper: for every
source row and every n-gram size in ``[n0, nmax]`` it selects the n-gram with
the highest Rscore as the representative n-gram of that size, and every
target row containing a representative n-gram becomes a candidate pair.

:class:`GoldenRowMatcher` replays a known ground-truth matching, which the
experiments use as the "golden" panel of Tables 2 and 4.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.pairs import RowPair
from repro.matching.index import InvertedIndex
from repro.matching.ngrams import unique_ngrams
from repro.matching.scoring import representative_score
from repro.table.table import Table


@dataclass(frozen=True)
class MatchingConfig:
    """Parameters of the n-gram row matcher.

    The defaults follow Section 6.2 of the paper: representative n-grams of
    sizes 4 through 20, lower-cased comparison.
    """

    min_ngram: int = 4
    max_ngram: int = 20
    lowercase: bool = True
    max_candidates_per_row: int = 0  # 0 = unlimited (many-to-many joins)

    def __post_init__(self) -> None:
        if self.min_ngram <= 0:
            raise ValueError(f"min_ngram must be positive, got {self.min_ngram}")
        if self.max_ngram < self.min_ngram:
            raise ValueError(
                f"max_ngram ({self.max_ngram}) must be >= min_ngram ({self.min_ngram})"
            )
        if self.max_candidates_per_row < 0:
            raise ValueError(
                "max_candidates_per_row must be >= 0, got "
                f"{self.max_candidates_per_row}"
            )


class RowMatcher(ABC):
    """Interface of all row matchers."""

    @abstractmethod
    def match(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> list[RowPair]:
        """Return candidate joinable row pairs between the two columns."""


def choose_source_column(left: Table, right: Table, column_left: str, column_right: str) -> bool:
    """Decide whether *left* should be the source (more informative) table.

    The paper tags the column with longer descriptions on average as the
    source column.  Returns True when the left column's average cell length is
    at least that of the right column.
    """
    return left[column_left].average_length() >= right[column_right].average_length()


class NGramRowMatcher(RowMatcher):
    """Algorithm 1: representative-n-gram candidate pair detection."""

    def __init__(self, config: MatchingConfig | None = None) -> None:
        self._config = config or MatchingConfig()

    @property
    def config(self) -> MatchingConfig:
        """The matcher configuration."""
        return self._config

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def match(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> list[RowPair]:
        source_values = list(source[source_column])
        target_values = list(target[target_column])
        return self.match_values(source_values, target_values)

    def match_values(
        self,
        source_values: Sequence[str],
        target_values: Sequence[str],
    ) -> list[RowPair]:
        """Match plain value lists (row ids are positions in the lists)."""
        config = self._config
        source_index = InvertedIndex.build(
            source_values,
            min_size=config.min_ngram,
            max_size=config.max_ngram,
            lowercase=config.lowercase,
        )
        target_index = InvertedIndex.build(
            target_values,
            min_size=config.min_ngram,
            max_size=config.max_ngram,
            lowercase=config.lowercase,
        )

        pairs: list[RowPair] = []
        seen: set[tuple[int, int]] = set()
        for source_row, source_text in enumerate(source_values):
            candidate_targets = self._candidates_for_row(
                source_text, source_index, target_index
            )
            if config.max_candidates_per_row:
                candidate_targets = candidate_targets[
                    : config.max_candidates_per_row
                ]
            for target_row in candidate_targets:
                key = (source_row, target_row)
                if key in seen:
                    continue
                seen.add(key)
                pairs.append(
                    RowPair(
                        source=source_text,
                        target=target_values[target_row],
                        source_row=source_row,
                        target_row=target_row,
                    )
                )
        return pairs

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _candidates_for_row(
        self,
        source_text: str,
        source_index: InvertedIndex,
        target_index: InvertedIndex,
    ) -> list[int]:
        """Target rows containing a representative n-gram of *source_text*.

        For every n-gram size, the n-gram of the source row with the highest
        Rscore is its representative of that size; every target row containing
        any representative becomes a candidate.
        """
        config = self._config
        candidates: list[int] = []
        seen: set[int] = set()
        for size in range(config.min_ngram, config.max_ngram + 1):
            grams = unique_ngrams(source_text, size, lowercase=config.lowercase)
            if not grams:
                break
            representative = None
            best_score = 0.0
            for gram in sorted(grams):
                score = representative_score(gram, source_index, target_index)
                if score > best_score:
                    best_score = score
                    representative = gram
            if representative is None:
                continue
            for target_row in sorted(target_index.rows_containing(representative)):
                if target_row not in seen:
                    seen.add(target_row)
                    candidates.append(target_row)
        return candidates


class GoldenRowMatcher(RowMatcher):
    """Replay a known ground-truth matching (the "golden" panels of the paper)."""

    def __init__(self, golden_pairs: Sequence[tuple[int, int]]) -> None:
        self._golden_pairs = list(golden_pairs)

    def match(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> list[RowPair]:
        source_values = source[source_column]
        target_values = target[target_column]
        pairs: list[RowPair] = []
        for source_row, target_row in self._golden_pairs:
            if not 0 <= source_row < len(source_values):
                raise IndexError(
                    f"golden pair source row {source_row} out of range "
                    f"[0, {len(source_values)})"
                )
            if not 0 <= target_row < len(target_values):
                raise IndexError(
                    f"golden pair target row {target_row} out of range "
                    f"[0, {len(target_values)})"
                )
            pairs.append(
                RowPair(
                    source=source_values[source_row],
                    target=target_values[target_row],
                    source_row=source_row,
                    target_row=target_row,
                )
            )
        return pairs
