"""Row matchers: produce candidate joinable (source, target) row pairs.

:class:`NGramRowMatcher` implements Algorithm 1 of the paper: for every
source row and every n-gram size in ``[n0, nmax]`` it selects the n-gram with
the highest Rscore as the representative n-gram of that size, and every
target row containing a representative n-gram becomes a candidate pair.

The implementation is the packed fast path: one
:class:`~repro.matching.index.InvertedIndex` build over the target column
(sorted-array postings plus an O(1) row-frequency table), representative
n-grams computed per source row at build time via
:meth:`~repro.matching.index.InvertedIndex.representatives`, and candidate
enumeration by scanning the representatives' posting arrays in order — no
per-row re-tokenisation, no sorting, no posting-set copies.  With the
default configuration it returns bit-identical pairs (same pairs, same
order) to the seed implementation preserved in
:class:`repro.matching.reference.ReferenceRowMatcher`; enabling the
opt-in ``stop_gram_cap`` trades some candidate recall (pairs reachable only
through a stop-gram representative) for bounded posting scans.

:class:`GoldenRowMatcher` replays a known ground-truth matching, which the
experiments use as the "golden" panel of Tables 2 and 4.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.pairs import RowPair
from repro.matching.index import InvertedIndex
from repro.matching.tokenize import TOKENIZERS
from repro.parallel.executor import env_default_workers, tuned_num_workers
from repro.table.table import Table

#: Matching engines :func:`create_row_matcher` can build: "ngram" is
#: Algorithm 1's representative-n-gram matcher, "setsim" the prefix-filtered
#: set-similarity matcher of :mod:`repro.matching.setsim`.
MATCHER_ENGINES: tuple[str, ...] = ("ngram", "setsim")

#: Similarity measures the setsim engine supports.  jaccard and cosine take
#: a threshold in (0, 1]; overlap takes an absolute token-count >= 1.
SETSIM_SIMILARITIES: tuple[str, ...] = ("jaccard", "cosine", "overlap")


def env_default_engine() -> str:
    """The default matching engine: ``REPRO_MATCHER`` or ``"ngram"``."""
    return os.environ.get("REPRO_MATCHER", "").strip().lower() or "ngram"


@dataclass(frozen=True)
class MatchingConfig:
    """Parameters of the row matchers (both engines).

    The defaults follow Section 6.2 of the paper: representative n-grams of
    sizes 4 through 20, lower-cased comparison.

    ``stop_gram_cap`` stays 0 (exact Algorithm 1) by default: the calibration
    sweep in ``benchmarks/bench_stop_gram_cap.py`` measures the
    recall/runtime trade-off of enabling it.

    ``num_workers`` shards source rows across worker processes (1 = serial,
    0 = all cores; the default honours ``REPRO_NUM_WORKERS``).  Candidate
    pairs are identical to the serial matcher — same pairs, same order,
    including Rscore ties — because representative selection runs against
    global source frequencies computed once in the parent.

    ``min_rows_per_worker`` is the small-input fast path: when the source
    rows per worker fall below it (or the host has a single core), the pool
    is skipped and the serial path runs — identical pairs, none of the fork
    cost.  ``None`` reads ``REPRO_MIN_ROWS_PER_WORKER`` (default
    :data:`~repro.parallel.executor.DEFAULT_MIN_ITEMS_PER_WORKER`); 0
    disables the tuning.

    ``task_timeout_s`` / ``shard_retries`` / ``serial_fallback`` configure
    the sharded path's fault tolerance (submission-time deadline per map,
    pool retries per failed shard, and the serial inline fallback that keeps
    a flaky pool's results byte-identical); see
    :class:`~repro.parallel.executor.ShardedExecutor`.  ``task_timeout_s``
    0 means unbounded.

    ``engine`` selects the candidate-generation regime
    (:func:`create_row_matcher` resolves it): ``"ngram"`` is Algorithm 1's
    representative n-grams, ``"setsim"`` the prefix-filtered set-similarity
    matcher of :mod:`repro.matching.setsim`.  The default honours
    ``REPRO_MATCHER``.  The ``setsim_*`` fields parameterize the setsim
    engine only: the similarity measure and its threshold (jaccard/cosine in
    (0, 1], overlap an absolute token count >= 1), and the tokenization
    ("whitespace" for token-rich strings, "qgram" for short keys, with
    ``setsim_qgram`` the q).  Both engines share ``lowercase`` and all the
    sharding/fault-tolerance knobs.
    """

    min_ngram: int = 4
    max_ngram: int = 20
    lowercase: bool = True
    max_candidates_per_row: int = 0  # 0 = unlimited (many-to-many joins)
    stop_gram_cap: int = 0  # 0 = no stop-gram pruning (exact Algorithm 1)
    engine: str = field(default_factory=env_default_engine)
    setsim_similarity: str = "jaccard"
    setsim_threshold: float = 0.7
    setsim_tokenizer: str = "whitespace"
    setsim_qgram: int = 4
    num_workers: int = field(default_factory=env_default_workers)
    min_rows_per_worker: int | None = None
    task_timeout_s: float = 0.0
    shard_retries: int = 2
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.min_ngram <= 0:
            raise ValueError(f"min_ngram must be positive, got {self.min_ngram}")
        if self.max_ngram < self.min_ngram:
            raise ValueError(
                f"max_ngram ({self.max_ngram}) must be >= min_ngram ({self.min_ngram})"
            )
        if self.max_candidates_per_row < 0:
            raise ValueError(
                "max_candidates_per_row must be >= 0, got "
                f"{self.max_candidates_per_row}"
            )
        if self.stop_gram_cap < 0:
            raise ValueError(
                f"stop_gram_cap must be >= 0, got {self.stop_gram_cap}"
            )
        if self.engine not in MATCHER_ENGINES:
            raise ValueError(
                f"engine must be one of {list(MATCHER_ENGINES)}, got "
                f"{self.engine!r}"
            )
        if self.setsim_similarity not in SETSIM_SIMILARITIES:
            raise ValueError(
                "setsim_similarity must be one of "
                f"{list(SETSIM_SIMILARITIES)}, got {self.setsim_similarity!r}"
            )
        if self.setsim_similarity == "overlap":
            if self.setsim_threshold < 1:
                raise ValueError(
                    "setsim_threshold is an absolute token count for the "
                    f"overlap measure and must be >= 1, got "
                    f"{self.setsim_threshold}"
                )
        elif not 0.0 < self.setsim_threshold <= 1.0:
            raise ValueError(
                f"setsim_threshold must be in (0, 1] for "
                f"{self.setsim_similarity}, got {self.setsim_threshold}"
            )
        if self.setsim_tokenizer not in TOKENIZERS:
            raise ValueError(
                f"setsim_tokenizer must be one of {list(TOKENIZERS)}, got "
                f"{self.setsim_tokenizer!r}"
            )
        if self.setsim_qgram <= 0:
            raise ValueError(
                f"setsim_qgram must be positive, got {self.setsim_qgram}"
            )
        if self.num_workers < 0:
            raise ValueError(
                f"num_workers must be >= 0, got {self.num_workers}"
            )
        if self.task_timeout_s < 0:
            raise ValueError(
                f"task_timeout_s must be >= 0, got {self.task_timeout_s}"
            )
        if self.shard_retries < 0:
            raise ValueError(
                f"shard_retries must be >= 0, got {self.shard_retries}"
            )


def emit_candidate_pairs(
    source_values: Sequence[str],
    target_values: Sequence[str],
    target_index: InvertedIndex,
    representatives: Sequence[Sequence[str]],
    max_candidates_per_row: int,
    *,
    row_offset: int = 0,
) -> list[RowPair]:
    """Emit candidate pairs by scanning the representatives' posting arrays.

    The emission loop of the packed matcher, shared by the serial path (all
    rows, ``row_offset=0``) and the sharded path (a contiguous slice of the
    source rows, with *row_offset* restoring global source-row ids).
    *representatives* is aligned with *source_values*; emission is per-row,
    so shard outputs concatenate to exactly the serial output.
    """
    pairs: list[RowPair] = []
    append_pair = pairs.append
    cap = max_candidates_per_row
    for local_row, source_text in enumerate(source_values):
        source_row = row_offset + local_row
        # A source row can never repeat a candidate (representatives'
        # postings are deduplicated below), so no (source, target) pair
        # can occur twice — candidate dedup per row is all that's needed.
        seen: set[int] = set()
        seen_add = seen.add
        emitted = 0
        for representative in representatives[local_row]:
            if cap and emitted >= cap:
                # The reference truncates the candidate list to its first
                # `cap` entries; later candidates can be skipped entirely.
                break
            for target_row in target_index.rows_containing(representative):
                if target_row in seen:
                    continue
                seen_add(target_row)
                if cap and emitted >= cap:
                    break
                emitted += 1
                append_pair(
                    RowPair(
                        source=source_text,
                        target=target_values[target_row],
                        source_row=source_row,
                        target_row=target_row,
                    )
                )
    return pairs


class RowMatcher(ABC):
    """Interface of all row matchers."""

    @abstractmethod
    def match(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> list[RowPair]:
        """Return candidate joinable row pairs between the two columns."""


def choose_source_column(left: Table, right: Table, column_left: str, column_right: str) -> bool:
    """Decide whether *left* should be the source (more informative) table.

    The paper tags the column with longer descriptions on average as the
    source column.  Returns True when the left column's average cell length is
    at least that of the right column.
    """
    return left[column_left].average_length() >= right[column_right].average_length()


class NGramRowMatcher(RowMatcher):
    """Algorithm 1: representative-n-gram candidate pair detection."""

    def __init__(self, config: MatchingConfig | None = None) -> None:
        self._config = config or MatchingConfig()

    @property
    def config(self) -> MatchingConfig:
        """The matcher configuration."""
        return self._config

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def match(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> list[RowPair]:
        source_values = list(source[source_column])
        target_values = list(target[target_column])
        return self.match_values(source_values, target_values)

    def match_values(
        self,
        source_values: Sequence[str],
        target_values: Sequence[str],
    ) -> list[RowPair]:
        """Match plain value lists (row ids are positions in the lists).

        The candidates-by-merge fast path: build the packed target index
        once, compute every source row's representative n-grams in a fused
        build pass, then emit candidates by scanning the representatives'
        sorted posting arrays (size-major, ascending row id — the exact
        order of the reference implementation).

        With ``num_workers`` above 1 the selection and emission are sharded
        over source rows (:mod:`repro.parallel.matching`); the returned pairs
        are identical either way.
        """
        config = self._config
        source_values = list(source_values)
        target_values = list(target_values)
        # The index build shards over target rows (byte-identical merge; see
        # repro.parallel.index_build) under the same worker tuning that
        # gates the matching shards, but sized by the *target* column.
        index_workers = tuned_num_workers(
            config.num_workers,
            len(target_values),
            min_items_per_worker=config.min_rows_per_worker,
        )
        if index_workers > 1:
            from repro.parallel.index_build import sharded_index_build

            target_index = sharded_index_build(
                target_values,
                min_size=config.min_ngram,
                max_size=config.max_ngram,
                lowercase=config.lowercase,
                stop_gram_cap=config.stop_gram_cap,
                num_workers=index_workers,
                task_timeout=config.task_timeout_s or None,
                max_shard_retries=config.shard_retries,
                serial_fallback=config.serial_fallback,
            )
        else:
            target_index = InvertedIndex.build(
                target_values,
                min_size=config.min_ngram,
                max_size=config.max_ngram,
                lowercase=config.lowercase,
                stop_gram_cap=config.stop_gram_cap,
            )
        # Small-input fast path: more workers than the input justifies
        # (or a single-core host) fall back to the serial emission.
        num_workers = tuned_num_workers(
            config.num_workers,
            len(source_values),
            min_items_per_worker=config.min_rows_per_worker,
        )
        if num_workers > 1 and target_values:
            from repro.parallel.matching import sharded_match

            return sharded_match(
                target_index,
                source_values,
                target_values,
                max_candidates_per_row=config.max_candidates_per_row,
                num_workers=num_workers,
                task_timeout=config.task_timeout_s or None,
                max_shard_retries=config.shard_retries,
                serial_fallback=config.serial_fallback,
            )
        representatives = target_index.representatives(source_values)
        return emit_candidate_pairs(
            source_values,
            target_values,
            target_index,
            representatives,
            config.max_candidates_per_row,
        )


def create_row_matcher(config: MatchingConfig | None = None) -> RowMatcher:
    """The engine-selected row matcher of *config*.

    ``config.engine`` picks the candidate-generation regime: ``"ngram"``
    builds the packed :class:`NGramRowMatcher` (Algorithm 1), ``"setsim"``
    the prefix-filtered
    :class:`~repro.matching.setsim.SetSimRowMatcher`.  With no config the
    default engine is read from ``REPRO_MATCHER`` (falling back to
    ``"ngram"``), which is how the CLI and :class:`~repro.join.pipeline.
    JoinPipeline` make the engine selectable without code changes.
    """
    config = config or MatchingConfig()
    if config.engine == "setsim":
        # Imported lazily: the ngram path must not pay for (or depend on)
        # the setsim engine's modules.
        from repro.matching.setsim import SetSimRowMatcher

        return SetSimRowMatcher(config)
    return NGramRowMatcher(config)


class GoldenRowMatcher(RowMatcher):
    """Replay a known ground-truth matching (the "golden" panels of the paper)."""

    def __init__(self, golden_pairs: Sequence[tuple[int, int]]) -> None:
        self._golden_pairs = list(golden_pairs)

    def match(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> list[RowPair]:
        source_values = source[source_column]
        target_values = target[target_column]
        pairs: list[RowPair] = []
        for source_row, target_row in self._golden_pairs:
            if not 0 <= source_row < len(source_values):
                raise IndexError(
                    f"golden pair source row {source_row} out of range "
                    f"[0, {len(source_values)})"
                )
            if not 0 <= target_row < len(target_values):
                raise IndexError(
                    f"golden pair target row {target_row} out of range "
                    f"[0, {len(target_values)})"
                )
            pairs.append(
                RowPair(
                    source=source_values[source_row],
                    target=target_values[target_row],
                    source_row=source_row,
                    target_row=target_row,
                )
            )
        return pairs
