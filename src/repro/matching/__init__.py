"""Row matching: finding candidate joinable row pairs (Section 4.2.1).

Before transformations can be learned, the system needs candidate
(source, target) row pairs.  This package implements the paper's n-gram
matcher:

* :mod:`repro.matching.ngrams` — character n-gram extraction,
* :mod:`repro.matching.index` — the packed inverted index (sorted-array
  postings, O(1) row-frequency table, build-time representative n-grams,
  stop-gram pruning) plus the packed exact-value index used by the joiner,
* :mod:`repro.matching.scoring` — Inverse Row Frequency (IRF) and the
  representative score (Rscore),
* :mod:`repro.matching.row_matcher` — Algorithm 1 (representative-n-gram
  matching) plus a golden matcher that replays a known ground truth,
* :mod:`repro.matching.reference` — the seed's nested-loop matcher, kept as
  the executable specification for equivalence tests and perf baselines.
"""

from repro.matching.index import InvertedIndex, ValueIndex
from repro.matching.ngrams import (
    character_ngrams,
    ngrams_in_range,
    unique_ngrams_by_size,
)
from repro.matching.reference import ReferenceRowMatcher
from repro.matching.row_matcher import (
    GoldenRowMatcher,
    MatchingConfig,
    NGramRowMatcher,
    RowMatcher,
    choose_source_column,
)
from repro.matching.scoring import inverse_row_frequency, representative_score

__all__ = [
    "GoldenRowMatcher",
    "InvertedIndex",
    "MatchingConfig",
    "NGramRowMatcher",
    "ReferenceRowMatcher",
    "RowMatcher",
    "ValueIndex",
    "character_ngrams",
    "choose_source_column",
    "inverse_row_frequency",
    "ngrams_in_range",
    "representative_score",
    "unique_ngrams_by_size",
]
