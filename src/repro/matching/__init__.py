"""Row matching: finding candidate joinable row pairs (Section 4.2.1).

Before transformations can be learned, the system needs candidate
(source, target) row pairs.  This package implements two matching engines
(select one with ``MatchingConfig.engine``, the ``--matcher`` CLI flag, or
the ``REPRO_MATCHER`` environment variable):

* :mod:`repro.matching.ngrams` — character n-gram extraction,
* :mod:`repro.matching.index` — the packed inverted index (sorted-array
  postings, O(1) row-frequency table, build-time representative n-grams,
  stop-gram pruning) plus the packed exact-value index used by the joiner,
* :mod:`repro.matching.scoring` — Inverse Row Frequency (IRF) and the
  representative score (Rscore),
* :mod:`repro.matching.row_matcher` — Algorithm 1 (representative-n-gram
  matching), the engine-selecting :func:`~repro.matching.row_matcher.
  create_row_matcher` factory, plus a golden matcher that replays a known
  ground truth,
* :mod:`repro.matching.setsim` — the prefix-filtered set-similarity engine
  (global token-frequency ordering, prefix/position filters, exact
  verification; PPJoin-style),
* :mod:`repro.matching.tokenize` — the whitespace/q-gram tokenizers of the
  setsim engine,
* :mod:`repro.matching.reference` — the seed's nested-loop matcher, kept as
  the executable specification for equivalence tests and perf baselines.
"""

from repro.matching.index import InvertedIndex, ValueIndex
from repro.matching.ngrams import (
    character_ngrams,
    ngrams_in_range,
    unique_ngrams_by_size,
)
from repro.matching.reference import ReferenceRowMatcher
from repro.matching.row_matcher import (
    MATCHER_ENGINES,
    SETSIM_SIMILARITIES,
    GoldenRowMatcher,
    MatchingConfig,
    NGramRowMatcher,
    RowMatcher,
    choose_source_column,
    create_row_matcher,
)
from repro.matching.scoring import inverse_row_frequency, representative_score
from repro.matching.setsim import SetSimRowMatcher, SetSimStats
from repro.matching.tokenize import (
    TOKENIZERS,
    qgram_tokens,
    tokenizer_for,
    whitespace_tokens,
)

__all__ = [
    "GoldenRowMatcher",
    "InvertedIndex",
    "MATCHER_ENGINES",
    "MatchingConfig",
    "NGramRowMatcher",
    "ReferenceRowMatcher",
    "RowMatcher",
    "SETSIM_SIMILARITIES",
    "SetSimRowMatcher",
    "SetSimStats",
    "TOKENIZERS",
    "ValueIndex",
    "character_ngrams",
    "choose_source_column",
    "create_row_matcher",
    "inverse_row_frequency",
    "ngrams_in_range",
    "qgram_tokens",
    "representative_score",
    "tokenizer_for",
    "unique_ngrams_by_size",
    "whitespace_tokens",
]
