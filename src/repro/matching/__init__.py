"""Row matching: finding candidate joinable row pairs (Section 4.2.1).

Before transformations can be learned, the system needs candidate
(source, target) row pairs.  This package implements the paper's n-gram
matcher:

* :mod:`repro.matching.ngrams` — character n-gram extraction,
* :mod:`repro.matching.index` — an inverted index from n-grams to row ids,
* :mod:`repro.matching.scoring` — Inverse Row Frequency (IRF) and the
  representative score (Rscore),
* :mod:`repro.matching.row_matcher` — Algorithm 1 (representative-n-gram
  matching) plus a golden matcher that replays a known ground truth.
"""

from repro.matching.index import InvertedIndex
from repro.matching.ngrams import character_ngrams, ngrams_in_range
from repro.matching.row_matcher import (
    GoldenRowMatcher,
    MatchingConfig,
    NGramRowMatcher,
    RowMatcher,
    choose_source_column,
)
from repro.matching.scoring import inverse_row_frequency, representative_score

__all__ = [
    "GoldenRowMatcher",
    "InvertedIndex",
    "MatchingConfig",
    "NGramRowMatcher",
    "RowMatcher",
    "character_ngrams",
    "choose_source_column",
    "inverse_row_frequency",
    "ngrams_in_range",
    "representative_score",
]
