"""Token extraction for the set-similarity matching engine.

Set-similarity joins compare rows as *token sets*; this module holds the two
tokenizations the engine and the baseline join family support:

* :func:`whitespace_tokens` — delimiter tokenization (py_stringsimjoin's
  ``DelimiterTokenizer`` with ``return_set=True``): the natural choice for
  token-rich strings (names, addresses, descriptions);
* :func:`qgram_tokens` — character q-grams, the choice for short keys and
  strings without separators.

Both deduplicate via order-preserving ``dict.fromkeys`` — never a ``set``,
whose iteration order depends on the per-interpreter string hash seed.  The
returned token lists are therefore identical across ``PYTHONHASHSEED``
values and across fork/spawn worker processes, which is what makes the
engine's global token ordering (and every downstream candidate list)
hash-seed independent.
"""

from __future__ import annotations

from collections.abc import Callable

#: Tokenizer names accepted by :func:`tokenizer_for` (and by
#: ``MatchingConfig.setsim_tokenizer`` / the CLI ``--setsim-tokenizer``).
TOKENIZERS: tuple[str, ...] = ("whitespace", "qgram")


def whitespace_tokens(text: str, *, lowercase: bool = True) -> list[str]:
    """The distinct whitespace-separated tokens of *text*, first-seen order."""
    if lowercase:
        text = text.lower()
    return list(dict.fromkeys(text.split()))


def qgram_tokens(text: str, size: int = 4, *, lowercase: bool = True) -> list[str]:
    """The distinct character q-grams of *text*, first-seen order.

    Strings shorter than *size* contribute themselves as their only token
    (so short keys still participate instead of silently matching nothing);
    empty strings have no tokens.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if lowercase:
        text = text.lower()
    if not text:
        return []
    if len(text) <= size:
        return [text]
    return list(dict.fromkeys(text[i : i + size] for i in range(len(text) - size + 1)))


def tokenizer_for(
    name: str, *, qgram_size: int = 4, lowercase: bool = True
) -> Callable[[str], list[str]]:
    """The tokenization function of *name* ("whitespace" or "qgram")."""
    if name == "whitespace":
        return lambda text: whitespace_tokens(text, lowercase=lowercase)
    if name == "qgram":
        return lambda text: qgram_tokens(text, qgram_size, lowercase=lowercase)
    raise ValueError(
        f"unknown tokenizer {name!r}; expected one of {list(TOKENIZERS)}"
    )
