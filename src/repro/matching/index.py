"""Inverted index from character n-grams to row ids.

The index is a hash map keyed by n-gram with the set of row ids containing
the n-gram as the value, so candidate target rows for a representative n-gram
are found in O(1) (Section 4.2.1: "the inverted index is organized as a hash
with every n-gram of size n0 <= n <= nmax as a key").
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.matching.ngrams import unique_ngrams


class InvertedIndex:
    """Map n-grams (of a range of sizes) to the ids of rows containing them."""

    def __init__(
        self,
        *,
        min_size: int,
        max_size: int,
        lowercase: bool = True,
    ) -> None:
        if min_size <= 0:
            raise ValueError(f"min n-gram size must be positive, got {min_size}")
        if max_size < min_size:
            raise ValueError(
                f"max n-gram size ({max_size}) must be >= min size ({min_size})"
            )
        self._min_size = min_size
        self._max_size = max_size
        self._lowercase = lowercase
        self._postings: dict[str, set[int]] = defaultdict(set)
        self._num_rows = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        rows: Sequence[str],
        *,
        min_size: int,
        max_size: int,
        lowercase: bool = True,
    ) -> "InvertedIndex":
        """Index every row of *rows* (row ids are their positions)."""
        index = cls(min_size=min_size, max_size=max_size, lowercase=lowercase)
        for row_id, text in enumerate(rows):
            index.add(row_id, text)
        return index

    def add(self, row_id: int, text: str) -> None:
        """Add one row's n-grams to the index."""
        for size in range(self._min_size, self._max_size + 1):
            for gram in unique_ngrams(text, size, lowercase=self._lowercase):
                self._postings[gram].add(row_id)
        self._num_rows += 1

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Number of rows indexed."""
        return self._num_rows

    @property
    def num_ngrams(self) -> int:
        """Number of distinct n-grams in the index."""
        return len(self._postings)

    def rows_containing(self, gram: str) -> frozenset[int]:
        """Ids of rows containing *gram* (empty when the n-gram is unknown)."""
        if self._lowercase:
            gram = gram.lower()
        return frozenset(self._postings.get(gram, frozenset()))

    def row_frequency(self, gram: str) -> int:
        """Number of rows containing *gram*."""
        if self._lowercase:
            gram = gram.lower()
        return len(self._postings.get(gram, ()))

    def __contains__(self, gram: object) -> bool:
        if not isinstance(gram, str):
            return False
        if self._lowercase:
            gram = gram.lower()
        return gram in self._postings
