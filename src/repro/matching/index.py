"""Packed inverted index from character n-grams to row ids.

The index is a hash map keyed by n-gram (Section 4.2.1: "the inverted index
is organized as a hash with every n-gram of size n0 <= n <= nmax as a key"),
but the postings are stored *packed*:

* **Postings** are sorted ``array('i')`` row-id arrays.  Rows are indexed in
  increasing row-id order and deduplicated per row, so every posting array is
  born sorted and never needs a per-query sort or copy —
  :meth:`InvertedIndex.rows_containing` returns the stored array itself.
* **Row frequencies** live in a parallel ``dict[str, int]`` table, so
  :meth:`InvertedIndex.row_frequency` (the building block of IRF / Rscore)
  is a single O(1) lookup.  The table survives stop-gram pruning, keeping
  Rscore computation exact even when postings have been dropped.
* **Stop-gram pruning** (``stop_gram_cap``): postings of n-grams occurring in
  more than ``stop_gram_cap`` rows can be dropped after construction.  Such
  n-grams behave like stop words — their Rscore is so low that they are
  almost never representatives — and their posting lists are the longest in
  the index, so capping them bounds both memory and the worst-case candidate
  scan.  The cap is off (0) by default; enabling it trades a little recall
  for bounded postings.

On top of the packed layout, :meth:`InvertedIndex.representatives` fuses
Algorithm 1's scoring loop into a single build-style pass over the source
column: source-side row frequencies are only counted for n-grams that also
occur in the target (all others have Rscore 0 and can never be
representatives), and each row's representative n-gram per size is computed
once, up front — eliminating the per-row re-tokenisation, sorting and
per-gram hash lookups of the original matcher.

:class:`ValueIndex` applies the same packed-postings idea to exact values
(whole cells instead of n-grams); the transformation joiner uses it as its
equi-join target map.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from typing import Final

from repro.matching.ngrams import unique_ngrams_by_size

#: Shared empty posting list returned for unknown (or pruned) n-grams.
_EMPTY_POSTINGS: Final = array("i")


def _representative_of(
    grams: Sequence[str],
    source_frequency: dict[str, int],
    target_frequency: dict[str, int],
) -> str | None:
    """The highest-Rscore n-gram of *grams* (None when the list is empty).

    Same arithmetic as ``scoring.representative_score`` so floating-point
    behaviour is identical to the reference matcher, and ties break towards
    the lexicographically smallest n-gram — which makes the selection
    independent of the iteration order of *grams* (and therefore of the
    per-process string-hash seed, a requirement of the sharded matcher).
    """
    best: str | None = None
    best_score = 0.0
    for gram in grams:
        score = (1.0 / source_frequency[gram]) * (1.0 / target_frequency[gram])
        if score > best_score:
            best_score = score
            best = gram
        elif score == best_score and best is not None and gram < best:
            best = gram
    return best


class InvertedIndex:
    """Map n-grams (of a range of sizes) to the ids of rows containing them."""

    __slots__ = (
        "_min_size",
        "_max_size",
        "_lowercase",
        "_stop_gram_cap",
        "_postings",
        "_frequency",
        "_num_rows",
        "_num_pruned",
        "_last_row_id",
    )

    def __init__(
        self,
        *,
        min_size: int,
        max_size: int,
        lowercase: bool = True,
        stop_gram_cap: int = 0,
    ) -> None:
        if min_size <= 0:
            raise ValueError(f"min n-gram size must be positive, got {min_size}")
        if max_size < min_size:
            raise ValueError(
                f"max n-gram size ({max_size}) must be >= min size ({min_size})"
            )
        if stop_gram_cap < 0:
            raise ValueError(f"stop_gram_cap must be >= 0, got {stop_gram_cap}")
        self._min_size = min_size
        self._max_size = max_size
        self._lowercase = lowercase
        self._stop_gram_cap = stop_gram_cap
        self._postings: dict[str, array] = {}
        self._frequency: dict[str, int] = {}
        self._num_rows = 0
        self._num_pruned = 0
        self._last_row_id = -1

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        rows: Sequence[str],
        *,
        min_size: int,
        max_size: int,
        lowercase: bool = True,
        stop_gram_cap: int = 0,
    ) -> "InvertedIndex":
        """Index every row of *rows* (row ids are their positions).

        A single pass fills the packed postings and the row-frequency table;
        stop-gram pruning (when enabled) runs once at the end.
        """
        index = cls(
            min_size=min_size,
            max_size=max_size,
            lowercase=lowercase,
            stop_gram_cap=stop_gram_cap,
        )
        for row_id, text in enumerate(rows):
            index.add(row_id, text)
        index.prune_stop_grams()
        return index

    @classmethod
    def merged(
        cls,
        shards: Sequence["InvertedIndex"],
        *,
        stop_gram_cap: int = 0,
    ) -> "InvertedIndex":
        """Merge per-shard partial indexes into one, byte-identical to serial.

        *shards* must be unpruned partial indexes over contiguous,
        non-overlapping, increasing global row-id ranges (each built with
        ``stop_gram_cap=0`` — pruning happens exactly once, here, with the
        real cap).  The merge preserves the serial :meth:`build` result
        exactly, including dict insertion order: a gram's first shard is the
        shard holding its globally first row, shards are consumed in row
        order, and within a shard grams appear in first-occurrence order —
        so keys come out in global first-occurrence order, and posting
        arrays concatenate ascending.
        """
        if not shards:
            raise ValueError("merged() needs at least one shard index")
        first = shards[0]
        index = cls(
            min_size=first._min_size,
            max_size=first._max_size,
            lowercase=first._lowercase,
            stop_gram_cap=stop_gram_cap,
        )
        postings = index._postings
        frequency = index._frequency
        last_row_id = -1
        num_rows = 0
        for shard in shards:
            if (
                shard._min_size != first._min_size
                or shard._max_size != first._max_size
                or shard._lowercase != first._lowercase
            ):
                raise ValueError("shard indexes disagree on configuration")
            if shard._num_pruned:
                raise ValueError("shard indexes must be unpruned (cap 0)")
            if shard._num_rows and shard._last_row_id <= last_row_id:
                raise ValueError(
                    "shard indexes must cover increasing row ranges"
                )
            for gram, arr in shard._postings.items():
                existing = postings.get(gram)
                if existing is None:
                    # Adopt the shard's array: shards are throwaway carriers.
                    postings[gram] = arr
                    frequency[gram] = shard._frequency[gram]
                else:
                    existing.extend(arr)
                    frequency[gram] += shard._frequency[gram]
            if shard._num_rows:
                last_row_id = shard._last_row_id
            num_rows += shard._num_rows
        index._num_rows = num_rows
        index._last_row_id = last_row_id
        index.prune_stop_grams()
        return index

    def add(self, row_id: int, text: str) -> None:
        """Add one row's n-grams to the index.

        Rows must be added in strictly increasing row-id order so the packed
        posting arrays stay sorted (and duplicate-free) without ever being
        re-sorted.
        """
        if row_id <= self._last_row_id:
            raise ValueError(
                f"rows must be added in strictly increasing order; got row "
                f"{row_id} after row {self._last_row_id}"
            )
        self._last_row_id = row_id
        postings = self._postings
        frequency = self._frequency
        for grams in unique_ngrams_by_size(
            text, self._min_size, self._max_size, lowercase=self._lowercase
        ):
            for gram in grams:
                count = frequency.get(gram)
                if count is None:
                    frequency[gram] = 1
                    postings[gram] = array("i", (row_id,))
                else:
                    # The frequency table is authoritative: keep counting even
                    # for grams whose postings were pruned as stop-grams
                    # (which must stay pruned, not resurrect partial lists).
                    frequency[gram] = count + 1
                    arr = postings.get(gram)
                    if arr is not None:
                        arr.append(row_id)
        self._num_rows += 1

    def prune_stop_grams(self) -> int:
        """Drop postings of n-grams occurring in more than ``stop_gram_cap`` rows.

        Frequencies are kept (the parallel table is authoritative for IRF /
        Rscore); only the posting arrays are released.  Returns the number of
        n-grams pruned by this call.  No-op when the cap is 0.
        """
        cap = self._stop_gram_cap
        if cap <= 0:
            return 0
        postings = self._postings
        stop_grams = [gram for gram, arr in postings.items() if len(arr) > cap]
        for gram in stop_grams:
            del postings[gram]
        self._num_pruned += len(stop_grams)
        return len(stop_grams)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Number of rows indexed."""
        return self._num_rows

    @property
    def num_ngrams(self) -> int:
        """Number of distinct n-grams in the index (including pruned ones)."""
        return len(self._frequency)

    @property
    def num_pruned_ngrams(self) -> int:
        """Number of n-grams whose postings were dropped as stop-grams."""
        return self._num_pruned

    @property
    def stop_gram_cap(self) -> int:
        """The stop-gram row-frequency cap (0 = pruning disabled)."""
        return self._stop_gram_cap

    def rows_containing(self, gram: str) -> Sequence[int]:
        """Ids of rows containing *gram*, sorted ascending.

        Returns the stored posting array itself — no copy is made, so callers
        must not mutate the result.  Unknown and pruned n-grams yield an
        empty sequence.
        """
        if self._lowercase:
            gram = gram.lower()
        return self._postings.get(gram, _EMPTY_POSTINGS)

    def row_frequency(self, gram: str) -> int:
        """Number of rows containing *gram* (O(1), exact even after pruning)."""
        if self._lowercase:
            gram = gram.lower()
        return self._frequency.get(gram, 0)

    def __contains__(self, gram: object) -> bool:
        if not isinstance(gram, str):
            return False
        if self._lowercase:
            gram = gram.lower()
        return gram in self._frequency

    # ------------------------------------------------------------------ #
    # Fused Algorithm 1: build-time representative n-grams
    # ------------------------------------------------------------------ #
    def representatives(self, source_values: Sequence[str]) -> list[list[str]]:
        """Representative n-grams of every source row, against this target index.

        For each row of *source_values* and every n-gram size in the index's
        range, the n-gram with the highest Rscore (Equation 2) is the row's
        representative of that size; the returned inner lists are ordered by
        size.  Sizes with no scoring n-gram contribute no entry, and — like
        Algorithm 1 — sizes beyond the row length are not considered.

        Ties in Rscore are broken towards the lexicographically smallest
        n-gram, matching the original matcher's deterministic scan order.

        This is the fused scoring pass: source-side row frequencies are
        counted in one sweep (restricted to n-grams that occur in the target
        column — all others score 0), so no per-row re-tokenisation or
        sorting happens at match time.
        """
        per_row_grams, source_frequency = self.source_grams(source_values)
        return self.representatives_from(per_row_grams, source_frequency)

    def source_grams(
        self, source_values: Sequence[str]
    ) -> tuple[list[list[list[str]]], dict[str, int]]:
        """The counting pass of the fused Algorithm 1, split out for sharding.

        Tokenises every source row once, keeps only n-grams that occur in the
        target column (anything else has Rscore 0 and can never be a
        representative), and counts their source-side row frequencies.
        Returns ``(per_row_grams, source_frequency)`` where
        ``per_row_grams[row]`` holds one kept-gram list per n-gram size.

        Selection needs the *global* frequencies, which no single row shard
        can compute — so the sharded matcher runs this once in the parent and
        shares both outputs with the workers, which then only score and emit
        (no re-tokenisation anywhere).
        """
        target_frequency = self._frequency
        source_frequency: dict[str, int] = {}
        per_row_grams: list[list[list[str]]] = []
        for text in source_values:
            per_size: list[list[str]] = []
            for grams in unique_ngrams_by_size(
                text, self._min_size, self._max_size, lowercase=self._lowercase
            ):
                kept = [gram for gram in grams if gram in target_frequency]
                for gram in kept:
                    source_frequency[gram] = source_frequency.get(gram, 0) + 1
                per_size.append(kept)
            per_row_grams.append(per_size)
        return per_row_grams, source_frequency

    def representatives_from(
        self,
        per_row_grams: Sequence[Sequence[Sequence[str]]],
        source_frequency: dict[str, int],
        *,
        start: int = 0,
        stop: int | None = None,
    ) -> list[list[str]]:
        """The selection pass: representatives of rows ``[start, stop)``.

        Operates on the outputs of :meth:`source_grams`.  Row shards
        evaluated this way concatenate to exactly the full
        :meth:`representatives` output: selection is per-row and the
        tie-breaking of :func:`_representative_of` is order-independent.
        """
        if stop is None:
            stop = len(per_row_grams)
        target_frequency = self._frequency
        representatives: list[list[str]] = []
        for row in range(start, stop):
            row_representatives: list[str] = []
            for kept in per_row_grams[row]:
                best = _representative_of(kept, source_frequency, target_frequency)
                if best is not None:
                    row_representatives.append(best)
            representatives.append(row_representatives)
        return representatives


class ValueIndex:
    """Packed exact-value index: cell value -> sorted ``array('i')`` of row ids.

    The same packed-postings layout as :class:`InvertedIndex`, applied to
    whole cell values.  The transformation joiner uses it as its equi-join
    target map: probing a transformed source value returns the matching
    target rows without any copying.
    """

    __slots__ = ("_postings", "_num_rows", "_lowercase")

    def __init__(self, *, lowercase: bool = False) -> None:
        self._postings: dict[str, array] = {}
        self._num_rows = 0
        self._lowercase = lowercase

    @classmethod
    def build(
        cls, values: Sequence[str], *, lowercase: bool = False
    ) -> "ValueIndex":
        """Index every value of *values* (row ids are their positions)."""
        index = cls(lowercase=lowercase)
        postings = index._postings
        if lowercase:
            values = [value.lower() for value in values]
        for row_id, value in enumerate(values):
            arr = postings.get(value)
            if arr is None:
                postings[value] = array("i", (row_id,))
            else:
                arr.append(row_id)
        index._num_rows = len(values)
        return index

    @property
    def num_rows(self) -> int:
        """Number of rows indexed."""
        return self._num_rows

    @property
    def num_values(self) -> int:
        """Number of distinct values."""
        return len(self._postings)

    def rows_for(self, value: str) -> Sequence[int]:
        """Row ids holding exactly *value* (sorted; the stored array, no copy)."""
        if self._lowercase:
            value = value.lower()
        return self._postings.get(value, _EMPTY_POSTINGS)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, str):
            return False
        if self._lowercase:
            value = value.lower()
        return value in self._postings
