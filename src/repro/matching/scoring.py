"""IRF and Rscore (Equations 1 and 2 of the paper).

In the spirit of IDF, the Inverse Row Frequency of an n-gram *t* in a column
*c* is ``1 / (number of rows of c containing t)``, and the representative
score of an n-gram appearing in both the source column SC and the target
column TC is ``Rscore(t) = IRF(t, SC) * IRF(t, TC)``.  Representative n-grams
(highest Rscore per source row and n-gram size) drive the candidate-pair
search and keep stop-word-like n-grams ("alberta", "Dr. ") from flooding the
matcher with false positives.

Both functions are O(1) per call on the packed
:class:`~repro.matching.index.InvertedIndex`: row frequencies come from the
index's parallel frequency table, which stays exact even when stop-gram
pruning has dropped an n-gram's postings.  The matcher's hot path does not
call them per gram any more — Algorithm 1's scoring loop is fused into index
construction (:meth:`~repro.matching.index.InvertedIndex.representatives`),
which uses the identical ``(1/sf) * (1/tf)`` arithmetic so that tie-breaking
is bit-compatible with these definitions.
"""

from __future__ import annotations

from repro.matching.index import InvertedIndex


def inverse_row_frequency(gram: str, index: InvertedIndex) -> float:
    """IRF of *gram* in the column represented by *index*.

    Returns 0.0 for an n-gram that occurs in no row (it carries no evidence).
    """
    frequency = index.row_frequency(gram)
    if frequency == 0:
        return 0.0
    return 1.0 / frequency


def representative_score(
    gram: str,
    source_index: InvertedIndex,
    target_index: InvertedIndex,
) -> float:
    """Rscore of *gram*: the product of its IRFs in the source and target columns.

    N-grams absent from either column score 0.0 — they cannot link a source
    row to any target row.
    """
    source_irf = inverse_row_frequency(gram, source_index)
    if source_irf == 0.0:
        return 0.0
    target_irf = inverse_row_frequency(gram, target_index)
    if target_irf == 0.0:
        return 0.0
    return source_irf * target_irf
