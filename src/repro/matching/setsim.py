"""Prefix-filtered set-similarity row matching (PPJoin-style).

:class:`SetSimRowMatcher` is the second candidate-generation regime of the
system, next to Algorithm 1's representative n-grams: rows are compared as
*token sets*, and candidate pairs are generated with the classic
prefix/position-filter machinery of py_stringsimjoin-style set-similarity
joins.  Where a handful of rare tokens identifies a match (token-rich
strings: names, addresses, descriptions), this prunes the ``O(n*m)`` pair
space far more cheaply than n-gram representative selection.

The pipeline, in order:

1. **Global token ordering** — every token of both columns is ranked by
   document frequency ascending, ties broken by the token string itself.
   The tie-break matters: it makes the ordering (and therefore every prefix,
   every posting list, and the final match set) independent of the
   per-interpreter string hash seed, the same trap the n-gram dedup fix of
   PR 8 closed for spawn workers.
2. **Prefix filter** — a row's tokens, sorted by that global order, need
   only their first ``p`` tokens indexed/probed: two rows clearing the
   threshold must share a token within both prefixes.  ``p`` is
   ``|x| - ceil(t*|x|) + 1`` for jaccard, ``|x| - ceil(t^2*|x|) + 1`` for
   cosine and ``|x| - T + 1`` for overlap (threshold ``T`` an absolute
   count), each computed with a conservative epsilon so float rounding can
   only lengthen a prefix, never cut a true match.
3. **Position-augmented inverted index** — the target prefixes feed
   :class:`SetSimIndex`: per token, parallel arrays of (row id, prefix
   position, row token count).  Probing applies the size filter and the
   positional overlap bound per posting entry
   (:func:`repro.kernels.setsim.filter_token_postings`, tier-dispatched to
   a numpy fast path with a byte-identical python dual).
4. **Exact verification** — every surviving candidate is verified with an
   exact sorted-int-merge overlap count and the measure's exact similarity
   expression.  Filters are conservative-only, verification is exact, so
   the match set is *provably identical* to brute-force all-pairs
   similarity at the same threshold — the speedup is pure pruning, never
   approximation.  The property tests assert exactly that.

Sharding: matching is per-source-row once the ordering and the index exist,
so the engine row-shards through the shared
:class:`~repro.parallel.executor.ShardedExecutor`
(:mod:`repro.parallel.setsim`) with byte-identical concatenation, like the
packed n-gram engine.
"""

from __future__ import annotations

import math
from array import array
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.pairs import RowPair
from repro.kernels.setsim import FILTER_EPS, filter_token_postings, intersect_count
from repro.matching.row_matcher import MatchingConfig, RowMatcher
from repro.matching.tokenize import tokenizer_for
from repro.parallel.executor import tuned_num_workers
from repro.table.table import Table

#: Sentinel upper size bound for measures without one (overlap).
_NO_UPPER_BOUND = 2**31 - 1


@dataclass(frozen=True)
class SetSimStats:
    """Candidate-generation statistics of one set-similarity matching run.

    ``all_pairs`` is the brute-force pair space ``|source| * |target|``;
    ``candidates`` the pairs that survived the prefix/size/position filters
    and were exactly verified; ``matches`` the pairs that cleared the
    threshold.  ``candidates / all_pairs`` — the pruning ratio — is the
    headline number of the BENCH comparison: it is *why* the engine is fast.
    """

    num_source_rows: int
    num_target_rows: int
    all_pairs: int
    candidates: int
    matches: int

    @property
    def pruning_ratio(self) -> float:
        """Fraction of the all-pairs space that reached verification."""
        if self.all_pairs == 0:
            return 0.0
        return self.candidates / self.all_pairs


def build_token_order(token_lists: Iterable[Sequence[str]]) -> dict[str, int]:
    """Global document-frequency token ranking over all given token lists.

    Rare tokens rank first (they have the shortest posting lists, so
    prefixes built from them generate the fewest candidates); ties are
    broken by the token string, never by hash order, so the ranking is
    deterministic across processes and ``PYTHONHASHSEED`` values.
    """
    frequency: dict[str, int] = {}
    for tokens in token_lists:
        for token in tokens:
            frequency[token] = frequency.get(token, 0) + 1
    ranked = sorted(frequency.items(), key=lambda item: (item[1], item[0]))
    return {token: rank for rank, (token, _) in enumerate(ranked)}


def ordered_token_ids(
    tokens: Sequence[str], order: dict[str, int]
) -> array[int]:
    """The row's tokens as globally-ordered ranks, ascending (rarest first)."""
    return array("i", sorted(order[token] for token in tokens))


def prefix_length(size: int, similarity: str, threshold: float) -> int:
    """How many of a row's ordered tokens must be indexed/probed.

    Any row pair clearing the threshold shares a token within both rows'
    prefixes of this length.  0 means the row cannot match anything (e.g.
    an empty token set, or overlap demanding more tokens than it has).
    The epsilon makes the inner ``ceil`` conservative: rounding can only
    lengthen the prefix, never cut a true match.
    """
    if size <= 0:
        return 0
    if similarity == "jaccard":
        minimum_kept = math.ceil(threshold * size - FILTER_EPS)
    elif similarity == "cosine":
        minimum_kept = math.ceil(threshold * threshold * size - FILTER_EPS)
    else:  # overlap: threshold is the required count itself
        minimum_kept = math.ceil(threshold - FILTER_EPS)
    return max(0, min(size, size - minimum_kept + 1))


def size_bounds(size: int, similarity: str, threshold: float) -> tuple[int, int]:
    """Admissible target token counts for a probe row of *size* tokens.

    Rows outside these bounds cannot clear the threshold whatever their
    overlap; the bounds are epsilon-conservative in both directions.
    """
    if similarity == "jaccard":
        low = math.ceil(threshold * size - FILTER_EPS)
        high = math.floor(size / threshold + FILTER_EPS)
    elif similarity == "cosine":
        squared = threshold * threshold
        low = math.ceil(squared * size - FILTER_EPS)
        high = math.floor(size / squared + FILTER_EPS)
    else:  # overlap needs at least the required count, no upper bound
        low = math.ceil(threshold - FILTER_EPS)
        high = _NO_UPPER_BOUND
    return max(low, 1), high


def similarity_score(
    overlap: int, probe_size: int, candidate_size: int, similarity: str
) -> float:
    """The exact similarity of two token sets given their overlap.

    This is the verification arbiter *and* the brute-force oracle's
    expression — one shared formula, evaluated in one order, so engine and
    oracle agree even at exact-threshold floating-point ties.
    """
    if overlap == 0:
        return 0.0
    if similarity == "jaccard":
        return overlap / (probe_size + candidate_size - overlap)
    if similarity == "cosine":
        return overlap / math.sqrt(probe_size * candidate_size)
    return float(overlap)


class SetSimIndex:
    """Position-augmented inverted index over the targets' prefix tokens.

    ``postings[token_id]`` holds three parallel ``array('i')`` columns:
    target row ids (ascending — build order), the token's position in the
    row's globally-ordered token list, and the row's token count.  Packing
    the count into the posting keeps the probe's size filter free of row-id
    indirections, which is what lets the numpy kernel vectorize it.

    The full ordered token-id lists (``token_ids``) ride along for exact
    verification.  Everything is plain arrays and dicts: the index pickles
    once per worker under spawn and shares via fork COW otherwise.
    """

    __slots__ = ("postings", "sizes", "token_ids", "similarity", "threshold")

    def __init__(
        self,
        token_ids: list[array[int]],
        similarity: str,
        threshold: float,
    ) -> None:
        self.token_ids = token_ids
        self.sizes = [len(ids) for ids in token_ids]
        self.similarity = similarity
        self.threshold = threshold
        postings: dict[int, tuple[array[int], array[int], array[int]]] = {}
        for row, ids in enumerate(token_ids):
            size = len(ids)
            for position in range(prefix_length(size, similarity, threshold)):
                entry = postings.get(ids[position])
                if entry is None:
                    entry = (array("i"), array("i"), array("i"))
                    postings[ids[position]] = entry
                entry[0].append(row)
                entry[1].append(position)
                entry[2].append(size)
        self.postings = postings

    def __getstate__(self):
        return (
            self.postings,
            self.sizes,
            self.token_ids,
            self.similarity,
            self.threshold,
        )

    def __setstate__(self, state) -> None:
        (
            self.postings,
            self.sizes,
            self.token_ids,
            self.similarity,
            self.threshold,
        ) = state


def match_token_rows(
    index: SetSimIndex,
    source_token_ids: Sequence[array[int]],
    source_values: Sequence[str],
    target_values: Sequence[str],
    *,
    start: int = 0,
    stop: int | None = None,
) -> tuple[list[RowPair], int]:
    """Match source rows ``[start, stop)`` against the indexed targets.

    Returns ``(pairs, candidates)``: *candidates* counts the (source,
    target) pairs that survived the filters and were exactly verified — the
    numerator of the pruning ratio.  Work is per-source-row with targets
    emitted in ascending order, so shard outputs concatenate to exactly the
    serial output (the sharded path's byte-identity argument).
    """
    similarity = index.similarity
    threshold = index.threshold
    postings = index.postings
    target_ids = index.token_ids
    target_sizes = index.sizes
    pairs: list[RowPair] = []
    candidates_total = 0
    if stop is None:
        stop = len(source_token_ids)
    for row in range(start, stop):
        probe_ids = source_token_ids[row]
        probe_size = len(probe_ids)
        probe_prefix = prefix_length(probe_size, similarity, threshold)
        if probe_prefix <= 0:
            continue
        size_low, size_high = size_bounds(probe_size, similarity, threshold)
        admitted: set[int] = set()
        for position in range(probe_prefix):
            entry = postings.get(probe_ids[position])
            if entry is None:
                continue
            admitted.update(
                filter_token_postings(
                    entry[0],
                    entry[1],
                    entry[2],
                    probe_size=probe_size,
                    probe_position=position,
                    similarity=similarity,
                    threshold=threshold,
                    size_low=size_low,
                    size_high=size_high,
                )
            )
        if not admitted:
            continue
        candidates_total += len(admitted)
        source_text = source_values[row]
        # Candidate ids are ints, but sort anyway: emission order must come
        # from row ids, never from set iteration order.
        for target_row in sorted(admitted):
            overlap = intersect_count(probe_ids, target_ids[target_row])
            score = similarity_score(
                overlap, probe_size, target_sizes[target_row], similarity
            )
            if score >= threshold:
                pairs.append(
                    RowPair(
                        source=source_text,
                        target=target_values[target_row],
                        source_row=row,
                        target_row=target_row,
                    )
                )
    return pairs, candidates_total


class SetSimRowMatcher(RowMatcher):
    """Prefix-filtered set-similarity candidate pair detection.

    Exact by construction: the match set equals brute-force all-pairs
    similarity at the same threshold (see the module docstring for the
    argument), serial and sharded, at any worker count.
    """

    def __init__(self, config: MatchingConfig | None = None) -> None:
        self._config = config or MatchingConfig(engine="setsim")

    @property
    def config(self) -> MatchingConfig:
        """The matcher configuration (``setsim_*`` fields drive this engine)."""
        return self._config

    def match(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> list[RowPair]:
        return self.match_values(
            list(source[source_column]), list(target[target_column])
        )

    def match_values(
        self,
        source_values: Sequence[str],
        target_values: Sequence[str],
    ) -> list[RowPair]:
        """Match plain value lists (row ids are positions in the lists)."""
        return self.match_values_with_stats(source_values, target_values)[0]

    def match_values_with_stats(
        self,
        source_values: Sequence[str],
        target_values: Sequence[str],
    ) -> tuple[list[RowPair], SetSimStats]:
        """Match and report the candidate-pruning statistics.

        The perf harness uses this entry point: the pruning ratio
        (``stats.candidates / stats.all_pairs``) is the headline number of
        the engine comparison.
        """
        config = self._config
        source_values = list(source_values)
        target_values = list(target_values)
        tokenize = tokenizer_for(
            config.setsim_tokenizer,
            qgram_size=config.setsim_qgram,
            lowercase=config.lowercase,
        )
        source_tokens = [tokenize(value) for value in source_values]
        target_tokens = [tokenize(value) for value in target_values]
        # One global ordering over BOTH columns: source prefixes and target
        # prefixes must rank tokens identically or the prefix-filter theorem
        # does not hold.
        order = build_token_order([*source_tokens, *target_tokens])
        source_ids = [ordered_token_ids(tokens, order) for tokens in source_tokens]
        target_ids = [ordered_token_ids(tokens, order) for tokens in target_tokens]
        index = SetSimIndex(
            target_ids, config.setsim_similarity, config.setsim_threshold
        )
        num_workers = tuned_num_workers(
            config.num_workers,
            len(source_values),
            min_items_per_worker=config.min_rows_per_worker,
        )
        if num_workers > 1 and target_values:
            from repro.parallel.setsim import sharded_setsim_match

            pairs, candidates = sharded_setsim_match(
                index,
                source_ids,
                source_values,
                target_values,
                num_workers=num_workers,
                task_timeout=config.task_timeout_s or None,
                max_shard_retries=config.shard_retries,
                serial_fallback=config.serial_fallback,
            )
        else:
            pairs, candidates = match_token_rows(
                index, source_ids, source_values, target_values
            )
        stats = SetSimStats(
            num_source_rows=len(source_values),
            num_target_rows=len(target_values),
            all_pairs=len(source_values) * len(target_values),
            candidates=candidates,
            matches=len(pairs),
        )
        return pairs, stats
