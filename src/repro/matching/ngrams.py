"""Character n-gram extraction for the row matcher.

The matcher works on lower-cased character n-grams; joinable rows are
expected to share at least one reasonably rare n-gram (the "copying
relationship" the whole approach is built on).
"""

from __future__ import annotations

from collections.abc import Iterator


def character_ngrams(text: str, size: int, *, lowercase: bool = True) -> list[str]:
    """Return all character n-grams of *size* in *text* (with duplicates).

    Returns an empty list when the text is shorter than *size*.
    """
    if size <= 0:
        raise ValueError(f"n-gram size must be positive, got {size}")
    if lowercase:
        text = text.lower()
    if len(text) < size:
        return []
    return [text[i : i + size] for i in range(len(text) - size + 1)]


def unique_ngrams(text: str, size: int, *, lowercase: bool = True) -> set[str]:
    """The distinct character n-grams of *size* in *text*."""
    return set(character_ngrams(text, size, lowercase=lowercase))


def unique_ngrams_by_size(
    text: str,
    min_size: int,
    max_size: int,
    *,
    lowercase: bool = True,
) -> Iterator[list[str]]:
    """Yield the distinct n-grams of each size in ``[min_size, max_size]``.

    One list per size, smallest size first, grams in first-occurrence order;
    sizes larger than the text yield nothing (the iteration simply stops, as
    in Algorithm 1's scan).  This is the tokenisation primitive of the
    packed inverted index: the text is lower-cased once (not once per size)
    and each size is extracted in a single sweep.

    The dedup is *order-preserving* (``dict.fromkeys``), not a set: gram
    enumeration order feeds the index's postings-dict insertion order, and a
    set's iteration order depends on the per-interpreter string hash seed —
    first-occurrence order makes index builds reproducible across
    interpreters, which is what lets the process-sharded build
    (:mod:`repro.parallel.index_build`) merge to a byte-identical index
    even under the ``spawn`` start method.
    """
    if min_size <= 0:
        raise ValueError(f"min n-gram size must be positive, got {min_size}")
    if max_size < min_size:
        raise ValueError(
            f"max n-gram size ({max_size}) must be >= min size ({min_size})"
        )
    if lowercase:
        text = text.lower()
    length = len(text)
    for size in range(min_size, min(max_size, length) + 1):
        yield list(
            dict.fromkeys(
                text[start : start + size] for start in range(length - size + 1)
            )
        )


def ngrams_in_range(
    text: str,
    min_size: int,
    max_size: int,
    *,
    lowercase: bool = True,
) -> Iterator[str]:
    """Yield every n-gram of every size in ``[min_size, max_size]``.

    Sizes larger than the text produce nothing; duplicates are yielded as they
    occur (the inverted index deduplicates per row).
    """
    if min_size <= 0:
        raise ValueError(f"min n-gram size must be positive, got {min_size}")
    if max_size < min_size:
        raise ValueError(
            f"max n-gram size ({max_size}) must be >= min size ({min_size})"
        )
    if lowercase:
        text = text.lower()
    for size in range(min_size, min(max_size, len(text)) + 1):
        for start in range(len(text) - size + 1):
            yield text[start : start + size]
