"""Character n-gram extraction for the row matcher.

The matcher works on lower-cased character n-grams; joinable rows are
expected to share at least one reasonably rare n-gram (the "copying
relationship" the whole approach is built on).
"""

from __future__ import annotations

from collections.abc import Iterator


def character_ngrams(text: str, size: int, *, lowercase: bool = True) -> list[str]:
    """Return all character n-grams of *size* in *text* (with duplicates).

    Returns an empty list when the text is shorter than *size*.
    """
    if size <= 0:
        raise ValueError(f"n-gram size must be positive, got {size}")
    if lowercase:
        text = text.lower()
    if len(text) < size:
        return []
    return [text[i : i + size] for i in range(len(text) - size + 1)]


def unique_ngrams(text: str, size: int, *, lowercase: bool = True) -> set[str]:
    """The distinct character n-grams of *size* in *text*."""
    return set(character_ngrams(text, size, lowercase=lowercase))


def unique_ngrams_by_size(
    text: str,
    min_size: int,
    max_size: int,
    *,
    lowercase: bool = True,
) -> Iterator[set[str]]:
    """Yield the set of distinct n-grams of each size in ``[min_size, max_size]``.

    One set per size, smallest size first; sizes larger than the text yield
    nothing (the iteration simply stops, as in Algorithm 1's scan).  This is
    the tokenisation primitive of the packed inverted index: the text is
    lower-cased once (not once per size) and each size is extracted with a
    single set-comprehension sweep.
    """
    if min_size <= 0:
        raise ValueError(f"min n-gram size must be positive, got {min_size}")
    if max_size < min_size:
        raise ValueError(
            f"max n-gram size ({max_size}) must be >= min size ({min_size})"
        )
    if lowercase:
        text = text.lower()
    length = len(text)
    for size in range(min_size, min(max_size, length) + 1):
        yield {text[start : start + size] for start in range(length - size + 1)}


def ngrams_in_range(
    text: str,
    min_size: int,
    max_size: int,
    *,
    lowercase: bool = True,
) -> Iterator[str]:
    """Yield every n-gram of every size in ``[min_size, max_size]``.

    Sizes larger than the text produce nothing; duplicates are yielded as they
    occur (the inverted index deduplicates per row).
    """
    if min_size <= 0:
        raise ValueError(f"min n-gram size must be positive, got {min_size}")
    if max_size < min_size:
        raise ValueError(
            f"max n-gram size ({max_size}) must be >= min size ({min_size})"
        )
    if lowercase:
        text = text.lower()
    for size in range(min_size, min(max_size, len(text)) + 1):
        for start in range(len(text) - size + 1):
            yield text[start : start + size]
