"""Command-line interface.

The CLI exposes the main workflows over CSV files so the system can be used
without writing Python:

``python -m repro discover``
    Learn transformations from two CSV columns (optionally with a golden
    matching) and print the covering set.

``python -m repro join``
    Run the end-to-end pipeline (row matching + discovery + transformation
    join) on two CSV files and write the joined table.

``python -m repro fit``
    Train once: run matching + discovery and save the resulting
    :class:`~repro.model.artifact.TransformationModel` as versioned JSON.

``python -m repro apply``
    Serve many times: load a saved model and join two CSV files with it —
    no matching, no re-discovery.

``python -m repro benchmark``
    Generate one of the built-in benchmark datasets to a directory as CSV
    files, so external tools can consume the same workloads.

``python -m repro serve``
    Serve a directory of saved models over HTTP: ``POST /join/<model>``
    joins a source batch against a target column with warm caches,
    ``GET /models`` and ``GET /stats`` introspect the registry.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.core.config import DiscoveryConfig
from repro.core.discovery import TransformationDiscovery
from repro.datasets.registry import available_datasets, load_dataset
from repro.evaluation.report import format_table
from repro.join.pipeline import JoinPipeline
from repro.matching.row_matcher import (
    MATCHER_ENGINES,
    SETSIM_SIMILARITIES,
    MatchingConfig,
    RowMatcher,
    create_row_matcher,
)
from repro.matching.tokenize import TOKENIZERS
from repro.model import ModelFormatError, TransformationModel
from repro.parallel import ShardError
from repro.table.io import TableReadError, read_csv, write_csv


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Learn string transformations that make differently formatted "
            "table columns equi-joinable (reproduction of Dargahi Nobari & "
            "Rafiei, ICDE 2022)."
        ),
    )
    parser.add_argument(
        "--kernels",
        choices=("auto", "python", "numpy"),
        default="auto",
        help=(
            "kernel tier for the vectorized fast paths: auto (default) uses "
            "numpy when importable, python forces the byte-identical "
            "pure-Python reference, numpy demands the vectorized tier and "
            "fails fast when numpy is missing; equivalent to setting "
            "REPRO_KERNELS (results are identical on every tier)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    discover = subparsers.add_parser(
        "discover", help="learn transformations between two CSV columns"
    )
    _add_pair_arguments(discover)
    discover.add_argument(
        "--top-k", type=int, default=5, help="how many top transformations to print"
    )

    join = subparsers.add_parser(
        "join", help="run the end-to-end transformation join on two CSV files"
    )
    _add_pair_arguments(join)
    join.add_argument(
        "--output", type=Path, required=True, help="path of the joined CSV to write"
    )
    join.add_argument(
        "--min-support",
        type=float,
        default=0.05,
        help="minimum coverage fraction for a transformation to be applied",
    )

    fit = subparsers.add_parser(
        "fit",
        help="learn a transformation model from two CSV files and save it",
    )
    _add_pair_arguments(fit)
    fit.add_argument(
        "--save",
        type=Path,
        required=True,
        help="path the fitted model JSON is written to",
    )
    fit.add_argument(
        "--min-support",
        type=float,
        default=0.05,
        help=(
            "minimum coverage fraction a transformation needs at apply time "
            "(recorded in the model)"
        ),
    )

    apply_cmd = subparsers.add_parser(
        "apply",
        help=(
            "join two CSV files with a previously fitted model "
            "(no re-discovery)"
        ),
    )
    apply_cmd.add_argument(
        "source_csv", type=Path, help="source table (CSV with header)"
    )
    apply_cmd.add_argument(
        "target_csv", type=Path, help="target table (CSV with header)"
    )
    apply_cmd.add_argument(
        "--model",
        type=Path,
        required=True,
        help="model JSON written by `repro fit --save`",
    )
    apply_cmd.add_argument(
        "--source-column", required=True, help="join column in the source table"
    )
    apply_cmd.add_argument(
        "--target-column", required=True, help="join column in the target table"
    )
    apply_cmd.add_argument(
        "--output", type=Path, required=True, help="path of the joined CSV to write"
    )
    apply_cmd.add_argument(
        "--num-workers",
        type=int,
        default=None,
        help=(
            "worker processes for the apply stage (1 = serial, 0 = all "
            "cores; default: REPRO_NUM_WORKERS or 1); results are identical "
            "at any worker count"
        ),
    )
    _add_fault_arguments(apply_cmd)

    benchmark = subparsers.add_parser(
        "benchmark", help="materialize a built-in benchmark dataset as CSV files"
    )
    benchmark.add_argument(
        "name", choices=available_datasets(), help="benchmark dataset to generate"
    )
    benchmark.add_argument(
        "--output-dir", type=Path, required=True, help="directory to write CSVs into"
    )
    benchmark.add_argument(
        "--scale", type=float, default=1.0, help="dataset scale (1.0 = paper scale)"
    )
    benchmark.add_argument("--seed", type=int, default=0, help="generator seed")

    serve = subparsers.add_parser(
        "serve",
        help="serve a directory of fitted models as a long-lived HTTP join service",
    )
    serve.add_argument(
        "model_dir",
        type=Path,
        help="directory of model JSON files written by `repro fit --save`; "
        "each file serves under its stem, e.g. products.json -> "
        "POST /join/products",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--num-workers",
        type=int,
        default=None,
        help=(
            "worker processes for the apply stage of each request (1 = "
            "serial, 0 = all cores; default: REPRO_NUM_WORKERS or 1)"
        ),
    )
    serve.add_argument(
        "--joiner-cache",
        type=int,
        default=16,
        help="compiled-joiner LRU capacity (default: %(default)s)",
    )
    serve.add_argument(
        "--index-cache",
        type=int,
        default=32,
        help="target-index LRU capacity (default: %(default)s)",
    )
    serve.add_argument(
        "--no-micro-batch",
        action="store_true",
        help="disable coalescing of concurrent same-model requests",
    )
    serve.add_argument(
        "--request-timeout-s",
        type=float,
        default=30.0,
        help=(
            "server-wide request deadline in seconds for requests that send "
            "no deadline_ms; expired requests answer 504 (0 = unbounded; "
            "default: %(default)s)"
        ),
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help=(
            "maximum concurrently executing join requests; more wait in a "
            "bounded queue (default: %(default)s)"
        ),
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help=(
            "maximum queued join requests on top of --max-inflight; beyond "
            "this, requests are shed with 429 (default: %(default)s)"
        ),
    )
    serve.add_argument(
        "--max-body-mb",
        type=float,
        default=8.0,
        help=(
            "request-body size cap in MiB; larger bodies answer 413 "
            "(0 = unbounded; default: %(default)s)"
        ),
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help=(
            "consecutive typed failures that open a model's circuit "
            "breaker (default: %(default)s)"
        ),
    )
    serve.add_argument(
        "--breaker-cooldown-s",
        type=float,
        default=2.0,
        help=(
            "open-breaker cool-down before a half-open probe is admitted "
            "(default: %(default)s)"
        ),
    )
    _add_fault_arguments(serve)
    return parser


def _add_pair_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("source_csv", type=Path, help="source table (CSV with header)")
    parser.add_argument("target_csv", type=Path, help="target table (CSV with header)")
    parser.add_argument(
        "--source-column", required=True, help="join column in the source table"
    )
    parser.add_argument(
        "--target-column", required=True, help="join column in the target table"
    )
    parser.add_argument(
        "--max-placeholders",
        type=int,
        default=3,
        help="maximum number of placeholders per transformation",
    )
    parser.add_argument(
        "--sample-size",
        type=int,
        default=0,
        help="sample size for candidate generation (0 = use all candidate pairs)",
    )
    parser.add_argument(
        "--matcher",
        choices=MATCHER_ENGINES,
        default=None,
        help=(
            "matching engine: ngram (Algorithm 1's representative n-grams) "
            "or setsim (prefix-filtered set-similarity); default: "
            "REPRO_MATCHER or ngram"
        ),
    )
    parser.add_argument(
        "--min-ngram", type=int, default=4, help="smallest n-gram used by the matcher"
    )
    parser.add_argument(
        "--max-ngram", type=int, default=20, help="largest n-gram used by the matcher"
    )
    parser.add_argument(
        "--setsim-similarity",
        choices=SETSIM_SIMILARITIES,
        default="jaccard",
        help="similarity measure of the setsim engine (default: %(default)s)",
    )
    parser.add_argument(
        "--setsim-threshold",
        type=float,
        default=0.7,
        help=(
            "setsim similarity threshold: in (0, 1] for jaccard/cosine, an "
            "absolute token count >= 1 for overlap (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--setsim-tokenizer",
        choices=TOKENIZERS,
        default="whitespace",
        help=(
            "setsim tokenization: whitespace for token-rich strings, qgram "
            "for short keys (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--setsim-qgram",
        type=int,
        default=4,
        help="q-gram size of the setsim qgram tokenizer (default: %(default)s)",
    )
    parser.add_argument(
        "--num-workers",
        type=int,
        default=None,
        help=(
            "worker processes for row matching, coverage and the apply "
            "stage (1 = serial, 0 = all cores; default: REPRO_NUM_WORKERS "
            "or 1); results are identical at any worker count"
        ),
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=0.0,
        help=(
            "wall-clock budget in seconds for transformation discovery "
            "(0 = unbounded); when exhausted, the best cover found so far "
            "is returned and a warning printed to stderr"
        ),
    )
    _add_fault_arguments(parser)


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance knobs shared by every sharded stage."""
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=0.0,
        help=(
            "wall-clock bound in seconds for each sharded parallel map "
            "(0 = unbounded); shards that miss it are recomputed serially"
        ),
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=2,
        help="pool retries per crashed or failed shard before falling back",
    )
    parser.add_argument(
        "--no-serial-fallback",
        action="store_true",
        help=(
            "fail with a typed error instead of recomputing failed shards "
            "serially in the parent process"
        ),
    )


def _discovery_config(args: argparse.Namespace) -> DiscoveryConfig:
    config = DiscoveryConfig(
        max_placeholders=args.max_placeholders,
        sample_size=args.sample_size,
        time_budget_s=args.time_budget,
        task_timeout_s=args.task_timeout,
        shard_retries=args.shard_retries,
        serial_fallback=not args.no_serial_fallback,
    )
    if args.num_workers is not None:
        config = config.replace(num_workers=args.num_workers)
    return config


def _matcher(args: argparse.Namespace) -> RowMatcher:
    kwargs = dict(
        min_ngram=args.min_ngram,
        max_ngram=args.max_ngram,
        setsim_similarity=args.setsim_similarity,
        setsim_threshold=args.setsim_threshold,
        setsim_tokenizer=args.setsim_tokenizer,
        setsim_qgram=args.setsim_qgram,
        task_timeout_s=args.task_timeout,
        shard_retries=args.shard_retries,
        serial_fallback=not args.no_serial_fallback,
    )
    if args.matcher is not None:
        # Explicit flag wins; otherwise MatchingConfig reads REPRO_MATCHER.
        kwargs["engine"] = args.matcher
    if args.num_workers is not None:
        kwargs["num_workers"] = args.num_workers
    return create_row_matcher(MatchingConfig(**kwargs))


def _warn_if_budget_exhausted(stats) -> None:
    """One stderr line when discovery degraded to a best-so-far result.

    Budget exhaustion is a *degraded success*, not a failure: the partial
    cover is valid for the rows that were processed, so the command still
    exits 0 — but the user must be told the result is partial.
    """
    if isinstance(stats, dict):
        exhausted = bool(stats.get("budget_exhausted"))
        stage = stats.get("budget_stage")
        rows = stats.get("rows_fully_processed")
    else:
        exhausted = stats.budget_exhausted
        stage = stats.budget_stage
        rows = stats.rows_fully_processed
    if not exhausted:
        return
    detail = f" during {stage}" if stage else ""
    if rows is not None:
        detail += f" after {rows} rows"
    print(
        f"warning: discovery time budget exhausted{detail}; "
        "result is the best cover found in time",
        file=sys.stderr,
    )


def run_discover(args: argparse.Namespace) -> int:
    """The ``discover`` sub-command."""
    source = read_csv(args.source_csv)
    target = read_csv(args.target_csv)
    matcher = _matcher(args)
    candidates = matcher.match(
        source,
        target,
        source_column=args.source_column,
        target_column=args.target_column,
    )
    engine = TransformationDiscovery(_discovery_config(args).replace(top_k=args.top_k))
    result = engine.discover(candidates)
    _warn_if_budget_exhausted(result.stats)

    print(f"candidate row pairs: {len(candidates)}")
    print(f"coverage of best transformation: {result.top_coverage:.3f}")
    print(f"coverage of covering set:        {result.cover_coverage:.3f}")
    print()
    print("top transformations:")
    for coverage in result.top:
        print(f"  covers {coverage.coverage:5d}: {coverage.transformation}")
    print()
    print("covering set:")
    for coverage in result.cover:
        print(f"  covers {coverage.coverage:5d}: {coverage.transformation}")
    return 0


def run_join(args: argparse.Namespace) -> int:
    """The ``join`` sub-command."""
    source = read_csv(args.source_csv)
    target = read_csv(args.target_csv)
    pipeline = JoinPipeline(
        matcher=_matcher(args),
        discovery_config=_discovery_config(args),
        min_support=args.min_support,
        materialize=True,
        num_workers=args.num_workers,
        task_timeout_s=args.task_timeout,
        shard_retries=args.shard_retries,
        serial_fallback=not args.no_serial_fallback,
    )
    outcome = pipeline.run(
        source,
        target,
        source_column=args.source_column,
        target_column=args.target_column,
    )
    _warn_if_budget_exhausted(outcome.discovery.stats)
    joined = outcome.joined_table
    assert joined is not None
    write_csv(joined, args.output)
    print(f"candidate row pairs: {outcome.candidate_pairs}")
    print(f"transformations applied: {len(outcome.discovery.cover)}")
    for coverage in outcome.discovery.cover:
        print(f"  covers {coverage.coverage:5d}: {coverage.transformation}")
    print(f"joined rows: {outcome.join.num_pairs}")
    print(f"wrote {args.output}")
    return 0


def run_fit(args: argparse.Namespace) -> int:
    """The ``fit`` sub-command: train once, save the model artifact."""
    source = read_csv(args.source_csv)
    target = read_csv(args.target_csv)
    pipeline = JoinPipeline(
        matcher=_matcher(args),
        discovery_config=_discovery_config(args),
        min_support=args.min_support,
        task_timeout_s=args.task_timeout,
        shard_retries=args.shard_retries,
        serial_fallback=not args.no_serial_fallback,
    )
    model = pipeline.fit(
        source,
        target,
        source_column=args.source_column,
        target_column=args.target_column,
    )
    _warn_if_budget_exhausted(model.stats)
    try:
        path = model.save(args.save)
    except OSError as error:
        # Same one-line error contract as `apply`'s load failures — an
        # unwritable path must not bury the message in a traceback.
        print(f"error: cannot write model to {args.save}: {error}", file=sys.stderr)
        return 1
    print(f"candidate row pairs: {model.num_candidate_pairs}")
    print(model.describe())
    print(f"wrote {path}")
    return 0


def run_apply(args: argparse.Namespace) -> int:
    """The ``apply`` sub-command: join with a saved model, no re-discovery."""
    try:
        model = TransformationModel.load(args.model)
    except (ModelFormatError, OSError) as error:
        # Corrupt, foreign, wrong-version and missing/unreadable model files
        # all get the same clean one-line error contract.
        print(f"error: {error}", file=sys.stderr)
        return 1
    source = read_csv(args.source_csv)
    target = read_csv(args.target_csv)
    # One code path for "apply a model to a table pair": the pipeline's
    # serving method (which joins once and materializes from the pairs).
    pipeline = JoinPipeline(
        materialize=True,
        num_workers=args.num_workers,
        task_timeout_s=args.task_timeout,
        shard_retries=args.shard_retries,
        serial_fallback=not args.no_serial_fallback,
    )
    applied = pipeline.apply(
        model,
        source,
        target,
        source_column=args.source_column,
        target_column=args.target_column,
    )
    joined = applied.joined_table
    assert joined is not None
    write_csv(joined, args.output)
    print(f"model: {args.model} ({model.num_transformations} transformations)")
    print(f"transformations applied: {len(applied.applied_transformations)}")
    for transformation in applied.applied_transformations:
        print(f"  {transformation}")
    print(f"joined rows: {applied.join.num_pairs}")
    print(f"wrote {args.output}")
    return 0


def run_benchmark(args: argparse.Namespace) -> int:
    """The ``benchmark`` sub-command."""
    dataset = load_dataset(args.name, scale=args.scale, seed=args.seed)
    output_dir = args.output_dir
    rows = []
    for pair in dataset:
        pair.save(output_dir)
        rows.append(
            {
                "pair": pair.name,
                "source_rows": pair.num_source_rows,
                "target_rows": pair.num_target_rows,
                "golden_pairs": len(pair.golden_pairs),
            }
        )
    print(format_table(rows, title=f"dataset {args.name} (scale={args.scale})"))
    print(f"wrote {3 * len(dataset)} CSV files to {output_dir}")
    return 0


def run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` sub-command: a long-lived HTTP join service."""
    # Imported here, not at module top: the serving stack (HTTP server,
    # registry, caches) is only needed by this one sub-command.
    from repro.serve import JoinServer

    if not args.model_dir.is_dir():
        print(f"error: model directory {args.model_dir} not found", file=sys.stderr)
        return 1
    with JoinServer(
        args.model_dir,
        host=args.host,
        port=args.port,
        num_workers=args.num_workers,
        joiner_cache_capacity=args.joiner_cache,
        index_cache_capacity=args.index_cache,
        micro_batch=not args.no_micro_batch,
        task_timeout_s=args.task_timeout,
        shard_retries=args.shard_retries,
        serial_fallback=not args.no_serial_fallback,
        request_timeout_s=args.request_timeout_s,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        max_body_bytes=int(args.max_body_mb * 1024 * 1024),
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
    ) as server:
        server.install_signal_handlers()
        models = server.engine.registry.list_models()
        print(f"serving {len(models)} model(s) from {args.model_dir}")
        for entry in models:
            if entry["ok"]:
                status = f"{entry['num_transformations']} transformations"
            else:
                status = f"load error: {entry['error']}"
            print(f"  {entry['name']}: {status}")
        print(f"listening on {server.url} (SIGTERM/SIGINT drains and exits)")
        server.serve_forever()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.kernels != "auto":
        # Write the override through the environment (so sharded workers
        # under the spawn start method re-resolve to the same tier) and
        # re-probe now — `--kernels numpy` on a numpy-less host must fail
        # here, not deep inside the first walk.
        from repro import kernels

        os.environ["REPRO_KERNELS"] = args.kernels
        try:
            kernels.refresh_tier()
        except ImportError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    handlers = {
        "discover": run_discover,
        "join": run_join,
        "fit": run_fit,
        "apply": run_apply,
        "benchmark": run_benchmark,
        "serve": run_serve,
    }
    try:
        return handlers[args.command](args)
    except (TableReadError, ShardError) as error:
        # Unreadable input and unrecoverable shard failures (crash/timeout
        # with serial fallback disabled, or the fallback itself failing)
        # share the one-line stderr contract: no traceback, exit code 1.
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
