"""The naive brute-force baseline (Section 3.1 of the paper).

The naive approach enumerates every transformation up to a maximum number of
units, where each unit is any enabled transformation unit with any parameter
assignment valid for the observed inputs, computes the coverage of each by
applying it to every pair, and then selects the maximum-coverage
transformation or a greedy cover.

The number of transformations is exponential in the transformation length, so
this baseline is only runnable on very small inputs (short strings, one or
two units).  It exists to (a) demonstrate the explosion the paper motivates
its approach with, and (b) cross-check the efficient algorithm on tiny cases
where exhaustive search is feasible.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from itertools import product

from repro.core.cover import greedy_minimal_cover, top_k_by_coverage
from repro.core.coverage import CoverageComputer, CoverageResult
from repro.core.pairs import RowPair, pairs_from_strings
from repro.core.transformation import Transformation
from repro.core.units import Literal, Split, SplitSubstr, Substr, TransformationUnit


@dataclass(frozen=True)
class NaiveConfig:
    """Bounds that keep the brute-force search finite.

    ``max_units`` is the maximum transformation length; ``max_length`` bounds
    the Substr/SplitSubstr position space; ``time_limit_seconds`` aborts the
    enumeration (the result then reflects the transformations enumerated so
    far, mimicking the paper's practice of reporting timeouts).
    """

    max_units: int = 2
    max_length: int = 12
    max_literal_length: int = 4
    include_split_substr: bool = False
    time_limit_seconds: float = 30.0
    max_transformations: int = 2_000_000

    def __post_init__(self) -> None:
        if self.max_units < 1:
            raise ValueError(f"max_units must be >= 1, got {self.max_units}")
        if self.max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {self.max_length}")


@dataclass
class NaiveResult:
    """Outcome of a naive enumeration run."""

    pairs: list[RowPair]
    top: list[CoverageResult] = field(default_factory=list)
    cover: list[CoverageResult] = field(default_factory=list)
    enumerated: int = 0
    timed_out: bool = False
    elapsed_seconds: float = 0.0

    @property
    def best(self) -> CoverageResult | None:
        """The highest-coverage transformation found (None when nothing was)."""
        return self.top[0] if self.top else None


class NaiveDiscovery:
    """Brute-force transformation enumeration."""

    def __init__(self, config: NaiveConfig | None = None) -> None:
        self._config = config or NaiveConfig()

    # ------------------------------------------------------------------ #
    # Unit enumeration
    # ------------------------------------------------------------------ #
    def enumerate_units(self, pairs: Sequence[RowPair]) -> list[TransformationUnit]:
        """Every unit with every parameter assignment valid for *pairs*.

        The parameter space is derived from the observed sources and targets:
        every substring position up to ``max_length``, every character of any
        source as a split delimiter, and every short substring of any target
        as a literal.
        """
        config = self._config
        max_len = min(
            config.max_length,
            max((len(p.source) for p in pairs), default=0),
        )
        units: list[TransformationUnit] = []

        for start in range(max_len):
            for end in range(start + 1, max_len + 1):
                units.append(Substr(start, end))

        delimiters = sorted({c for p in pairs for c in p.source})
        max_pieces = max(
            (p.source.count(c) + 1 for p in pairs for c in delimiters), default=1
        )
        for delimiter in delimiters:
            for index in range(1, max_pieces + 1):
                units.append(Split(delimiter, index))

        if config.include_split_substr:
            for delimiter in delimiters:
                for index in range(1, max_pieces + 1):
                    for start in range(max_len):
                        for end in range(start + 1, max_len + 1):
                            units.append(SplitSubstr(delimiter, index, start, end))

        literals = sorted(
            {
                p.target[i : i + length]
                for p in pairs
                for length in range(1, config.max_literal_length + 1)
                for i in range(len(p.target) - length + 1)
            }
        )
        units.extend(Literal(text) for text in literals)
        return units

    def enumerate_transformations(
        self, pairs: Sequence[RowPair]
    ) -> Iterator[Transformation]:
        """Every transformation of up to ``max_units`` units (lazily)."""
        units = self.enumerate_units(pairs)
        for length in range(1, self._config.max_units + 1):
            for combination in product(units, repeat=length):
                yield Transformation(combination)

    # ------------------------------------------------------------------ #
    # Discovery
    # ------------------------------------------------------------------ #
    def discover_from_strings(self, pairs: Sequence[tuple[str, str]]) -> NaiveResult:
        """Convenience wrapper over plain string tuples."""
        return self.discover(pairs_from_strings(pairs))

    def discover(self, pairs: Sequence[RowPair]) -> NaiveResult:
        """Run the brute-force search (subject to the configured bounds)."""
        pairs = list(pairs)
        if not pairs:
            return NaiveResult(pairs=[])
        config = self._config
        computer = CoverageComputer(pairs, use_unit_cache=False)
        results: list[CoverageResult] = []
        started = time.perf_counter()
        enumerated = 0
        timed_out = False
        for transformation in self.enumerate_transformations(pairs):
            enumerated += 1
            coverage = computer.coverage_of(transformation)
            if coverage.coverage > 0:
                results.append(coverage)
            if enumerated >= config.max_transformations:
                timed_out = True
                break
            if (
                enumerated % 1000 == 0
                and time.perf_counter() - started > config.time_limit_seconds
            ):
                timed_out = True
                break
        elapsed = time.perf_counter() - started
        top = top_k_by_coverage(results, 5) if results else []
        cover = greedy_minimal_cover(results) if results else []
        return NaiveResult(
            pairs=pairs,
            top=top,
            cover=cover,
            enumerated=enumerated,
            timed_out=timed_out,
            elapsed_seconds=elapsed,
        )
