"""Baseline methods the paper compares against.

* :mod:`repro.baselines.naive` — the brute-force enumeration baseline of
  Section 3.1 (only tractable on tiny inputs; used for correctness checks).
* :mod:`repro.baselines.autojoin` — a reimplementation of Auto-Join
  (Zhu et al., VLDB 2017) as described in Section 3.2: subset sampling plus
  recursive best-unit search with backtracking over the full parameter space.
* :mod:`repro.baselines.fuzzyjoin` — an Auto-FuzzyJoin-style similarity join
  (Li et al., SIGMOD 2021): no transformations, joins rows whose textual
  similarity clears an automatically chosen threshold.
* :mod:`repro.baselines.setsimjoin` — exact prefix-filtered set-similarity
  joins (py_stringsimjoin-style): jaccard/cosine/overlap joins of rows whose
  token-set similarity clears a fixed threshold, backed by the setsim
  matching engine.
"""

from repro.baselines.autojoin import AutoJoin, AutoJoinConfig, AutoJoinResult
from repro.baselines.fuzzyjoin import AutoFuzzyJoin, FuzzyJoinConfig
from repro.baselines.naive import NaiveDiscovery, NaiveConfig
from repro.baselines.setsimjoin import (
    SetSimJoinResult,
    cosine_join,
    jaccard_join,
    overlap_join,
    set_similarity_join_values,
)

__all__ = [
    "AutoFuzzyJoin",
    "AutoJoin",
    "AutoJoinConfig",
    "AutoJoinResult",
    "FuzzyJoinConfig",
    "NaiveConfig",
    "NaiveDiscovery",
    "SetSimJoinResult",
    "cosine_join",
    "jaccard_join",
    "overlap_join",
    "set_similarity_join_values",
]
