"""An Auto-FuzzyJoin-style similarity-join baseline (Li et al., SIGMOD 2021).

Auto-FuzzyJoin ("AFJ") joins rows whose textual similarity clears a
threshold that the system picks automatically, without labeled examples and
without learning transformations.  The published system explores a space of
similarity functions and tokenizations and uses an unsupervised
precision-estimation procedure; this reimplementation keeps the essential
behaviour the paper's comparison relies on:

* several candidate similarity configurations (token Jaccard, character
  3-gram Jaccard, containment),
* for each configuration and each threshold from a grid, a one-to-many join
  of every source row to the target rows above the threshold,
* an unsupervised precision proxy — the fraction of joined source rows with a
  *unique* best match whose score clearly separates from the runner-up — used
  to select the configuration/threshold, mimicking AFJ's precision-first
  auto-programming.

Like the original, AFJ returns row pairs only; it produces no transformations
and therefore no interpretable join patterns, which is what Table 3's
comparison highlights.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.table.table import Table
from repro.utils.text import tokenize


@dataclass(frozen=True)
class FuzzyJoinConfig:
    """Parameters of the similarity-join baseline."""

    ngram_size: int = 3
    thresholds: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
    similarities: tuple[str, ...] = ("token_jaccard", "ngram_jaccard", "containment")
    target_precision: float = 0.9
    lowercase: bool = True

    def __post_init__(self) -> None:
        if self.ngram_size <= 0:
            raise ValueError(f"ngram_size must be positive, got {self.ngram_size}")
        if not self.thresholds:
            raise ValueError("at least one threshold is required")
        for threshold in self.thresholds:
            if not 0.0 <= threshold <= 1.0:
                raise ValueError(f"thresholds must be in [0, 1], got {threshold}")
        unknown = [s for s in self.similarities if s not in _SIMILARITY_NAMES]
        if unknown:
            raise ValueError(
                f"unknown similarity functions {unknown}; valid: {_SIMILARITY_NAMES}"
            )


@dataclass
class FuzzyJoinResult:
    """Row pairs produced by the similarity join plus the chosen configuration."""

    pairs: list[tuple[int, int]] = field(default_factory=list)
    similarity: str = ""
    threshold: float = 0.0
    estimated_precision: float = 0.0

    def as_set(self) -> set[tuple[int, int]]:
        """The joined pairs as a set."""
        return set(self.pairs)


_SIMILARITY_NAMES = ("token_jaccard", "ngram_jaccard", "containment")


def _token_set(text: str, lowercase: bool) -> frozenset[str]:
    if lowercase:
        text = text.lower()
    return frozenset(tokenize(text))


def _ngram_set(text: str, size: int, lowercase: bool) -> frozenset[str]:
    if lowercase:
        text = text.lower()
    if len(text) < size:
        return frozenset({text}) if text else frozenset()
    return frozenset(text[i : i + size] for i in range(len(text) - size + 1))


def _jaccard(left: frozenset[str], right: frozenset[str]) -> float:
    if not left or not right:
        return 0.0
    intersection = len(left & right)
    if intersection == 0:
        return 0.0
    return intersection / len(left | right)


def _containment(left: frozenset[str], right: frozenset[str]) -> float:
    if not left or not right:
        return 0.0
    return len(left & right) / min(len(left), len(right))


class AutoFuzzyJoin:
    """Similarity join with automatic configuration selection."""

    def __init__(self, config: FuzzyJoinConfig | None = None) -> None:
        self._config = config or FuzzyJoinConfig()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def join_values(
        self,
        source_values: Sequence[str],
        target_values: Sequence[str],
    ) -> FuzzyJoinResult:
        """Join two value lists; row ids are list positions."""
        config = self._config
        best_result = FuzzyJoinResult()
        best_score = -1.0
        for similarity in config.similarities:
            matrix = self._similarity_matrix(source_values, target_values, similarity)
            for threshold in config.thresholds:
                pairs = self._join_at_threshold(matrix, threshold)
                if not pairs:
                    continue
                precision_proxy = self._estimate_precision(matrix, pairs)
                # Prefer configurations that look precise, then more complete.
                score = (
                    min(precision_proxy, config.target_precision),
                    len(pairs),
                )
                flat_score = score[0] * 1_000_000 + score[1]
                if flat_score > best_score:
                    best_score = flat_score
                    best_result = FuzzyJoinResult(
                        pairs=pairs,
                        similarity=similarity,
                        threshold=threshold,
                        estimated_precision=precision_proxy,
                    )
        return best_result

    def join(
        self,
        source: Table,
        target: Table,
        *,
        source_column: str,
        target_column: str,
    ) -> FuzzyJoinResult:
        """Join two tables on the given columns."""
        return self.join_values(
            list(source[source_column]), list(target[target_column])
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _similarity_matrix(
        self,
        source_values: Sequence[str],
        target_values: Sequence[str],
        similarity: str,
    ) -> list[list[float]]:
        config = self._config
        if similarity == "token_jaccard":
            source_sets = [_token_set(v, config.lowercase) for v in source_values]
            target_sets = [_token_set(v, config.lowercase) for v in target_values]
            measure = _jaccard
        elif similarity == "ngram_jaccard":
            source_sets = [
                _ngram_set(v, config.ngram_size, config.lowercase)
                for v in source_values
            ]
            target_sets = [
                _ngram_set(v, config.ngram_size, config.lowercase)
                for v in target_values
            ]
            measure = _jaccard
        else:  # containment
            source_sets = [
                _ngram_set(v, config.ngram_size, config.lowercase)
                for v in source_values
            ]
            target_sets = [
                _ngram_set(v, config.ngram_size, config.lowercase)
                for v in target_values
            ]
            measure = _containment
        return [
            [measure(source_set, target_set) for target_set in target_sets]
            for source_set in source_sets
        ]

    @staticmethod
    def _join_at_threshold(
        matrix: list[list[float]], threshold: float
    ) -> list[tuple[int, int]]:
        """Join every source row to its best target row above the threshold."""
        pairs: list[tuple[int, int]] = []
        for source_row, scores in enumerate(matrix):
            if not scores:
                continue
            best_target = max(range(len(scores)), key=lambda j: scores[j])
            if scores[best_target] >= threshold:
                pairs.append((source_row, best_target))
        return pairs

    @staticmethod
    def _estimate_precision(
        matrix: list[list[float]], pairs: list[tuple[int, int]]
    ) -> float:
        """Unsupervised precision proxy: margin between best and second best.

        A joined pair looks reliable when the chosen target's score clearly
        separates from the runner-up for the same source row; the proxy is
        the fraction of joined pairs with a separation of at least 20 % of
        the best score (or a unique candidate).
        """
        if not pairs:
            return 0.0
        confident = 0
        for source_row, target_row in pairs:
            scores = matrix[source_row]
            best = scores[target_row]
            runner_up = max(
                (score for j, score in enumerate(scores) if j != target_row),
                default=0.0,
            )
            if best > 0 and (runner_up == 0.0 or (best - runner_up) / best >= 0.2):
                confident += 1
        return confident / len(pairs)
