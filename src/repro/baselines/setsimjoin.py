"""Standalone set-similarity joins (py_stringsimjoin-style baselines).

The paper's comparison tables need real set-similarity competitors, not just
matching engines buried inside the pipeline: a set-similarity join equi-joins
rows whose *token-set* similarity clears a threshold, with no learned
transformations and therefore no interpretable join patterns.  This module
exposes the three classic measures as one-call joins —

* :func:`jaccard_join` — ``|x ∩ y| / |x ∪ y| >= t``,
* :func:`cosine_join` — ``|x ∩ y| / sqrt(|x|·|y|) >= t``,
* :func:`overlap_join` — ``|x ∩ y| >= T`` (an absolute token count),

each backed by the prefix-filtered
:class:`~repro.matching.setsim.SetSimRowMatcher`, so the baselines run at
engine speed and are exact by the same argument (conservative filters, exact
verification).  Results carry the per-pair similarity scores and the
candidate-pruning statistics so evaluation tables can report both quality
and the work the prefix filter saved.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.matching.row_matcher import MatchingConfig
from repro.matching.setsim import (
    SetSimRowMatcher,
    SetSimStats,
    similarity_score,
)
from repro.matching.tokenize import tokenizer_for
from repro.table.table import Table


@dataclass
class SetSimJoinResult:
    """Row pairs produced by a set-similarity join.

    ``pairs`` are (source_row, target_row) index pairs; ``scores`` is the
    parallel list of exact similarity values (for overlap, the absolute
    token-overlap count).  ``stats`` reports the candidate-pruning work of
    the prefix-filtered engine that produced the join.
    """

    pairs: list[tuple[int, int]] = field(default_factory=list)
    scores: list[float] = field(default_factory=list)
    similarity: str = ""
    threshold: float = 0.0
    stats: SetSimStats | None = None

    def as_set(self) -> set[tuple[int, int]]:
        """The joined pairs as a set."""
        return set(self.pairs)


def set_similarity_join_values(
    source_values: Sequence[str],
    target_values: Sequence[str],
    *,
    similarity: str,
    threshold: float,
    tokenizer: str = "whitespace",
    qgram_size: int = 4,
    lowercase: bool = True,
    num_workers: int = 1,
) -> SetSimJoinResult:
    """Join two value lists on token-set similarity; row ids are positions.

    Exact: the returned pairs are identical to brute-force all-pairs
    similarity at the same threshold (the matcher's filters only prune pairs
    that provably cannot clear it).
    """
    config = MatchingConfig(
        engine="setsim",
        setsim_similarity=similarity,
        setsim_threshold=threshold,
        setsim_tokenizer=tokenizer,
        setsim_qgram=qgram_size,
        lowercase=lowercase,
        num_workers=num_workers,
    )
    matcher = SetSimRowMatcher(config)
    row_pairs, stats = matcher.match_values_with_stats(source_values, target_values)
    tokenize = tokenizer_for(tokenizer, qgram_size=qgram_size, lowercase=lowercase)
    source_sets = [frozenset(tokenize(value)) for value in source_values]
    target_sets = [frozenset(tokenize(value)) for value in target_values]
    pairs: list[tuple[int, int]] = []
    scores: list[float] = []
    for pair in row_pairs:
        left = source_sets[pair.source_row]
        right = target_sets[pair.target_row]
        pairs.append((pair.source_row, pair.target_row))
        scores.append(
            similarity_score(len(left & right), len(left), len(right), similarity)
        )
    return SetSimJoinResult(
        pairs=pairs,
        scores=scores,
        similarity=similarity,
        threshold=threshold,
        stats=stats,
    )


def _join_tables(
    source: Table,
    target: Table,
    *,
    source_column: str,
    target_column: str,
    similarity: str,
    threshold: float,
    tokenizer: str,
    qgram_size: int,
    lowercase: bool,
    num_workers: int,
) -> SetSimJoinResult:
    return set_similarity_join_values(
        list(source[source_column]),
        list(target[target_column]),
        similarity=similarity,
        threshold=threshold,
        tokenizer=tokenizer,
        qgram_size=qgram_size,
        lowercase=lowercase,
        num_workers=num_workers,
    )


def jaccard_join(
    source: Table,
    target: Table,
    *,
    source_column: str,
    target_column: str,
    threshold: float = 0.7,
    tokenizer: str = "whitespace",
    qgram_size: int = 4,
    lowercase: bool = True,
    num_workers: int = 1,
) -> SetSimJoinResult:
    """Join rows whose token-set Jaccard similarity is at least *threshold*."""
    return _join_tables(
        source,
        target,
        source_column=source_column,
        target_column=target_column,
        similarity="jaccard",
        threshold=threshold,
        tokenizer=tokenizer,
        qgram_size=qgram_size,
        lowercase=lowercase,
        num_workers=num_workers,
    )


def cosine_join(
    source: Table,
    target: Table,
    *,
    source_column: str,
    target_column: str,
    threshold: float = 0.7,
    tokenizer: str = "whitespace",
    qgram_size: int = 4,
    lowercase: bool = True,
    num_workers: int = 1,
) -> SetSimJoinResult:
    """Join rows whose token-set cosine similarity is at least *threshold*."""
    return _join_tables(
        source,
        target,
        source_column=source_column,
        target_column=target_column,
        similarity="cosine",
        threshold=threshold,
        tokenizer=tokenizer,
        qgram_size=qgram_size,
        lowercase=lowercase,
        num_workers=num_workers,
    )


def overlap_join(
    source: Table,
    target: Table,
    *,
    source_column: str,
    target_column: str,
    threshold: float = 1,
    tokenizer: str = "whitespace",
    qgram_size: int = 4,
    lowercase: bool = True,
    num_workers: int = 1,
) -> SetSimJoinResult:
    """Join rows sharing at least *threshold* tokens (an absolute count)."""
    return _join_tables(
        source,
        target,
        source_column=source_column,
        target_column=target_column,
        similarity="overlap",
        threshold=threshold,
        tokenizer=tokenizer,
        qgram_size=qgram_size,
        lowercase=lowercase,
        num_workers=num_workers,
    )
