"""A reimplementation of Auto-Join (Zhu et al., VLDB 2017; Section 3.2).

Auto-Join addresses the explosion in the number of transformations by taking
small subsets of the input and assuming a single transformation covers every
pair in each subset.  For one subset the search proceeds as follows:

1. enumerate every transformation unit with every parameter assignment over
   the parameter space of the inputs (the "blind search" the paper contrasts
   its own placeholder-guided search with),
2. keep the units whose output is a contiguous block of the target for every
   pair of the subset, sorted by the average length of target text covered,
3. take the best unit, remove the covered block from every target, and
   recursively solve the remaining text on the left and on the right,
4. on failure, backtrack to the next-best unit,
5. stop when both remainders are empty (success) or the candidate list is
   exhausted (failure → the subset yields no transformation).

The search is run on ``num_subsets`` random subsets of ``subset_size`` pairs;
all transformations found form the returned set.  A wall-clock budget mirrors
the week-long timeout the paper had to impose.
"""

from __future__ import annotations

import random
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.coverage import CoverageComputer, CoverageResult
from repro.core.cover import cover_fraction, top_k_by_coverage
from repro.core.pairs import RowPair, pairs_from_strings
from repro.core.transformation import Transformation
from repro.core.units import Literal, Split, SplitSubstr, Substr, TransformationUnit


@dataclass(frozen=True)
class AutoJoinConfig:
    """Parameters of the Auto-Join reimplementation.

    The defaults follow the paper's experimental setup (Section 6.2):
    6 subsets of 2 rows each, recursion depth bounded by the number of
    placeholders, ``SplitSubstr`` included but ``TwoCharSplitSubstr``/
    ``SplitSplitSubstr`` excluded.
    """

    num_subsets: int = 6
    subset_size: int = 2
    max_depth: int = 3
    include_split_substr: bool = True
    max_source_length: int = 60
    time_limit_seconds: float = 60.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_subsets < 1:
            raise ValueError(f"num_subsets must be >= 1, got {self.num_subsets}")
        if self.subset_size < 1:
            raise ValueError(f"subset_size must be >= 1, got {self.subset_size}")
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")


@dataclass
class AutoJoinResult:
    """Transformations found by Auto-Join plus bookkeeping."""

    pairs: list[RowPair]
    transformations: list[Transformation] = field(default_factory=list)
    coverage_results: list[CoverageResult] = field(default_factory=list)
    units_enumerated: int = 0
    subsets_tried: int = 0
    subsets_succeeded: int = 0
    timed_out: bool = False
    elapsed_seconds: float = 0.0

    @property
    def top_coverage(self) -> float:
        """Coverage fraction of the best single transformation."""
        if not self.coverage_results or not self.pairs:
            return 0.0
        best = top_k_by_coverage(self.coverage_results, 1)
        return best[0].coverage_fraction(len(self.pairs)) if best else 0.0

    @property
    def cover_coverage(self) -> float:
        """Coverage fraction of the union of all returned transformations."""
        return cover_fraction(self.coverage_results, len(self.pairs))

    @property
    def num_transformations(self) -> int:
        """Number of distinct transformations returned."""
        return len(self.transformations)


class AutoJoin:
    """Subset-sampling, backtracking transformation search."""

    def __init__(self, config: AutoJoinConfig | None = None) -> None:
        self._config = config or AutoJoinConfig()
        self._deadline = 0.0
        self._units_enumerated = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def discover_from_strings(
        self, pairs: Sequence[tuple[str, str]]
    ) -> AutoJoinResult:
        """Convenience wrapper over plain string tuples."""
        return self.discover(pairs_from_strings(pairs))

    def discover(self, pairs: Sequence[RowPair]) -> AutoJoinResult:
        """Run Auto-Join on *pairs* and return the transformations found."""
        pairs = list(pairs)
        if not pairs:
            return AutoJoinResult(pairs=[])
        config = self._config
        rng = random.Random(config.seed)
        started = time.perf_counter()
        self._deadline = started + config.time_limit_seconds
        self._units_enumerated = 0

        transformations: dict[Transformation, None] = {}
        subsets_tried = 0
        subsets_succeeded = 0
        timed_out = False
        for _ in range(config.num_subsets):
            if time.perf_counter() > self._deadline:
                timed_out = True
                break
            subset_size = min(config.subset_size, len(pairs))
            subset = rng.sample(pairs, subset_size)
            subsets_tried += 1
            units = self._find_transformation(
                [(p.source, p.target) for p in subset], config.max_depth
            )
            if units is not None and units:
                subsets_succeeded += 1
                transformations.setdefault(Transformation(units).simplified(), None)

        found = list(transformations)
        computer = CoverageComputer(pairs, use_unit_cache=False)
        coverage_results = [computer.coverage_of(t) for t in found]
        elapsed = time.perf_counter() - started
        return AutoJoinResult(
            pairs=pairs,
            transformations=found,
            coverage_results=coverage_results,
            units_enumerated=self._units_enumerated,
            subsets_tried=subsets_tried,
            subsets_succeeded=subsets_succeeded,
            timed_out=timed_out or time.perf_counter() > self._deadline,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------ #
    # Recursive search over one subset
    # ------------------------------------------------------------------ #
    def _find_transformation(
        self, rows: list[tuple[str, str]], depth: int
    ) -> list[TransformationUnit] | None:
        """Find a unit sequence mapping every source to its target, or None."""
        if all(not target for _, target in rows):
            return []
        if depth <= 0 or time.perf_counter() > self._deadline:
            return None

        candidates = self._candidate_units(rows)
        for unit, spans in candidates:
            left_rows: list[tuple[str, str]] = []
            right_rows: list[tuple[str, str]] = []
            for (source, target), (start, end) in zip(rows, spans):
                left_rows.append((source, target[:start]))
                right_rows.append((source, target[end:]))
            left_units = self._find_transformation(left_rows, depth - 1)
            if left_units is None:
                continue
            right_units = self._find_transformation(right_rows, depth - 1)
            if right_units is None:
                continue
            return left_units + [unit] + right_units
        return None

    # ------------------------------------------------------------------ #
    # Blind unit enumeration (this is what makes Auto-Join slow)
    # ------------------------------------------------------------------ #
    def _candidate_units(
        self, rows: list[tuple[str, str]]
    ) -> list[tuple[TransformationUnit, list[tuple[int, int]]]]:
        """Units whose output is a block of every row's target, best first.

        Returns (unit, spans) pairs where ``spans[i]`` is the (start, end)
        block the unit's output occupies in row *i*'s target.  Candidates are
        sorted by the average length of target text covered, as in the
        original algorithm.
        """
        config = self._config
        max_len = min(
            config.max_source_length,
            max((len(source) for source, _ in rows), default=0),
        )
        units: list[TransformationUnit] = []

        for start in range(max_len):
            for end in range(start + 1, max_len + 1):
                units.append(Substr(start, end))

        delimiters = sorted({c for source, _ in rows for c in source})
        max_pieces = (
            max(
                (source.count(c) + 1 for source, _ in rows for c in delimiters),
                default=1,
            )
            if delimiters
            else 1
        )
        for delimiter in delimiters:
            for index in range(1, max_pieces + 1):
                units.append(Split(delimiter, index))

        if config.include_split_substr:
            piece_cap = min(max_len, 20)
            for delimiter in delimiters:
                for index in range(1, max_pieces + 1):
                    for start in range(piece_cap):
                        for end in range(start + 1, piece_cap + 1):
                            units.append(SplitSubstr(delimiter, index, start, end))

        # Literal over the longest common remaining target prefix/suffix text:
        # when every remaining target is identical, that constant is a valid
        # candidate unit.
        targets = {target for _, target in rows if target}
        if len(targets) == 1:
            units.append(Literal(next(iter(targets))))

        scored: list[tuple[float, TransformationUnit, list[tuple[int, int]]]] = []
        for unit in units:
            self._units_enumerated += 1
            if self._units_enumerated % 4096 == 0 and time.perf_counter() > self._deadline:
                break
            spans: list[tuple[int, int]] = []
            total = 0
            applicable = True
            for source, target in rows:
                if not target:
                    applicable = False
                    break
                output = unit.apply(source)
                if not output:
                    applicable = False
                    break
                position = target.find(output)
                if position == -1:
                    applicable = False
                    break
                spans.append((position, position + len(output)))
                total += len(output)
            if applicable:
                scored.append((total / len(rows), unit, spans))
        scored.sort(key=lambda item: (-item[0], repr(item[1])))
        return [(unit, spans) for _, unit, spans in scored]
