"""Benchmark datasets: synthetic tables and simulated real-world benchmarks.

The paper evaluates on three real datasets (web tables, spreadsheet tasks,
open government data) and synthetic data.  The real benchmarks are not
redistributable offline, so this package generates *simulated* equivalents
with the same structural characteristics (documented in DESIGN.md), plus the
paper's synthetic generator:

* :mod:`repro.datasets.synthetic` — Synth-N and Synth-NL tables,
* :mod:`repro.datasets.web_tables` — 31 noisy web-table-style pairs over 17
  topics,
* :mod:`repro.datasets.spreadsheet` — 108 FlashFill/BlinkFill-style pairs,
* :mod:`repro.datasets.open_data` — an address-join benchmark with heavy
  n-gram collisions.

Every dataset is a list of :class:`~repro.datasets.base.TablePair` with known
ground-truth row pairs, so both the row matcher and the end-to-end join can
be scored.
"""

from repro.datasets.base import BenchmarkDataset, TablePair, dataset_statistics
from repro.datasets.open_data import generate_open_data
from repro.datasets.registry import available_datasets, load_dataset
from repro.datasets.spreadsheet import generate_spreadsheet_dataset
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.datasets.web_tables import generate_web_tables_dataset

__all__ = [
    "BenchmarkDataset",
    "SyntheticConfig",
    "TablePair",
    "available_datasets",
    "dataset_statistics",
    "generate_open_data",
    "generate_spreadsheet_dataset",
    "generate_synthetic_dataset",
    "generate_web_tables_dataset",
    "load_dataset",
]
