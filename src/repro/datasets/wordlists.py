"""Word lists used by the dataset generators.

The simulated benchmarks need realistic-looking names, departments, streets
and cities.  The lists below are small but, combined with seeded random
composition (first x last names, street number x street x suffix, …), produce
tens of thousands of distinct values — enough to give the row matcher the
same n-gram-collision structure as the benchmarks the paper uses.
"""

from __future__ import annotations

FIRST_NAMES: tuple[str, ...] = (
    "Aaron", "Adele", "Adrian", "Aisha", "Alan", "Albert", "Alice", "Amara",
    "Amir", "Andre", "Andrea", "Andrzej", "Angela", "Anita", "Anton", "Arash",
    "Arthur", "Ava", "Benjamin", "Bianca", "Boris", "Brian", "Bruno", "Camila",
    "Carla", "Carlos", "Carmen", "Cecilia", "Chen", "Claire", "Daniel", "Davood",
    "Deborah", "Dennis", "Diana", "Diego", "Dmitri", "Donald", "Dora", "Douglas",
    "Edward", "Elena", "Elias", "Emma", "Eric", "Esther", "Fatima", "Felix",
    "Fernando", "Fiona", "Frank", "Gabriel", "George", "Gloria", "Gordon",
    "Grace", "Hannah", "Harold", "Hassan", "Helen", "Henry", "Hiroshi", "Ibrahim",
    "Irene", "Isaac", "Ivan", "Jack", "Jasmine", "Javier", "Jean", "Jennifer",
    "Joan", "Jorge", "Joseph", "Julia", "Karen", "Karl", "Kasia", "Keith",
    "Kevin", "Laila", "Laura", "Leonard", "Lily", "Linda", "Lucas", "Maria",
    "Mario", "Martin", "Mei", "Michael", "Miguel", "Mohamed", "Monica", "Nadia",
    "Nancy", "Naomi", "Natasha", "Nicholas", "Nina", "Noah", "Olga", "Oliver",
    "Omar", "Oscar", "Pablo", "Patricia", "Paul", "Pedro", "Peter", "Priya",
    "Rachel", "Rahim", "Raymond", "Rebecca", "Ricardo", "Richard", "Robert",
    "Rosa", "Ruth", "Samuel", "Sandra", "Sara", "Sergei", "Simon", "Sofia",
    "Stephen", "Susan", "Tanya", "Teresa", "Thomas", "Victor", "Walter", "Wei",
    "William", "Xavier", "Yasmin", "Yuki", "Zara", "Zhang",
)

LAST_NAMES: tuple[str, ...] = (
    "Abbott", "Adams", "Aguilar", "Ahmed", "Anderson", "Andrade", "Baker",
    "Barnes", "Becker", "Bell", "Bennett", "Bowling", "Brooks", "Brown",
    "Campbell", "Carter", "Chan", "Chen", "Clark", "Collins", "Cooper",
    "Costa", "Cruz", "Czarnecki", "Davis", "Diaz", "Dixon", "Duncan",
    "Edwards", "Evans", "Ferreira", "Fischer", "Fleming", "Foster", "Fraser",
    "Garcia", "Gardner", "Gingrich", "Gomez", "Gonzalez", "Gosgnach", "Graham",
    "Grant", "Gray", "Green", "Gupta", "Hall", "Hamilton", "Hansen", "Harris",
    "Hayes", "Henderson", "Hernandez", "Hoffman", "Howard", "Hughes", "Hunter",
    "Ibrahim", "Jackson", "James", "Jansen", "Jenkins", "Johnson", "Jones",
    "Kaur", "Keller", "Kelly", "Khan", "Kim", "King", "Kowalski", "Kumar",
    "Larsen", "Lee", "Lewis", "Li", "Lopez", "Marshall", "Martin", "Martinez",
    "Mason", "McDonald", "Mendoza", "Meyer", "Miller", "Mitchell", "Moore",
    "Morales", "Morgan", "Murphy", "Murray", "Nakamura", "Nascimento", "Nelson",
    "Nguyen", "Nobari", "Novak", "Olsen", "Ortiz", "Osman", "Palmer", "Park",
    "Patel", "Pearson", "Pereira", "Perez", "Peterson", "Phillips", "Powell",
    "Price", "Rafiei", "Ramirez", "Reed", "Reyes", "Richardson", "Rivera",
    "Roberts", "Robinson", "Rodriguez", "Rogers", "Ross", "Russell", "Sanchez",
    "Sanders", "Santos", "Schmidt", "Scott", "Shah", "Silva", "Simpson",
    "Singh", "Smith", "Stewart", "Sullivan", "Suzuki", "Tanaka", "Taylor",
    "Thompson", "Torres", "Tremblay", "Turner", "Walker", "Wallace", "Wang",
    "Ward", "Watson", "Weber", "White", "Williams", "Wilson", "Wong", "Wood",
    "Wright", "Yamamoto", "Yang", "Young", "Zhang", "Zhao",
)

DEPARTMENTS: tuple[str, ...] = (
    "Computing Science", "Physics", "Physiology", "Chemistry", "Mathematics",
    "Biology", "Economics", "History", "Psychology", "Sociology",
    "Civil Engineering", "Electrical Engineering", "Mechanical Engineering",
    "Linguistics", "Philosophy", "Political Science", "Statistics",
)

DEPARTMENT_CODES: dict[str, str] = {
    "Computing Science": "CS",
    "Physics": "PHYS",
    "Physiology": "PSL",
    "Chemistry": "CHEM",
    "Mathematics": "MATH",
    "Biology": "BIOL",
    "Economics": "ECON",
    "History": "HIST",
    "Psychology": "PSYC",
    "Sociology": "SOC",
    "Civil Engineering": "CIVE",
    "Electrical Engineering": "ECE",
    "Mechanical Engineering": "MECE",
    "Linguistics": "LING",
    "Philosophy": "PHIL",
    "Political Science": "POLS",
    "Statistics": "STAT",
}

STREET_NAMES: tuple[str, ...] = (
    "Jasper", "Whyte", "Saskatchewan", "University", "Groat", "Stony Plain",
    "Calgary Trail", "Gateway", "Kingsway", "Fort", "Victoria", "Churchill",
    "McDougall", "Rossdale", "Strathcona", "Garneau", "Belgravia", "Windsor",
    "Summit", "Riverside", "Meadowlark", "Castle Downs", "Mill Woods",
    "Terwillegar", "Rabbit Hill", "Ellerslie", "Manning", "Yellowhead",
)

STREET_TYPES: tuple[str, ...] = (
    "Street", "Avenue", "Boulevard", "Drive", "Road", "Crescent", "Way",
    "Place", "Lane", "Gate",
)

STREET_TYPE_ABBREVIATIONS: dict[str, str] = {
    "Street": "St",
    "Avenue": "Ave",
    "Boulevard": "Blvd",
    "Drive": "Dr",
    "Road": "Rd",
    "Crescent": "Cres",
    "Way": "Way",
    "Place": "Pl",
    "Lane": "Ln",
    "Gate": "Gt",
}

QUADRANTS: tuple[str, ...] = ("NW", "SW", "NE", "SE")

CITIES: tuple[str, ...] = (
    "Edmonton", "Calgary", "Red Deer", "Lethbridge", "St. Albert",
    "Medicine Hat", "Grande Prairie", "Airdrie", "Spruce Grove", "Leduc",
)

US_STATES: tuple[tuple[str, str], ...] = (
    ("California", "CA"), ("Texas", "TX"), ("New York", "NY"), ("Florida", "FL"),
    ("Illinois", "IL"), ("Ohio", "OH"), ("Georgia", "GA"), ("Michigan", "MI"),
    ("Washington", "WA"), ("Oregon", "OR"), ("Colorado", "CO"), ("Arizona", "AZ"),
    ("Virginia", "VA"), ("Massachusetts", "MA"), ("Minnesota", "MN"),
    ("Wisconsin", "WI"), ("Maryland", "MD"),
)

COMPANIES: tuple[str, ...] = (
    "Northern Lights Consulting", "Prairie Data Systems", "Aurora Software",
    "Glacier Analytics", "Foothills Energy", "Chinook Logistics",
    "Riverbend Media", "Summit Financial", "Timberline Construction",
    "Wildrose Technologies", "Blue Spruce Design", "Ironwood Manufacturing",
)

MONTHS: tuple[str, ...] = (
    "January", "February", "March", "April", "May", "June", "July", "August",
    "September", "October", "November", "December",
)

AIRPORTS: tuple[tuple[str, str, str], ...] = (
    ("Edmonton International Airport", "YEG", "Edmonton"),
    ("Calgary International Airport", "YYC", "Calgary"),
    ("Vancouver International Airport", "YVR", "Vancouver"),
    ("Toronto Pearson International Airport", "YYZ", "Toronto"),
    ("Montreal Trudeau International Airport", "YUL", "Montreal"),
    ("Ottawa Macdonald-Cartier International Airport", "YOW", "Ottawa"),
    ("Winnipeg Richardson International Airport", "YWG", "Winnipeg"),
    ("Halifax Stanfield International Airport", "YHZ", "Halifax"),
    ("Victoria International Airport", "YYJ", "Victoria"),
    ("Saskatoon John G. Diefenbaker Airport", "YXE", "Saskatoon"),
    ("Regina International Airport", "YQR", "Regina"),
    ("Kelowna International Airport", "YLW", "Kelowna"),
    ("St. Johns International Airport", "YYT", "St. Johns"),
    ("Quebec City Jean Lesage Airport", "YQB", "Quebec City"),
    ("Thunder Bay International Airport", "YQT", "Thunder Bay"),
)
