"""Simulated spreadsheet benchmark (Section 6.1, "Spreadsheet dataset").

The original benchmark is the SyGuS-Comp 2016 collection of FlashFill and
BlinkFill public tasks: 108 small table pairs of common spreadsheet data
cleaning problems (~34 rows each).  This module generates 108 pairs drawn
from canonical FlashFill task families — name reformatting, initials, phone
normalization, e-mail and URL extraction, file-path manipulation, date
reformatting, identifier cleanup — with the same scale and the same
mostly-single-transformation structure.

Only copy-based (syntactic) relationships are generated, since the unit set
of the paper (and of FlashFill's substring/split core) cannot express
semantic mappings such as month-name-to-number.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.datasets import wordlists
from repro.datasets.base import BenchmarkDataset, TablePair
from repro.table.table import Table

#: Number of table pairs in the benchmark (matching SyGuS-Comp 2016).
NUM_PAIRS = 108

#: Default rows per table (the original averages 34.43 rows).
DEFAULT_ROWS = 34


@dataclass(frozen=True)
class _TaskFamily:
    """One spreadsheet-task family: entity sampler + input/output formatters."""

    name: str
    sample: Callable[[random.Random], dict[str, str]]
    input_format: Callable[[dict[str, str]], str]
    output_format: Callable[[dict[str, str]], str]


def _sample_name(rng: random.Random) -> dict[str, str]:
    return {
        "first": rng.choice(wordlists.FIRST_NAMES),
        "middle": rng.choice(wordlists.FIRST_NAMES),
        "last": rng.choice(wordlists.LAST_NAMES),
        "title": rng.choice(["Dr", "Mr", "Ms", "Prof"]),
    }


def _sample_contact(rng: random.Random) -> dict[str, str]:
    record = _sample_name(rng)
    record["area"] = rng.choice(["780", "403", "587", "825", "604", "416"])
    record["prefix"] = str(rng.randint(200, 999))
    record["line"] = str(rng.randint(1000, 9999))
    record["domain"] = rng.choice(
        ["ualberta.ca", "gmail.com", "outlook.com", "telus.net", "shaw.ca"]
    )
    return record


def _sample_file(rng: random.Random) -> dict[str, str]:
    folder = rng.choice(["reports", "data", "projects", "archive", "exports"])
    subfolder = rng.choice(["2019", "2020", "2021", "q1", "q2", "final"])
    base = rng.choice(
        ["summary", "budget", "inventory", "results", "notes", "minutes"]
    )
    number = str(rng.randint(1, 99))
    extension = rng.choice(["csv", "xlsx", "txt", "pdf", "docx"])
    return {
        "folder": folder,
        "subfolder": subfolder,
        "base": base,
        "number": number,
        "extension": extension,
    }


def _sample_date(rng: random.Random) -> dict[str, str]:
    return {
        "year": str(rng.randint(1995, 2021)),
        "month": f"{rng.randint(1, 12):02d}",
        "day": f"{rng.randint(1, 28):02d}",
        "month_name": rng.choice(wordlists.MONTHS),
    }


def _sample_product(rng: random.Random) -> dict[str, str]:
    prefix = rng.choice(["AB", "CD", "XR", "PK", "QT", "LM"])
    code = str(rng.randint(10000, 99999))
    batch = str(rng.randint(1, 9))
    plant = rng.choice(["EDM", "CAL", "VAN", "TOR", "WPG"])
    return {"prefix": prefix, "code": code, "batch": batch, "plant": plant}


FAMILIES: tuple[_TaskFamily, ...] = (
    _TaskFamily(
        name="first-name",
        sample=_sample_name,
        input_format=lambda r: f"{r['first']} {r['last']}",
        output_format=lambda r: r["first"],
    ),
    _TaskFamily(
        name="last-name",
        sample=_sample_name,
        input_format=lambda r: f"{r['first']} {r['last']}",
        output_format=lambda r: r["last"],
    ),
    _TaskFamily(
        name="last-first",
        sample=_sample_name,
        input_format=lambda r: f"{r['first']} {r['last']}",
        output_format=lambda r: f"{r['last']}, {r['first']}",
    ),
    _TaskFamily(
        name="initials",
        sample=_sample_name,
        input_format=lambda r: f"{r['first']} {r['last']}",
        output_format=lambda r: f"{r['first'][0]}. {r['last']}",
    ),
    _TaskFamily(
        name="title-name",
        sample=_sample_name,
        input_format=lambda r: f"{r['title']}. {r['first']} {r['last']}",
        output_format=lambda r: f"{r['first']} {r['last']}",
    ),
    _TaskFamily(
        name="middle-initial",
        sample=_sample_name,
        input_format=lambda r: f"{r['first']} {r['middle']} {r['last']}",
        output_format=lambda r: f"{r['first']} {r['middle'][0]}. {r['last']}",
    ),
    _TaskFamily(
        name="phone-digits",
        sample=_sample_contact,
        input_format=lambda r: f"({r['area']}) {r['prefix']}-{r['line']}",
        output_format=lambda r: f"{r['area']}-{r['prefix']}-{r['line']}",
    ),
    _TaskFamily(
        name="phone-area",
        sample=_sample_contact,
        input_format=lambda r: f"{r['area']}-{r['prefix']}-{r['line']}",
        output_format=lambda r: f"({r['area']}) {r['prefix']}",
    ),
    _TaskFamily(
        name="email-build",
        sample=_sample_contact,
        input_format=lambda r: f"{r['first']} {r['last']}",
        output_format=lambda r: f"{r['first']}.{r['last']}@{r['domain']}",
    ),
    _TaskFamily(
        name="email-user",
        sample=_sample_contact,
        input_format=lambda r: f"{r['first']}.{r['last']}@{r['domain']}",
        output_format=lambda r: f"{r['first']}.{r['last']}",
    ),
    _TaskFamily(
        name="email-domain",
        sample=_sample_contact,
        input_format=lambda r: f"{r['first']}.{r['last']}@{r['domain']}",
        output_format=lambda r: f"{r['last']} @ {r['domain']}",
    ),
    _TaskFamily(
        name="file-name",
        sample=_sample_file,
        input_format=lambda r: (
            f"/{r['folder']}/{r['subfolder']}/{r['base']}_{r['number']}.{r['extension']}"
        ),
        output_format=lambda r: f"{r['base']}_{r['number']}.{r['extension']}",
    ),
    _TaskFamily(
        name="file-extension",
        sample=_sample_file,
        input_format=lambda r: f"{r['base']}_{r['number']}.{r['extension']}",
        output_format=lambda r: f"{r['base']}_{r['number']} ({r['extension']})",
    ),
    _TaskFamily(
        name="file-folder",
        sample=_sample_file,
        input_format=lambda r: (
            f"/{r['folder']}/{r['subfolder']}/{r['base']}.{r['extension']}"
        ),
        output_format=lambda r: f"/{r['folder']}/{r['subfolder']}/",
    ),
    _TaskFamily(
        name="date-iso",
        sample=_sample_date,
        input_format=lambda r: f"{r['day']}/{r['month']}/{r['year']}",
        output_format=lambda r: f"{r['year']}-{r['month']}-{r['day']}",
    ),
    _TaskFamily(
        name="date-year",
        sample=_sample_date,
        input_format=lambda r: f"{r['month_name']} {r['day']}, {r['year']}",
        output_format=lambda r: f"{r['year']} ({r['month_name']} {r['day']})",
    ),
    _TaskFamily(
        name="date-month-year",
        sample=_sample_date,
        input_format=lambda r: f"{r['month_name']} {r['day']}, {r['year']}",
        output_format=lambda r: f"{r['month_name']} {r['year']}",
    ),
    _TaskFamily(
        name="product-code",
        sample=_sample_product,
        input_format=lambda r: f"{r['prefix']}-{r['code']}-{r['batch']} ({r['plant']})",
        output_format=lambda r: f"{r['prefix']}{r['code']}",
    ),
    _TaskFamily(
        name="product-plant",
        sample=_sample_product,
        input_format=lambda r: f"{r['prefix']}-{r['code']}-{r['batch']} ({r['plant']})",
        output_format=lambda r: f"{r['plant']}: {r['prefix']}-{r['code']}",
    ),
    _TaskFamily(
        name="product-batch",
        sample=_sample_product,
        input_format=lambda r: f"{r['prefix']}-{r['code']}-{r['batch']}",
        output_format=lambda r: f"batch {r['batch']} of {r['prefix']}-{r['code']}",
    ),
)


def generate_task_pair(
    family: _TaskFamily,
    *,
    num_rows: int = DEFAULT_ROWS,
    seed: int = 0,
    name: str | None = None,
) -> TablePair:
    """Generate one spreadsheet-task pair for *family*."""
    rng = random.Random(seed)
    records = [family.sample(rng) for _ in range(num_rows)]
    inputs = [family.input_format(r) for r in records]
    outputs = [family.output_format(r) for r in records]
    pair_name = name or family.name
    return TablePair(
        name=pair_name,
        source=Table({"input": inputs}, name=f"{pair_name}_source"),
        target=Table({"output": outputs}, name=f"{pair_name}_target"),
        source_column="input",
        target_column="output",
        golden_pairs=[(i, i) for i in range(num_rows)],
        description=f"spreadsheet task family {family.name!r}",
    )


def generate_spreadsheet_dataset(
    *,
    num_pairs: int = NUM_PAIRS,
    num_rows: int = DEFAULT_ROWS,
    seed: int = 0,
) -> BenchmarkDataset:
    """Generate the full simulated spreadsheet benchmark (108 pairs)."""
    if num_pairs < 1:
        raise ValueError(f"num_pairs must be >= 1, got {num_pairs}")
    pairs = []
    for index in range(num_pairs):
        family = FAMILIES[index % len(FAMILIES)]
        pairs.append(
            generate_task_pair(
                family,
                num_rows=num_rows,
                seed=seed + index,
                name=f"{family.name}-{index:03d}",
            )
        )
    return BenchmarkDataset(
        name="spreadsheet",
        pairs=pairs,
        description=(
            "simulated FlashFill/BlinkFill spreadsheet benchmark "
            f"({num_pairs} pairs)"
        ),
    )
