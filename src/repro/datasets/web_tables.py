"""Simulated web-tables benchmark (Section 6.1, "Web dataset").

The original benchmark (Zhu et al.) consists of 31 pairs of Google Fusion
tables over 17 topics, paired so the join columns are formatted differently.
That data is not redistributable offline, so this module *generates* 31 table
pairs with the same structural characteristics:

* ~92 rows per table and join entries of ~30 characters on average,
* a mix of topics (people directories, governors, airports, courses,
  addresses, companies, phones, publications, …),
* per-table *sets* of formatting relationships — most tables need more than
  one transformation to be fully covered (e.g. people with and without middle
  names), which is exactly the property that separates the paper's approach
  from Auto-Join,
* injected noise: a fraction of target rows carry annotations or typos that
  no string transformation can produce, and a few unmatched rows appear on
  both sides.

Each generated pair records its ground-truth joinable row pairs so both the
row matcher (Table 1) and the end-to-end join (Table 3) can be scored.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.datasets import wordlists
from repro.datasets.base import BenchmarkDataset, TablePair
from repro.table.table import Table

#: Number of table pairs in the benchmark (matching the original).
NUM_PAIRS = 31

#: Default rows per table (the original averages 92.13 rows).
DEFAULT_ROWS = 92


@dataclass(frozen=True)
class _Topic:
    """One topic template: entity sampler plus source/target formatters."""

    name: str
    #: Produce one entity record (dict of fields) from the RNG.
    sample: Callable[[random.Random], dict[str, str]]
    #: Render the source-side join value.
    source_format: Callable[[dict[str, str]], str]
    #: Alternative target-side renderings; each row picks one at random, so a
    #: covering set needs one transformation per active variant.
    target_formats: tuple[Callable[[dict[str, str]], str], ...]
    #: Extra payload columns rendered into the tables.
    payload: tuple[str, ...] = ()


# --------------------------------------------------------------------------- #
# Entity samplers
# --------------------------------------------------------------------------- #
def _sample_person(rng: random.Random) -> dict[str, str]:
    first = rng.choice(wordlists.FIRST_NAMES)
    middle = rng.choice(wordlists.FIRST_NAMES)
    last = rng.choice(wordlists.LAST_NAMES)
    department = rng.choice(wordlists.DEPARTMENTS)
    year = str(rng.randint(1988, 2021))
    phone = (
        f"{rng.choice(['780', '403', '587'])}"
        f"{rng.randint(200, 999)}{rng.randint(1000, 9999)}"
    )
    return {
        "first": first,
        "middle": middle,
        "last": last,
        "department": department,
        "code": wordlists.DEPARTMENT_CODES[department],
        "year": year,
        "phone": phone,
    }


def _sample_address(rng: random.Random) -> dict[str, str]:
    number = str(rng.randint(100, 19999))
    street_number = str(rng.randint(1, 180))
    street = rng.choice(wordlists.STREET_NAMES)
    street_type = rng.choice(wordlists.STREET_TYPES)
    quadrant = rng.choice(wordlists.QUADRANTS)
    city = rng.choice(wordlists.CITIES)
    return {
        "number": number,
        "street_number": street_number,
        "street": street,
        "street_type": street_type,
        "street_abbrev": wordlists.STREET_TYPE_ABBREVIATIONS[street_type],
        "quadrant": quadrant,
        "city": city,
    }


def _sample_airport(rng: random.Random) -> dict[str, str]:
    name, code, city = rng.choice(wordlists.AIRPORTS)
    passengers = str(rng.randint(100_000, 25_000_000))
    return {"name": name, "code": code, "city": city, "passengers": passengers}


def _sample_course(rng: random.Random) -> dict[str, str]:
    department = rng.choice(wordlists.DEPARTMENTS)
    code = wordlists.DEPARTMENT_CODES[department]
    number = str(rng.randint(100, 699))
    section = rng.choice(["A1", "B2", "X1", "LEC 01", "SEM 800"])
    first = rng.choice(wordlists.FIRST_NAMES)
    last = rng.choice(wordlists.LAST_NAMES)
    return {
        "dept": code,
        "number": number,
        "section": section,
        "first": first,
        "last": last,
    }


def _sample_company(rng: random.Random) -> dict[str, str]:
    company = rng.choice(wordlists.COMPANIES)
    suffix = rng.choice(["Inc.", "Ltd.", "LLC", "Corp."])
    city = rng.choice(wordlists.CITIES)
    revenue = str(rng.randint(1, 900))
    return {"company": company, "suffix": suffix, "city": city, "revenue": revenue}


def _sample_governor(rng: random.Random) -> dict[str, str]:
    first = rng.choice(wordlists.FIRST_NAMES)
    last = rng.choice(wordlists.LAST_NAMES)
    state, abbrev = rng.choice(wordlists.US_STATES)
    party = rng.choice(["Democratic", "Republican", "Independent"])
    term = f"{rng.randint(1990, 2018)}-{rng.randint(2019, 2026)}"
    return {
        "first": first,
        "last": last,
        "state": state,
        "abbrev": abbrev,
        "party": party,
        "term": term,
    }


def _sample_publication(rng: random.Random) -> dict[str, str]:
    first = rng.choice(wordlists.FIRST_NAMES)
    last = rng.choice(wordlists.LAST_NAMES)
    venue = rng.choice(["VLDB", "SIGMOD", "ICDE", "KDD", "WWW", "CIKM"])
    year = str(rng.randint(2001, 2021))
    pages = f"{rng.randint(1, 1200)}-{rng.randint(1201, 2400)}"
    return {"first": first, "last": last, "venue": venue, "year": year, "pages": pages}


def _sample_phone(rng: random.Random) -> dict[str, str]:
    area = rng.choice(["780", "403", "587", "825"])
    prefix = str(rng.randint(200, 999))
    line = str(rng.randint(1000, 9999))
    first = rng.choice(wordlists.FIRST_NAMES)
    last = rng.choice(wordlists.LAST_NAMES)
    return {"area": area, "prefix": prefix, "line": line, "first": first, "last": last}


# --------------------------------------------------------------------------- #
# Topics (17, as in the original benchmark)
# --------------------------------------------------------------------------- #
TOPICS: tuple[_Topic, ...] = (
    _Topic(
        name="staff-name-initial",
        sample=_sample_person,
        source_format=lambda r: f"{r['last']}, {r['first']}",
        target_formats=(
            lambda r: f"{r['first'][0]} {r['last']}",
            lambda r: f"{r['first'][0]}. {r['last']}",
        ),
        payload=("department", "year"),
    ),
    _Topic(
        name="staff-name-email",
        sample=_sample_person,
        source_format=lambda r: f"{r['last']}, {r['first']}",
        target_formats=(
            lambda r: f"{r['first']}.{r['last']}@ualberta.ca",
            lambda r: f"{r['first'][0]}{r['last']}@ualberta.ca",
        ),
        payload=("department",),
    ),
    _Topic(
        name="name-middle-initial",
        sample=_sample_person,
        source_format=lambda r: f"{r['first']} {r['middle']} {r['last']}",
        target_formats=(
            lambda r: f"{r['first']} {r['middle'][0]}. {r['last']}",
            lambda r: f"{r['first']} {r['last']}",
        ),
        payload=("department",),
    ),
    _Topic(
        name="phone-formats",
        sample=_sample_phone,
        source_format=lambda r: f"({r['area']}) {r['prefix']}-{r['line']}",
        target_formats=(
            lambda r: f"+1 {r['area']} {r['prefix']}-{r['line']}",
            lambda r: f"1-{r['area']}-{r['prefix']}-{r['line']}",
        ),
        payload=("first", "last"),
    ),
    _Topic(
        name="phone-plain",
        sample=_sample_phone,
        source_format=lambda r: f"{r['area']}.{r['prefix']}.{r['line']}",
        target_formats=(
            lambda r: f"({r['area']}) {r['prefix']} {r['line']}",
        ),
        payload=("last",),
    ),
    _Topic(
        name="governor-name",
        sample=_sample_governor,
        source_format=lambda r: f"{r['first']} {r['last']} ({r['party']})",
        target_formats=(
            lambda r: f"{r['last']}, {r['first']}",
            lambda r: f"Gov. {r['first']} {r['last']}",
        ),
        payload=("state", "term"),
    ),
    _Topic(
        name="governor-state",
        sample=_sample_governor,
        source_format=lambda r: f"{r['state']} - {r['first']} {r['last']}",
        target_formats=(
            lambda r: f"{r['first']} {r['last']} of {r['state']}",
        ),
        payload=("party", "term"),
    ),
    _Topic(
        name="airport-code",
        sample=_sample_airport,
        source_format=lambda r: f"{r['name']} ({r['code']})",
        target_formats=(
            lambda r: f"{r['code']} - {r['city']}",
            lambda r: f"{r['code']}: {r['name']}",
        ),
        payload=("passengers",),
    ),
    _Topic(
        name="airport-city",
        sample=_sample_airport,
        source_format=lambda r: f"{r['city']} / {r['name']}",
        target_formats=(
            lambda r: f"{r['name']}, {r['city']}",
        ),
        payload=("code",),
    ),
    _Topic(
        name="course-codes",
        sample=_sample_course,
        source_format=lambda r: f"{r['dept']} {r['number']} - {r['section']}",
        target_formats=(
            lambda r: f"{r['dept']}{r['number']}",
            lambda r: f"{r['dept']} {r['number']}",
        ),
        payload=("first", "last"),
    ),
    _Topic(
        name="course-instructor",
        sample=_sample_course,
        source_format=lambda r: f"{r['dept']} {r['number']}: {r['first']} {r['last']}",
        target_formats=(
            lambda r: f"{r['last']} ({r['dept']} {r['number']})",
        ),
        payload=("section",),
    ),
    _Topic(
        name="address-abbrev",
        sample=_sample_address,
        source_format=lambda r: (
            f"{r['number']} {r['street_number']} {r['street_type']} {r['quadrant']}"
        ),
        target_formats=(
            lambda r: (
                f"{r['number']} {r['street_number']} {r['street_abbrev']} "
                f"{r['quadrant']}"
            ),
            lambda r: f"{r['number']}-{r['street_number']} {r['quadrant']}",
        ),
        payload=("city",),
    ),
    _Topic(
        name="address-city",
        sample=_sample_address,
        source_format=lambda r: (
            f"{r['number']} {r['street']} {r['street_type']}, {r['city']}"
        ),
        target_formats=(
            lambda r: f"{r['number']} {r['street']} {r['street_type']}",
        ),
        payload=("quadrant",),
    ),
    _Topic(
        name="company-suffix",
        sample=_sample_company,
        source_format=lambda r: f"{r['company']} {r['suffix']}",
        target_formats=(
            lambda r: r["company"],
            lambda r: f"{r['company']} ({r['city']})",
        ),
        payload=("revenue",),
    ),
    _Topic(
        name="company-city",
        sample=_sample_company,
        source_format=lambda r: f"{r['company']}, {r['city']}",
        target_formats=(
            lambda r: f"{r['city']}: {r['company']}",
        ),
        payload=("suffix",),
    ),
    _Topic(
        name="publication-citation",
        sample=_sample_publication,
        source_format=lambda r: (
            f"{r['last']}, {r['first']}. {r['venue']} {r['year']}"
        ),
        target_formats=(
            lambda r: f"{r['first']} {r['last']} ({r['venue']})",
            lambda r: f"{r['venue']}'{r['year'][2:]}: {r['last']}",
        ),
        payload=("pages",),
    ),
    _Topic(
        name="publication-pages",
        sample=_sample_publication,
        source_format=lambda r: f"{r['venue']} {r['year']}, pp. {r['pages']}",
        target_formats=(
            lambda r: f"{r['venue']}-{r['year']}",
        ),
        payload=("last",),
    ),
)


# --------------------------------------------------------------------------- #
# Pair generation
# --------------------------------------------------------------------------- #
def _noise_suffix(rng: random.Random) -> str:
    return rng.choice(
        [" (retired)", " [on leave]", " *", " (acting)", " - TBD", " (interim)"]
    )


def generate_pair(
    topic: _Topic,
    *,
    num_rows: int = DEFAULT_ROWS,
    noise_rate: float = 0.1,
    unmatched_rate: float = 0.08,
    seed: int = 0,
    name: str | None = None,
) -> TablePair:
    """Generate one web-table-style pair for *topic*.

    ``noise_rate`` is the fraction of matched target rows whose value carries
    an annotation no transformation can produce; ``unmatched_rate`` adds rows
    that exist on only one side.
    """
    if not 0.0 <= noise_rate <= 1.0:
        raise ValueError(f"noise_rate must be in [0, 1], got {noise_rate}")
    if not 0.0 <= unmatched_rate <= 1.0:
        raise ValueError(f"unmatched_rate must be in [0, 1], got {unmatched_rate}")
    rng = random.Random(seed)

    records = [topic.sample(rng) for _ in range(num_rows)]
    source_values = [topic.source_format(r) for r in records]
    target_values: list[str] = []
    golden: list[tuple[int, int]] = []
    for index, record in enumerate(records):
        formatter = rng.choice(topic.target_formats)
        value = formatter(record)
        if rng.random() < noise_rate:
            value += _noise_suffix(rng)
        target_values.append(value)
        golden.append((index, index))

    # Unmatched extra rows on the target side only (they should not join).
    num_unmatched = int(round(unmatched_rate * num_rows))
    for _ in range(num_unmatched):
        record = topic.sample(rng)
        formatter = rng.choice(topic.target_formats)
        target_values.append(formatter(record))

    source_columns: dict[str, list[str]] = {"join": source_values}
    for field in topic.payload:
        source_columns[field] = [r.get(field, "") for r in records]
    target_columns: dict[str, list[str]] = {"join": target_values}

    pair_name = name or topic.name
    return TablePair(
        name=pair_name,
        source=Table(source_columns, name=f"{pair_name}_source"),
        target=Table(target_columns, name=f"{pair_name}_target"),
        source_column="join",
        target_column="join",
        golden_pairs=golden,
        description=f"web-table topic {topic.name!r}",
    )


def generate_web_tables_dataset(
    *,
    num_pairs: int = NUM_PAIRS,
    num_rows: int = DEFAULT_ROWS,
    noise_rate: float = 0.1,
    seed: int = 0,
) -> BenchmarkDataset:
    """Generate the full simulated web-tables benchmark.

    Topics are cycled to reach *num_pairs* table pairs (31 by default, over
    the 17 topics), each with an independent random seed.
    """
    if num_pairs < 1:
        raise ValueError(f"num_pairs must be >= 1, got {num_pairs}")
    pairs = []
    for index in range(num_pairs):
        topic = TOPICS[index % len(TOPICS)]
        pairs.append(
            generate_pair(
                topic,
                num_rows=num_rows,
                noise_rate=noise_rate,
                seed=seed + index,
                name=f"{topic.name}-{index:02d}",
            )
        )
    return BenchmarkDataset(
        name="web-tables",
        pairs=pairs,
        description="simulated web-tables benchmark (31 noisy pairs, 17 topics)",
    )
