"""Dataset abstractions shared by all benchmarks."""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.table.io import read_csv, write_csv
from repro.table.table import Table


@dataclass
class TablePair:
    """One benchmark instance: a source table, a target table, ground truth.

    Attributes
    ----------
    name:
        Identifier of the pair (unique within a dataset).
    source / target:
        The two tables to be joined.
    source_column / target_column:
        The join columns.
    golden_pairs:
        Ground-truth (source_row, target_row) joinable pairs.
    description:
        Free-text description of the formatting relationship.
    """

    name: str
    source: Table
    target: Table
    source_column: str
    target_column: str
    golden_pairs: list[tuple[int, int]] = field(default_factory=list)
    description: str = ""

    @property
    def num_source_rows(self) -> int:
        """Number of source rows."""
        return self.source.num_rows

    @property
    def num_target_rows(self) -> int:
        """Number of target rows."""
        return self.target.num_rows

    @property
    def average_join_length(self) -> float:
        """Average cell length over both join columns."""
        lengths = [len(v) for v in self.source[self.source_column]]
        lengths += [len(v) for v in self.target[self.target_column]]
        if not lengths:
            return 0.0
        return sum(lengths) / len(lengths)

    def golden_string_pairs(self) -> list[tuple[str, str]]:
        """The golden pairs as (source_text, target_text) tuples."""
        source_values = self.source[self.source_column]
        target_values = self.target[self.target_column]
        return [
            (source_values[s], target_values[t]) for s, t in self.golden_pairs
        ]

    def save(self, directory: str | Path) -> None:
        """Write the pair to *directory* as CSV files plus a golden-pairs CSV."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        write_csv(self.source, directory / f"{self.name}_source.csv")
        write_csv(self.target, directory / f"{self.name}_target.csv")
        golden = Table(
            {
                "source_row": [str(s) for s, _ in self.golden_pairs],
                "target_row": [str(t) for _, t in self.golden_pairs],
            }
            if self.golden_pairs
            else {"source_row": [], "target_row": []},
            name=f"{self.name}_golden",
        )
        write_csv(golden, directory / f"{self.name}_golden.csv")

    @classmethod
    def load(
        cls,
        directory: str | Path,
        name: str,
        *,
        source_column: str,
        target_column: str,
    ) -> "TablePair":
        """Load a pair previously written by :meth:`save`."""
        directory = Path(directory)
        source = read_csv(directory / f"{name}_source.csv", name=f"{name}_source")
        target = read_csv(directory / f"{name}_target.csv", name=f"{name}_target")
        golden_table = read_csv(directory / f"{name}_golden.csv")
        golden = [
            (int(s), int(t))
            for s, t in zip(golden_table["source_row"], golden_table["target_row"])
        ]
        return cls(
            name=name,
            source=source,
            target=target,
            source_column=source_column,
            target_column=target_column,
            golden_pairs=golden,
        )


@dataclass
class BenchmarkDataset:
    """A named collection of table pairs."""

    name: str
    pairs: list[TablePair] = field(default_factory=list)
    description: str = ""

    def __iter__(self) -> Iterator[TablePair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        return len(self.pairs)

    def __getitem__(self, index: int) -> TablePair:
        return self.pairs[index]

    def subset(self, count: int) -> "BenchmarkDataset":
        """The first *count* pairs as a smaller dataset (for quick runs)."""
        return BenchmarkDataset(
            name=f"{self.name}[:{count}]",
            pairs=self.pairs[:count],
            description=self.description,
        )


def dataset_statistics(dataset: BenchmarkDataset | Sequence[TablePair]) -> dict[str, float]:
    """Aggregate statistics reported in Table 1 (#rows, avg length, #pairs)."""
    pairs = list(dataset)
    if not pairs:
        return {
            "num_tables": 0,
            "avg_rows": 0.0,
            "avg_join_length": 0.0,
            "avg_golden_pairs": 0.0,
        }
    return {
        "num_tables": len(pairs),
        "avg_rows": sum(p.num_source_rows for p in pairs) / len(pairs),
        "avg_join_length": sum(p.average_join_length for p in pairs) / len(pairs),
        "avg_golden_pairs": sum(len(p.golden_pairs) for p in pairs) / len(pairs),
    }
